"""Deterministic hashed embeddings.

The paper's agentic memory store and semantic probes need text similarity
without a network-hosted embedding model. We use the classic hashing trick:
character n-grams and word tokens are hashed into a fixed number of
dimensions with ±1 signs, then L2-normalised. Similar strings share
n-grams, so cosine similarity behaves like a (weak but useful) semantic
metric — and is bit-for-bit reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import stable_hash_int
from repro.util.text import character_ngrams, singularize, tokenize_words

DEFAULT_DIMS = 128


class HashedEmbedder:
    """Embeds text into a fixed-dimension vector via feature hashing."""

    def __init__(self, dims: int = DEFAULT_DIMS) -> None:
        if dims <= 0:
            raise ValueError("dims must be positive")
        self.dims = dims
        self._cache: dict[str, np.ndarray] = {}

    def embed(self, text: str) -> np.ndarray:
        """L2-normalised embedding of ``text`` (zero vector for no features)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        vector = np.zeros(self.dims, dtype=np.float64)
        for feature, weight in self._features(text):
            bucket = stable_hash_int(("emb", feature), bits=32)
            sign = 1.0 if stable_hash_int(("sign", feature), bits=1) else -1.0
            vector[bucket % self.dims] += sign * weight
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        if len(self._cache) < 50_000:
            self._cache[text] = vector
        return vector

    def _features(self, text: str) -> list[tuple[str, float]]:
        features: list[tuple[str, float]] = []
        words = tokenize_words(text)
        for word in words:
            # Whole words weigh more than n-grams; singulars unify plurals.
            features.append((f"w:{singularize(word)}", 2.0))
        for gram in character_ngrams(text, n=3):
            features.append((f"g:{gram}", 1.0))
        return features


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity of two (already normalised or not) vectors."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right) / (left_norm * right_norm))
