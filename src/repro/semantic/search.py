"""Semantic search over everything in a database.

``SemanticSearch`` indexes table names, column names, schema descriptions
and TEXT cell values of a :class:`~repro.db.Database`, then answers
"where does this phrase appear / what is semantically close to it?" probes
with ranked, located hits. The index tracks database change events and
rebuilds lazily.

Ranking blends exact token overlap (from the inverted index) with hashed-
embedding cosine similarity of the location's description string, so
``electronics`` surfaces a table named ``electronic_goods`` even without a
shared exact token.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import ChangeEvent, Database
from repro.semantic.embedding import HashedEmbedder, cosine_similarity
from repro.semantic.inverted import InvertedIndex, Location

#: Cap on text cells indexed per column, keeping index builds bounded.
MAX_CELLS_PER_COLUMN = 2000


@dataclass(frozen=True)
class SearchHit:
    """One ranked match from a semantic probe."""

    location: Location
    score: float
    snippet: str

    def describe(self) -> str:
        loc = self.location
        if loc.kind == "table_name":
            return f"table {loc.table} (score {self.score:.2f})"
        if loc.kind == "column_name":
            return f"column {loc.table}.{loc.column} (score {self.score:.2f})"
        if loc.kind == "cell":
            return (
                f"value {self.snippet!r} in {loc.table}.{loc.column}"
                f" (score {self.score:.2f})"
            )
        return f"description of {loc.table} (score {self.score:.2f})"


class SemanticSearch:
    """Anywhere-search over a database's data and metadata."""

    def __init__(self, db: Database, embedder: HashedEmbedder | None = None) -> None:
        self._db = db
        self._embedder = embedder or HashedEmbedder()
        self._index = InvertedIndex()
        self._texts: dict[Location, str] = {}
        self._dirty = True
        db.on_change(self._on_change)

    # -- indexing ------------------------------------------------------------

    def _on_change(self, event: ChangeEvent) -> None:
        self._dirty = True

    def refresh(self) -> None:
        if not self._dirty:
            return
        self._index.clear()
        self._texts.clear()
        for table_name in self._db.table_names():
            table = self._db.catalog.table(table_name)
            schema = table.schema
            table_loc = Location("table_name", schema.name)
            self._add(schema.name, table_loc)
            if schema.description:
                desc_loc = Location("description", schema.name)
                self._add(schema.description, desc_loc)
            for column in schema.columns:
                col_loc = Location("column_name", schema.name, column.name)
                self._add(column.name, col_loc)
                if column.description:
                    self._add(column.description, col_loc)
            self._index_cells(table_name)
        self._dirty = False

    def _index_cells(self, table_name: str) -> None:
        table = self._db.catalog.table(table_name)
        schema = table.schema
        text_positions = [
            (position, column.name)
            for position, column in enumerate(schema.columns)
            if column.data_type.value == "TEXT"
        ]
        if not text_positions:
            return
        budget = {name: MAX_CELLS_PER_COLUMN for _, name in text_positions}
        for row_id, row in table.scan_with_ids():
            for position, name in text_positions:
                value = row[position]
                if not isinstance(value, str) or not value:
                    continue
                if budget[name] <= 0:
                    continue
                budget[name] -= 1
                self._add(value, Location("cell", schema.name, name, row_id))

    def _add(self, text: str, location: Location) -> None:
        self._index.add_text(text, location)
        existing = self._texts.get(location)
        self._texts[location] = f"{existing} {text}" if existing else text

    # -- queries -----------------------------------------------------------------

    def search(
        self,
        phrase: str,
        limit: int = 10,
        kinds: tuple[str, ...] | None = None,
    ) -> list[SearchHit]:
        """Ranked locations matching ``phrase`` anywhere in the database."""
        self.refresh()
        token_hits = self._index.lookup_phrase(phrase)
        query_vector = self._embedder.embed(phrase)

        candidates: dict[Location, float] = {}
        for location, count in token_hits.items():
            candidates[location] = 1.0 + 0.25 * (count - 1)
        # Embedding pass over all metadata locations (tables/columns are few)
        # plus any token-matched cells.
        for location, text in self._texts.items():
            if location.kind == "cell" and location not in candidates:
                continue
            similarity = cosine_similarity(query_vector, self._embedder.embed(text))
            # Hashing collisions put the noise floor near 0.07 at 128 dims;
            # embedding-only evidence must clear it, token hits need not.
            if similarity <= 0.12 and location not in candidates:
                continue
            if similarity <= 0.0:
                continue
            candidates[location] = candidates.get(location, 0.0) + similarity

        hits = [
            SearchHit(location, score, self._texts.get(location, ""))
            for location, score in candidates.items()
        ]
        if kinds is not None:
            hits = [hit for hit in hits if hit.location.kind in kinds]
        hits.sort(key=lambda hit: (-hit.score, _location_key(hit.location)))
        return hits[:limit]

    def find_tables(self, phrase: str, limit: int = 5) -> list[str]:
        """Tables most related to ``phrase`` (by any evidence kind)."""
        self.refresh()
        scores: dict[str, float] = {}
        for hit in self.search(phrase, limit=50):
            scores[hit.location.table] = max(
                scores.get(hit.location.table, 0.0), hit.score
            )
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [table for table, _ in ranked[:limit]]

    def find_columns(self, phrase: str, limit: int = 5) -> list[tuple[str, str]]:
        """(table, column) pairs most related to ``phrase``."""
        self.refresh()
        hits = self.search(phrase, limit=50, kinds=("column_name", "cell"))
        seen: list[tuple[str, str]] = []
        for hit in hits:
            if hit.location.column is None:
                continue
            pair = (hit.location.table, hit.location.column)
            if pair not in seen:
                seen.append(pair)
            if len(seen) >= limit:
                break
        return seen


def _location_key(location: Location) -> tuple:
    return (
        location.kind,
        location.table,
        location.column or "",
        location.row_id if location.row_id is not None else -1,
    )
