"""Inverted token index over data and metadata locations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.util.text import singularize, tokenize_words


@dataclass(frozen=True)
class Location:
    """Where a token was found.

    ``kind`` is one of ``table_name``, ``column_name``, ``cell``,
    ``description``. ``row_id`` is set only for cells.
    """

    kind: str
    table: str
    column: str | None = None
    row_id: int | None = None


class InvertedIndex:
    """token -> set of :class:`Location`, with singular/plural folding."""

    def __init__(self) -> None:
        self._postings: dict[str, set[Location]] = defaultdict(set)
        self.token_count = 0

    def add_text(self, text: str, location: Location) -> None:
        for token in tokenize_words(text):
            self._postings[singularize(token)].add(location)
            self.token_count += 1

    def lookup(self, token: str) -> set[Location]:
        return set(self._postings.get(singularize(token.lower()), ()))

    def lookup_phrase(self, phrase: str) -> dict[Location, int]:
        """Locations matching any token of ``phrase``, with match counts."""
        hits: dict[Location, int] = defaultdict(int)
        for token in tokenize_words(phrase):
            for location in self._postings.get(singularize(token), ()):
                hits[location] += 1
        return dict(hits)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def clear(self) -> None:
        self._postings.clear()
        self.token_count = 0
