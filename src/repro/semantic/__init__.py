"""Semantic operators: token/phrase search over all data and metadata.

Implements the paper's beyond-SQL probe operators (Sec. 4.1): "probes that
ask for semantically similar contents — be it tables, columns, or rows — to
a specific phrase, located anywhere."
"""

from repro.semantic.embedding import HashedEmbedder, cosine_similarity
from repro.semantic.inverted import InvertedIndex, Location
from repro.semantic.search import SearchHit, SemanticSearch

__all__ = [
    "HashedEmbedder",
    "InvertedIndex",
    "Location",
    "SearchHit",
    "SemanticSearch",
    "cosine_similarity",
]
