"""SQL lexer.

Produces a flat token stream. Keywords are recognised case-insensitively;
identifiers may be double-quoted to defeat keyword recognition. String
literals are single-quoted with ``''`` as the escape for a quote.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TokenizeError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON JOIN INNER LEFT
    RIGHT FULL OUTER CROSS AND OR NOT IN IS NULL LIKE BETWEEN EXISTS DISTINCT
    ASC DESC CASE WHEN THEN ELSE END CAST INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP IF PRIMARY KEY UNION ALL TRUE FALSE
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char in " \t\r\n":
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if sql.startswith("/*", index):
            closing = sql.find("*/", index + 2)
            if closing == -1:
                raise TokenizeError("unterminated block comment", index)
            index = closing + 2
            continue
        if char == "'":
            value, index = _read_string(sql, index)
            tokens.append(Token(TokenType.STRING, value, index))
            continue
        if char == '"':
            closing = sql.find('"', index + 1)
            if closing == -1:
                raise TokenizeError("unterminated quoted identifier", index)
            tokens.append(Token(TokenType.IDENTIFIER, sql[index + 1 : closing], index))
            index = closing + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            value, index = _read_number(sql, index)
            tokens.append(Token(TokenType.NUMBER, value, index))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        matched = next((op for op in _OPERATORS if sql.startswith(op, index)), None)
        if matched is not None:
            tokens.append(Token(TokenType.OPERATOR, matched, index))
            index += len(matched)
            continue
        if char in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, char, index))
            index += 1
            continue
        raise TokenizeError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    index = start + 1
    pieces: list[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if index + 1 < len(sql) and sql[index + 1] == "'":
                pieces.append("'")
                index += 2
                continue
            return "".join(pieces), index + 1
        pieces.append(char)
        index += 1
    raise TokenizeError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    index = start
    seen_dot = False
    seen_exp = False
    while index < len(sql):
        char = sql[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            index += 1
        elif char in "eE" and not seen_exp and index > start:
            seen_exp = True
            index += 1
            if index < len(sql) and sql[index] in "+-":
                index += 1
        else:
            break
    return sql[start:index], index
