"""AST node definitions for the supported SQL subset.

Nodes are frozen dataclasses: hashable, comparable, and safely shared
between the parser, planner, fingerprinting and the agents' query mutators.
Every expression node implements ``sql()`` to render itself back to a
canonical SQL string — the agents rely on this to rewrite and re-issue
queries the way an LLM edits text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.storage.types import Value

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    column: str
    table: str | None = None

    def sql(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(Expr):
    table: str | None = None

    def sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-' | 'NOT'
    operand: Expr

    def sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.sql()})"
        return f"{self.op}({self.operand.sql()})"


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic, comparison, AND/OR, LIKE, ||
    left: Expr
    right: Expr

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {suffix})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def sql(self) -> str:
        rendered = ", ".join(item.sql() for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({rendered}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    subquery: "Select"
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({self.subquery.sql()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    subquery: "Select"

    def sql(self) -> str:
        return f"({self.subquery.sql()})"


@dataclass(frozen=True)
class Exists(Expr):
    subquery: "Select"
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} ({self.subquery.sql()})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {keyword} {self.low.sql()} AND {self.high.sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # upper-cased
    args: tuple[Expr, ...]
    distinct: bool = False

    def sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        rendered = ", ".join(arg.sql() for arg in self.args)
        return f"{self.name}({prefix}{rendered})"


@dataclass(frozen=True)
class Case(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    else_result: Expr | None = None

    def sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.sql()} THEN {result.sql()}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str

    def sql(self) -> str:
        return f"CAST({self.operand.sql()} AS {self.type_name})"


#: Aggregate function names understood by the planner.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def contains_aggregate(expr: Expr) -> bool:
    """True if any sub-expression is an aggregate function call."""
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
        return True
    return any(contains_aggregate(child) for child in children_of(expr))


def children_of(expr: Expr) -> list[Expr]:
    """Direct expression children (subqueries are not descended into)."""
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, Binary):
        return [expr.left, expr.right]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, InSubquery):
        return [expr.operand]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    if isinstance(expr, Case):
        out: list[Expr] = []
        for condition, result in expr.whens:
            out.extend((condition, result))
        if expr.else_result is not None:
            out.append(expr.else_result)
        return out
    if isinstance(expr, Cast):
        return [expr.operand]
    return []


def walk(expr: Expr):
    """Yield ``expr`` and all descendants, pre-order."""
    yield expr
    for child in children_of(expr):
        yield from walk(child)


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in ``expr`` (excluding inside subqueries)."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableRef:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableName(TableRef):
    name: str
    alias: str | None = None

    def sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    select: "Select"
    alias: str

    def sql(self) -> str:
        return f"({self.select.sql()}) AS {self.alias}"


@dataclass(frozen=True)
class Join(TableRef):
    left: TableRef
    right: TableRef
    kind: str  # 'INNER' | 'LEFT' | 'CROSS'
    condition: Expr | None = None

    def sql(self) -> str:
        left_sql = self.left.sql()  # type: ignore[attr-defined]
        right_sql = self.right.sql()  # type: ignore[attr-defined]
        if self.kind == "CROSS":
            return f"{left_sql} CROSS JOIN {right_sql}"
        clause = f" ON {self.condition.sql()}" if self.condition is not None else ""
        return f"{left_sql} {self.kind} JOIN {right_sql}{clause}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statements."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def sql(self) -> str:
        return f"{self.expr.sql()} AS {self.alias}" if self.alias else self.expr.sql()


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True

    def sql(self) -> str:
        return f"{self.expr.sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    from_clause: TableRef | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.sql() for item in self.items))
        if self.from_clause is not None:
            parts.append("FROM " + self.from_clause.sql())  # type: ignore[attr-defined]
        if self.where is not None:
            parts.append("WHERE " + self.where.sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...] = ()
    select: Select | None = None


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...] = ()
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expr | None = None


AnyStatement = Union[Select, CreateTable, DropTable, Insert, Update, Delete]
