"""Recursive-descent parser for the supported SQL subset.

Grammar highlights::

    statement   := select | insert | update | delete | create_table | drop_table
    select      := SELECT [DISTINCT] items [FROM table_ref] [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT n [OFFSET m]]
    table_ref   := primary_ref (join_clause)*
    primary_ref := name [AS alias] | '(' select ')' AS alias
    join_clause := [INNER|LEFT [OUTER]|CROSS] JOIN primary_ref [ON expr]

Expression precedence, loosest first:
OR, AND, NOT, comparison/IN/LIKE/BETWEEN/IS, additive (+ - ||),
multiplicative (* / %), unary minus, primary.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import nodes
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: list[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        context = self._sql[max(token.position - 20, 0) : token.position + 20]
        return ParseError(f"{message} near {token.value!r} (...{context}...)")

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise self._error(f"expected {keyword}")
        return self._advance()

    def _accept_keyword(self, *keywords: str) -> Token | None:
        if self._peek().is_keyword(*keywords):
            return self._advance()
        return None

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != punct:
            raise self._error(f"expected {punct!r}")
        return self._advance()

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == punct:
            self._advance()
            return True
        return False

    def _accept_operator(self, *ops: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._advance().value
        # Allow non-reserved-ish keywords as identifiers in a pinch (e.g. a
        # column named "key"); keep this list short and explicit.
        if token.is_keyword("KEY", "ALL"):
            return self._advance().value.lower()
        raise self._error(f"expected {what}")

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> nodes.AnyStatement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            statement: nodes.AnyStatement = self._parse_select()
        elif token.is_keyword("INSERT"):
            statement = self._parse_insert()
        elif token.is_keyword("UPDATE"):
            statement = self._parse_update()
        elif token.is_keyword("DELETE"):
            statement = self._parse_delete()
        elif token.is_keyword("CREATE"):
            statement = self._parse_create_table()
        elif token.is_keyword("DROP"):
            statement = self._parse_drop_table()
        else:
            raise self._error("expected a statement")
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def _parse_select(self) -> nodes.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        if not distinct:
            self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        from_clause: nodes.TableRef | None = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_table_ref()

        where = self._parse_expr() if self._accept_keyword("WHERE") else None

        group_by: list[nodes.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())

        having = self._parse_expr() if self._accept_keyword("HAVING") else None

        order_by: list[nodes.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int_literal("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_int_literal("OFFSET")

        return nodes.Select(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_int_literal(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise self._error(f"expected integer after {clause}")
        self._advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise self._error(f"{clause} requires an integer") from exc

    def _parse_select_item(self) -> nodes.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return nodes.SelectItem(nodes.Star())
        # table.* form
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return nodes.SelectItem(nodes.Star(table=table))
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return nodes.SelectItem(expr, alias)

    def _parse_order_item(self) -> nodes.OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return nodes.OrderItem(expr, ascending)

    # -- FROM clause ----------------------------------------------------------

    def _parse_table_ref(self) -> nodes.TableRef:
        ref = self._parse_primary_ref()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "CROSS"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "LEFT"
            elif self._accept_keyword("JOIN"):
                kind = "INNER"
            else:
                break
            right = self._parse_primary_ref()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._parse_expr()
            ref = nodes.Join(ref, right, kind, condition)
        return ref

    def _parse_primary_ref(self) -> nodes.TableRef:
        if self._accept_punct("("):
            select = self._parse_select()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_identifier("subquery alias")
            return nodes.SubqueryRef(select, alias)
        name = self._expect_identifier("table name")
        # Qualified table names (schema.table), e.g. information_schema.tables.
        if self._peek().type is TokenType.PUNCT and self._peek().value == ".":
            self._advance()
            name = f"{name}.{self._expect_identifier('table name')}"
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return nodes.TableName(name, alias)

    # -- other statements --------------------------------------------------------

    def _parse_insert(self) -> nodes.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: tuple[str, ...] | None = None
        if self._accept_punct("("):
            names = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                names.append(self._expect_identifier("column name"))
            self._expect_punct(")")
            columns = tuple(names)
        if self._peek().is_keyword("SELECT"):
            return nodes.Insert(table, columns, select=self._parse_select())
        self._expect_keyword("VALUES")
        rows: list[tuple[nodes.Expr, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._parse_expr()]
            while self._accept_punct(","):
                values.append(self._parse_expr())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return nodes.Insert(table, columns, rows=tuple(rows))

    def _parse_update(self) -> nodes.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return nodes.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, nodes.Expr]:
        column = self._expect_identifier("column name")
        if self._accept_operator("=") is None:
            raise self._error("expected = in assignment")
        return column, self._parse_expr()

    def _parse_delete(self) -> nodes.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return nodes.Delete(table, where)

    def _parse_create_table(self) -> nodes.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns = [self._parse_column_def()]
        while self._accept_punct(","):
            columns.append(self._parse_column_def())
        self._expect_punct(")")
        return nodes.CreateTable(name, tuple(columns), if_not_exists)

    def _parse_column_def(self) -> nodes.ColumnDef:
        name = self._expect_identifier("column name")
        type_name = self._expect_identifier("type name")
        not_null = False
        primary_key = False
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                not_null = True
            else:
                break
        return nodes.ColumnDef(name, type_name, not_null, primary_key)

    def _parse_drop_table(self) -> nodes.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier("table name")
        return nodes.DropTable(name, if_exists)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> nodes.Expr:
        return self._parse_or()

    def _parse_or(self) -> nodes.Expr:
        expr = self._parse_and()
        while self._accept_keyword("OR"):
            expr = nodes.Binary("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> nodes.Expr:
        expr = self._parse_not()
        while self._accept_keyword("AND"):
            expr = nodes.Binary("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> nodes.Expr:
        if self._accept_keyword("NOT"):
            return nodes.Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> nodes.Expr:
        expr = self._parse_additive()
        while True:
            op_token = self._accept_operator(*_COMPARISON_OPS)
            if op_token is not None:
                op = "<>" if op_token.value == "!=" else op_token.value
                expr = nodes.Binary(op, expr, self._parse_additive())
                continue
            if self._accept_keyword("IS"):
                negated = self._accept_keyword("NOT") is not None
                self._expect_keyword("NULL")
                expr = nodes.IsNull(expr, negated)
                continue
            negated = False
            if self._peek().is_keyword("NOT") and self._peek(1).is_keyword(
                "IN", "LIKE", "BETWEEN"
            ):
                self._advance()
                negated = True
            if self._accept_keyword("LIKE"):
                expr = nodes.Binary(
                    "NOT LIKE" if negated else "LIKE", expr, self._parse_additive()
                )
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                expr = nodes.Between(expr, low, high, negated)
                continue
            if self._accept_keyword("IN"):
                expr = self._parse_in_tail(expr, negated)
                continue
            if negated:
                raise self._error("dangling NOT")
            break
        return expr

    def _parse_in_tail(self, operand: nodes.Expr, negated: bool) -> nodes.Expr:
        self._expect_punct("(")
        if self._peek().is_keyword("SELECT"):
            subquery = self._parse_select()
            self._expect_punct(")")
            return nodes.InSubquery(operand, subquery, negated)
        items = [self._parse_expr()]
        while self._accept_punct(","):
            items.append(self._parse_expr())
        self._expect_punct(")")
        return nodes.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> nodes.Expr:
        expr = self._parse_multiplicative()
        while True:
            op_token = self._accept_operator("+", "-", "||")
            if op_token is None:
                break
            expr = nodes.Binary(op_token.value, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> nodes.Expr:
        expr = self._parse_unary()
        while True:
            op_token = self._accept_operator("*", "/", "%")
            if op_token is None:
                break
            expr = nodes.Binary(op_token.value, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> nodes.Expr:
        if self._accept_operator("-") is not None:
            operand = self._parse_unary()
            if isinstance(operand, nodes.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return nodes.Literal(-operand.value)
            return nodes.Unary("-", operand)
        if self._accept_operator("+") is not None:
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> nodes.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return nodes.Literal(float(text))
            return nodes.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return nodes.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return nodes.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return nodes.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return nodes.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return nodes.Exists(subquery)
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._peek().is_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return nodes.ScalarSubquery(subquery)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise self._error("expected an expression")

    def _parse_identifier_expr(self) -> nodes.Expr:
        name = self._advance().value
        # Function call?
        if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
            self._advance()
            distinct = self._accept_keyword("DISTINCT") is not None
            args: list[nodes.Expr] = []
            if self._peek().type is TokenType.OPERATOR and self._peek().value == "*":
                self._advance()
                args.append(nodes.Star())
            elif not (self._peek().type is TokenType.PUNCT and self._peek().value == ")"):
                args.append(self._parse_expr())
                while self._accept_punct(","):
                    args.append(self._parse_expr())
            self._expect_punct(")")
            return nodes.FuncCall(name.upper(), tuple(args), distinct)
        # Qualified column?
        if self._accept_punct("."):
            column = self._expect_identifier("column name")
            return nodes.ColumnRef(column=column, table=name)
        return nodes.ColumnRef(column=name)

    def _parse_case(self) -> nodes.Expr:
        self._expect_keyword("CASE")
        whens: list[tuple[nodes.Expr, nodes.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expr()
            self._expect_keyword("THEN")
            result = self._parse_expr()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_result = self._parse_expr() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return nodes.Case(tuple(whens), else_result)

    def _parse_cast(self) -> nodes.Expr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expr()
        self._expect_keyword("AS")
        type_name = self._expect_identifier("type name")
        self._expect_punct(")")
        return nodes.Cast(operand, type_name.upper())


def parse_statement(sql: str) -> nodes.AnyStatement:
    """Parse one SQL statement (optionally ``;``-terminated)."""
    return _Parser(tokenize(sql), sql).parse_statement()


def parse_expression(sql: str) -> nodes.Expr:
    """Parse a standalone expression (used by tests and agents)."""
    parser = _Parser(tokenize(sql), sql)
    expr = parser._parse_expr()
    if parser._peek().type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input in expression: {sql!r}")
    return expr
