"""SQL front-end: lexer, AST, and recursive-descent parser."""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_expression, parse_statement
from repro.sql import nodes

__all__ = ["Token", "TokenType", "nodes", "parse_expression", "parse_statement", "tokenize"]
