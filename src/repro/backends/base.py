"""Backend protocol shared by the relational dialects and the document store.

Agents interact with every backend through the same narrow surface:
``list_tables``, ``describe``, ``sample``, ``query``. Each backend flavours
its metadata responses differently (PostgreSQL's information_schema vs
SQLite's sqlite_master vs MongoDB's listCollections), which is exactly the
heterogeneity the paper's second case study exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class BackendKind(enum.Enum):
    POSTGRES = "postgres"
    SQLITE = "sqlite"
    DUCKDB = "duckdb"
    MONGODB = "mongodb"


@dataclass
class BackendResponse:
    """Uniform response envelope: rows/documents plus error text (if any).

    Agents read ``error`` the way an LLM reads a backend error message —
    it is part of the interaction loop, not an exception path.
    """

    ok: bool
    rows: list[Any] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    error: str | None = None
    rows_scanned: int = 0

    @classmethod
    def failure(cls, message: str) -> "BackendResponse":
        return cls(ok=False, error=message)


class Backend:
    """Abstract backend; see :mod:`repro.backends.relational` and
    :mod:`repro.backends.document` for implementations."""

    name: str
    kind: BackendKind

    def list_tables(self) -> BackendResponse:
        raise NotImplementedError

    def describe(self, table: str) -> BackendResponse:
        raise NotImplementedError

    def sample(self, table: str, limit: int = 5) -> BackendResponse:
        raise NotImplementedError

    def query(self, request: str) -> BackendResponse:
        """Execute a dialect query (SQL text or a JSON-ish find spec)."""
        raise NotImplementedError
