"""Heterogeneous backends: dialect-wrapped relational stores and a document
store, behind one protocol — the substrate for the paper's second case study
(cross-backend data tasks)."""

from repro.backends.base import Backend, BackendKind, BackendResponse
from repro.backends.document import Collection, DocumentStore
from repro.backends.federation import FederatedEnvironment
from repro.backends.relational import RelationalBackend

__all__ = [
    "Backend",
    "BackendKind",
    "BackendResponse",
    "Collection",
    "DocumentStore",
    "FederatedEnvironment",
    "RelationalBackend",
]
