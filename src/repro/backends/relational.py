"""Relational backends with per-dialect metadata quirks.

All three dialects execute the same SQL subset (they share the
:class:`~repro.db.Database` engine), but expose *metadata* differently —
the friction the paper's second case study documents:

* **postgres** — ``information_schema.tables`` includes system noise rows
  (pg_catalog entries), so naive metadata queries over-fetch;
* **sqlite** — no information_schema; discovery goes through
  ``sqlite_master``;
* **duckdb** — clean ``information_schema`` plus ``SHOW TABLES``-style
  listing via ``list_tables``.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendKind, BackendResponse
from repro.db import Database
from repro.errors import ReproError

#: Synthetic system-catalog rows a mini-postgres reports alongside user
#: tables; exploration probes must learn to filter these out.
_PG_SYSTEM_TABLES = [
    "pg_aggregate",
    "pg_am",
    "pg_attribute",
    "pg_authid",
    "pg_cast",
    "pg_class",
    "pg_constraint",
    "pg_database",
    "pg_depend",
    "pg_description",
    "pg_index",
    "pg_inherits",
    "pg_language",
    "pg_namespace",
    "pg_opclass",
    "pg_operator",
    "pg_proc",
    "pg_rewrite",
    "pg_statistic",
    "pg_tablespace",
    "pg_trigger",
    "pg_type",
]


class RelationalBackend(Backend):
    """A dialect-flavoured wrapper over the in-process SQL engine."""

    def __init__(self, name: str, kind: BackendKind, db: Database | None = None) -> None:
        if kind is BackendKind.MONGODB:
            raise ReproError("use DocumentStore for the mongodb kind")
        self.name = name
        self.kind = kind
        self.db = db or Database(name)

    # -- Backend protocol --------------------------------------------------------

    def list_tables(self) -> BackendResponse:
        user_tables = sorted(self.db.table_names())
        if self.kind is BackendKind.POSTGRES:
            # Postgres-style catalogs mix system relations into the listing.
            rows = sorted(user_tables + _PG_SYSTEM_TABLES)
        else:
            rows = user_tables
        return BackendResponse(ok=True, rows=rows, columns=["table_name"])

    def describe(self, table: str) -> BackendResponse:
        if not self.db.catalog.has_table(table):
            return BackendResponse.failure(self._missing_table_message(table))
        schema = self.db.catalog.table(table).schema
        rows = [
            (column.name, column.data_type.value, column.nullable)
            for column in schema.columns
        ]
        return BackendResponse(
            ok=True, rows=rows, columns=["column_name", "data_type", "is_nullable"]
        )

    def sample(self, table: str, limit: int = 5) -> BackendResponse:
        if not self.db.catalog.has_table(table):
            return BackendResponse.failure(self._missing_table_message(table))
        result = self.db.execute(f"SELECT * FROM {table} LIMIT {limit}")
        return BackendResponse(
            ok=True,
            rows=result.rows,
            columns=result.columns,
            rows_scanned=result.stats.rows_scanned,
        )

    def query(self, request: str) -> BackendResponse:
        try:
            result = self.db.execute(request)
        except ReproError as exc:
            return BackendResponse.failure(self._flavoured_error(str(exc)))
        return BackendResponse(
            ok=True,
            rows=result.rows,
            columns=result.columns,
            rows_scanned=result.stats.rows_scanned,
        )

    # -- dialect flavouring ---------------------------------------------------------

    def _missing_table_message(self, table: str) -> str:
        if self.kind is BackendKind.POSTGRES:
            return f'relation "{table}" does not exist'
        if self.kind is BackendKind.SQLITE:
            return f"no such table: {table}"
        return f"Table with name {table} does not exist!"

    def _flavoured_error(self, message: str) -> str:
        prefix = {
            BackendKind.POSTGRES: "ERROR: ",
            BackendKind.SQLITE: "SqliteError: ",
            BackendKind.DUCKDB: "Binder Error: ",
        }[self.kind]
        return prefix + message
