"""A MongoDB-flavoured document store.

Collections hold free-form dict documents. The query surface covers the
operators the cross-backend workload needs: ``find`` with ``$eq/$ne/$gt/
$gte/$lt/$lte/$in/$nin/$regex/$exists``, projection, limit, and an
aggregation pipeline with ``$match/$group/$project/$sort/$limit/$unwind``
plus the common accumulators.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable

from repro.backends.base import Backend, BackendKind, BackendResponse
from repro.errors import BackendError

Document = dict[str, Any]


class Collection:
    """An ordered bag of documents with Mongo-style querying."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: list[Document] = []
        self._next_id = 1

    # -- writes -----------------------------------------------------------

    def insert_one(self, document: Document) -> Document:
        stored = dict(document)
        stored.setdefault("_id", self._next_id)
        self._next_id += 1
        self._documents.append(stored)
        return stored

    def insert_many(self, documents: Iterable[Document]) -> int:
        count = 0
        for document in documents:
            self.insert_one(document)
            count += 1
        return count

    def update_many(self, filter_spec: Document, update: Document) -> int:
        """Apply a ``{"$set": {...}}`` update to matching documents."""
        set_fields = update.get("$set")
        if set_fields is None:
            raise BackendError("update_many requires a $set update document")
        predicate = _compile_filter(filter_spec)
        count = 0
        for document in self._documents:
            if predicate(document):
                document.update(set_fields)
                count += 1
        return count

    def delete_many(self, filter_spec: Document) -> int:
        predicate = _compile_filter(filter_spec)
        before = len(self._documents)
        self._documents = [d for d in self._documents if not predicate(d)]
        return before - len(self._documents)

    # -- reads ------------------------------------------------------------

    def count(self) -> int:
        return len(self._documents)

    def find(
        self,
        filter_spec: Document | None = None,
        projection: dict[str, int] | None = None,
        limit: int | None = None,
    ) -> list[Document]:
        predicate = _compile_filter(filter_spec or {})
        out: list[Document] = []
        for document in self._documents:
            if not predicate(document):
                continue
            out.append(_project(document, projection))
            if limit is not None and len(out) >= limit:
                break
        return out

    def distinct(self, field: str) -> list[Any]:
        seen: list[Any] = []
        for document in self._documents:
            value = document.get(field)
            if value not in seen:
                seen.append(value)
        return seen

    def field_names(self, sample: int = 100) -> list[str]:
        names: list[str] = []
        for document in self._documents[:sample]:
            for key in document:
                if key not in names:
                    names.append(key)
        return names

    def aggregate(self, pipeline: list[Document]) -> list[Document]:
        documents = [dict(d) for d in self._documents]
        for stage in pipeline:
            if len(stage) != 1:
                raise BackendError(f"pipeline stage must have one operator: {stage}")
            (op, spec), = stage.items()
            if op == "$match":
                predicate = _compile_filter(spec)
                documents = [d for d in documents if predicate(d)]
            elif op == "$project":
                documents = [_project(d, spec) for d in documents]
            elif op == "$limit":
                documents = documents[: int(spec)]
            elif op == "$sort":
                for field, direction in reversed(list(spec.items())):
                    documents.sort(
                        key=lambda d: _sort_key(d.get(field)),
                        reverse=direction < 0,
                    )
            elif op == "$unwind":
                field = spec.lstrip("$") if isinstance(spec, str) else spec["path"].lstrip("$")
                unwound: list[Document] = []
                for document in documents:
                    values = document.get(field)
                    if isinstance(values, list):
                        for item in values:
                            clone = dict(document)
                            clone[field] = item
                            unwound.append(clone)
                documents = unwound
            elif op == "$group":
                documents = _group(documents, spec)
            else:
                raise BackendError(f"unsupported pipeline operator {op!r}")
        return documents


def _sort_key(value: Any) -> tuple:
    # None first, then numerics, then strings — total order across types.
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


def _project(document: Document, projection: dict[str, Any] | None) -> Document:
    if not projection:
        return dict(document)
    included = {k for k, v in projection.items() if v}
    if included:
        return {k: document.get(k) for k in included}
    excluded = {k for k, v in projection.items() if not v}
    return {k: v for k, v in document.items() if k not in excluded}


def _group(documents: list[Document], spec: Document) -> list[Document]:
    if "_id" not in spec:
        raise BackendError("$group requires an _id")
    key_spec = spec["_id"]
    groups: dict[Any, list[Document]] = {}
    order: list[Any] = []
    for document in documents:
        if key_spec is None:
            key = None
        elif isinstance(key_spec, str) and key_spec.startswith("$"):
            key = document.get(key_spec[1:])
        else:
            key = key_spec
        marker = repr(key)
        if marker not in groups:
            groups[marker] = []
            order.append((marker, key))
        groups[marker].append(document)

    out: list[Document] = []
    for marker, key in order:
        members = groups[marker]
        row: Document = {"_id": key}
        for field, accumulator in spec.items():
            if field == "_id":
                continue
            row[field] = _accumulate(accumulator, members)
        out.append(row)
    return out


def _accumulate(accumulator: Document, members: list[Document]) -> Any:
    if not isinstance(accumulator, dict) or len(accumulator) != 1:
        raise BackendError(f"bad accumulator: {accumulator!r}")
    (op, operand), = accumulator.items()
    if op == "$sum":
        if operand == 1:
            return len(members)
        values = _operand_values(operand, members)
        return sum(v for v in values if isinstance(v, (int, float)))
    if op == "$avg":
        values = [
            v
            for v in _operand_values(operand, members)
            if isinstance(v, (int, float))
        ]
        return sum(values) / len(values) if values else None
    if op == "$min":
        values = [v for v in _operand_values(operand, members) if v is not None]
        return min(values, key=_sort_key) if values else None
    if op == "$max":
        values = [v for v in _operand_values(operand, members) if v is not None]
        return max(values, key=_sort_key) if values else None
    if op == "$first":
        values = _operand_values(operand, members)
        return values[0] if values else None
    if op == "$push":
        return _operand_values(operand, members)
    raise BackendError(f"unsupported accumulator {op!r}")


def _operand_values(operand: Any, members: list[Document]) -> list[Any]:
    if isinstance(operand, str) and operand.startswith("$"):
        field = operand[1:]
        return [member.get(field) for member in members]
    return [operand for _ in members]


def _compile_filter(spec: Document) -> Callable[[Document], bool]:
    conditions: list[Callable[[Document], bool]] = []
    for field, expected in spec.items():
        if field == "$and":
            subs = [_compile_filter(s) for s in expected]
            conditions.append(lambda d, subs=subs: all(s(d) for s in subs))
            continue
        if field == "$or":
            subs = [_compile_filter(s) for s in expected]
            conditions.append(lambda d, subs=subs: any(s(d) for s in subs))
            continue
        if isinstance(expected, dict):
            for op, operand in expected.items():
                conditions.append(_compile_op(field, op, operand))
        else:
            conditions.append(
                lambda d, f=field, v=expected: d.get(f) == v
            )
    return lambda document: all(condition(document) for condition in conditions)


def _compile_op(field: str, op: str, operand: Any) -> Callable[[Document], bool]:
    def cmp(document: Document, check: Callable[[Any], bool]) -> bool:
        value = document.get(field)
        if value is None:
            return False
        try:
            return check(value)
        except TypeError:
            return False

    if op == "$eq":
        return lambda d: d.get(field) == operand
    if op == "$ne":
        return lambda d: d.get(field) != operand
    if op == "$gt":
        return lambda d: cmp(d, lambda v: v > operand)
    if op == "$gte":
        return lambda d: cmp(d, lambda v: v >= operand)
    if op == "$lt":
        return lambda d: cmp(d, lambda v: v < operand)
    if op == "$lte":
        return lambda d: cmp(d, lambda v: v <= operand)
    if op == "$in":
        return lambda d: d.get(field) in operand
    if op == "$nin":
        return lambda d: d.get(field) not in operand
    if op == "$exists":
        return lambda d: (field in d) == bool(operand)
    if op == "$regex":
        pattern = re.compile(operand)
        return lambda d: isinstance(d.get(field), str) and bool(
            pattern.search(d[field])
        )
    raise BackendError(f"unsupported filter operator {op!r}")


class DocumentStore(Backend):
    """A named set of collections behind the :class:`Backend` protocol."""

    def __init__(self, name: str = "mongo") -> None:
        self.name = name
        self.kind = BackendKind.MONGODB
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        key = name.lower()
        if key not in self._collections:
            self._collections[key] = Collection(name)
        return self._collections[key]

    def has_collection(self, name: str) -> bool:
        return name.lower() in self._collections

    # -- Backend protocol -----------------------------------------------------

    def list_tables(self) -> BackendResponse:
        names = sorted(c.name for c in self._collections.values())
        return BackendResponse(ok=True, rows=names, columns=["collection"])

    def describe(self, table: str) -> BackendResponse:
        if not self.has_collection(table):
            return BackendResponse.failure(
                f"ns does not exist: {self.name}.{table}"
            )
        collection = self.collection(table)
        return BackendResponse(
            ok=True, rows=collection.field_names(), columns=["field"]
        )

    def sample(self, table: str, limit: int = 5) -> BackendResponse:
        if not self.has_collection(table):
            return BackendResponse.failure(
                f"ns does not exist: {self.name}.{table}"
            )
        docs = self.collection(table).find(limit=limit)
        return BackendResponse(ok=True, rows=docs, rows_scanned=len(docs))

    def query(self, request: str) -> BackendResponse:
        """Evaluate a Python-literal find spec: ``{'collection': ..., 'filter':
        ..., 'projection': ..., 'limit': ...}`` or ``{'collection': ...,
        'pipeline': [...]}``."""
        import ast

        try:
            spec = ast.literal_eval(request)
        except (SyntaxError, ValueError) as exc:
            return BackendResponse.failure(f"invalid query document: {exc}")
        if not isinstance(spec, dict) or "collection" not in spec:
            return BackendResponse.failure("query must name a 'collection'")
        name = spec["collection"]
        if not self.has_collection(name):
            return BackendResponse.failure(f"ns does not exist: {self.name}.{name}")
        collection = self.collection(name)
        try:
            if "pipeline" in spec:
                docs = collection.aggregate(spec["pipeline"])
            else:
                docs = collection.find(
                    spec.get("filter"), spec.get("projection"), spec.get("limit")
                )
        except BackendError as exc:
            return BackendResponse.failure(str(exc))
        return BackendResponse(ok=True, rows=docs, rows_scanned=collection.count())
