"""The federated task environment: two heterogeneous backends + Python glue.

Cross-backend tasks (paper case study 2) cannot be completed in a single
query: the agent must pull data from both backends and combine the pieces
in client-side computation. :class:`FederatedEnvironment` is that client —
it tracks every backend interaction so traces can be labeled the way the
paper's authors labeled theirs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.backends.base import Backend, BackendResponse


@dataclass
class InteractionRecord:
    """One backend interaction (the unit Figure 3's labeling counts)."""

    backend: str
    operation: str  # 'list_tables' | 'describe' | 'sample' | 'query'
    request: str
    ok: bool
    row_count: int
    error: str | None = None


@dataclass
class FederatedEnvironment:
    """Two-or-more named backends plus an interaction log."""

    backends: dict[str, Backend] = field(default_factory=dict)
    log: list[InteractionRecord] = field(default_factory=list)

    def add_backend(self, backend: Backend) -> None:
        self.backends[backend.name] = backend

    def backend(self, name: str) -> Backend:
        return self.backends[name]

    def backend_names(self) -> list[str]:
        return sorted(self.backends)

    # -- instrumented operations ------------------------------------------------

    def list_tables(self, backend: str) -> BackendResponse:
        response = self.backends[backend].list_tables()
        self._record(backend, "list_tables", "", response)
        return response

    def describe(self, backend: str, table: str) -> BackendResponse:
        response = self.backends[backend].describe(table)
        self._record(backend, "describe", table, response)
        return response

    def sample(self, backend: str, table: str, limit: int = 5) -> BackendResponse:
        response = self.backends[backend].sample(table, limit)
        self._record(backend, "sample", table, response)
        return response

    def query(self, backend: str, request: str) -> BackendResponse:
        response = self.backends[backend].query(request)
        self._record(backend, "query", request, response)
        return response

    # -- bookkeeping ----------------------------------------------------------------

    def record_external(
        self, backend: str, operation: str, request: str, response: BackendResponse
    ) -> None:
        """Log an interaction served outside the environment's own dispatch.

        Batched serving paths (e.g. a probe-scheduler cohort answering a
        backend's queries through ``submit_many``) bypass :meth:`query`;
        they call this so the interaction log — the unit Figure 3's
        labeling counts — stays complete.
        """
        self._record(backend, operation, request, response)

    def _record(self, backend: str, operation: str, request: str, response: BackendResponse) -> None:
        self.log.append(
            InteractionRecord(
                backend=backend,
                operation=operation,
                request=request,
                ok=response.ok,
                row_count=len(response.rows),
                error=response.error,
            )
        )

    def interactions(self) -> int:
        return len(self.log)

    def reset_log(self) -> None:
        self.log.clear()

    def combine_rows(self, *row_sets: list[Any]) -> list[Any]:
        """Client-side glue placeholder: concatenate result sets."""
        combined: list[Any] = []
        for rows in row_sets:
            combined.extend(rows)
        return combined
