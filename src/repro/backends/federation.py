"""The federated task environment: two heterogeneous backends + Python glue.

Cross-backend tasks (paper case study 2) cannot be completed in a single
query: the agent must pull data from both backends and combine the pieces
in client-side computation. :class:`FederatedEnvironment` is that client —
it tracks every backend interaction so traces can be labeled the way the
paper's authors labeled theirs.

Per-backend health lives here too: attach a
:class:`~repro.qos.breaker.BackendHealth` registry and every dispatched
call feeds its member's circuit breaker (outcome + latency). An open
breaker short-circuits calls locally — the caller gets a
``BackendUnavailable`` *error envelope*, shaped like any backend error so
the agent's normal error-recovery loop handles it — and
:meth:`scatter` drops the member from the plan, reporting each exclusion
as a steering line instead of letting one failing service time out every
agent in the swarm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.backends.base import Backend, BackendResponse
from repro.errors import BackendUnavailable

if TYPE_CHECKING:
    from repro.qos.breaker import BackendHealth


@dataclass
class InteractionRecord:
    """One backend interaction (the unit Figure 3's labeling counts)."""

    backend: str
    operation: str  # 'list_tables' | 'describe' | 'sample' | 'query'
    request: str
    ok: bool
    row_count: int
    error: str | None = None


@dataclass
class ScatterResult:
    """One scatter plan's outcome: responses from the healthy members,
    plus which members the breakers tripped out (and the steering lines
    that tell the agent so)."""

    responses: dict[str, BackendResponse] = field(default_factory=dict)
    excluded: list[tuple[str, float]] = field(default_factory=list)
    steering: list[str] = field(default_factory=list)


@dataclass
class FederatedEnvironment:
    """Two-or-more named backends plus an interaction log."""

    backends: dict[str, Backend] = field(default_factory=dict)
    log: list[InteractionRecord] = field(default_factory=list)
    #: Optional breaker registry; ``None`` (the default) dispatches
    #: unconditionally — exactly the pre-QoS behaviour.
    health: "BackendHealth | None" = None

    def add_backend(self, backend: Backend) -> None:
        self.backends[backend.name] = backend

    def backend(self, name: str) -> Backend:
        return self.backends[name]

    def backend_names(self) -> list[str]:
        return sorted(self.backends)

    def attach_health(self, health: "BackendHealth") -> None:
        """Guard every dispatched call with per-backend circuit breakers."""
        self.health = health

    # -- instrumented operations ------------------------------------------------

    def list_tables(self, backend: str) -> BackendResponse:
        return self._dispatch(
            backend, "list_tables", "", self.backends[backend].list_tables
        )

    def describe(self, backend: str, table: str) -> BackendResponse:
        return self._dispatch(
            backend, "describe", table, lambda: self.backends[backend].describe(table)
        )

    def sample(self, backend: str, table: str, limit: int = 5) -> BackendResponse:
        return self._dispatch(
            backend,
            "sample",
            table,
            lambda: self.backends[backend].sample(table, limit),
        )

    def query(self, backend: str, request: str) -> BackendResponse:
        return self._dispatch(
            backend, "query", request, lambda: self.backends[backend].query(request)
        )

    def _dispatch(
        self,
        backend: str,
        operation: str,
        request: str,
        call: Callable[[], BackendResponse],
    ) -> BackendResponse:
        """One guarded, instrumented backend call.

        With health attached: an open breaker refuses the call locally
        (a ``BackendUnavailable`` envelope — an error message the agent
        reads, not an exception that breaks its loop), and every real
        call's outcome + latency feed the member's breaker.
        """
        health = self.health
        if health is not None and not health.allow(backend):
            refusal = BackendUnavailable(
                backend, health.cooldown_remaining(backend)
            )
            response = BackendResponse.failure(str(refusal))
            self._record(backend, operation, request, response)
            return response
        started = time.perf_counter()
        response = call()
        if health is not None:
            latency_ms = (time.perf_counter() - started) * 1000.0
            health.record(backend, response.ok, latency_ms)
        self._record(backend, operation, request, response)
        return response

    # -- scatter plans ----------------------------------------------------------

    def scatter(
        self,
        operation: str,
        request: str = "",
        backends: list[str] | None = None,
        limit: int = 5,
    ) -> ScatterResult:
        """Run one operation across members, skipping open-breaker ones.

        ``operation`` is any of the four instrumented calls; ``request``
        is its argument (table name or query text). Members whose
        breaker refuses admission are dropped from the plan up front and
        reported in ``steering`` — an agent re-plans around a sick
        backend instead of discovering it by timeout. (Half-open
        breakers admit their recovery probes through here like any other
        call, so scatter traffic is also what heals a member.)
        """
        from repro.core.steering import breaker_exclusion_notice

        result = ScatterResult()
        for name in backends if backends is not None else self.backend_names():
            if self.health is not None and not self.health.allow(name):
                cooldown = self.health.cooldown_remaining(name)
                result.excluded.append((name, cooldown))
                result.steering.append(breaker_exclusion_notice(name, cooldown))
                continue
            if operation == "list_tables":
                call = self.backends[name].list_tables
            elif operation == "describe":
                call = lambda n=name: self.backends[n].describe(request)
            elif operation == "sample":
                call = lambda n=name: self.backends[n].sample(request, limit)
            else:
                call = lambda n=name: self.backends[n].query(request)
            result.responses[name] = self._dispatch_unguarded(
                name, operation, request, call
            )
        return result

    def _dispatch_unguarded(
        self,
        backend: str,
        operation: str,
        request: str,
        call: Callable[[], BackendResponse],
    ) -> BackendResponse:
        """An already-admitted call: record outcome + latency, skip the
        second ``allow`` check (scatter admitted it above — a half-open
        breaker's probe budget must not be double-spent)."""
        started = time.perf_counter()
        response = call()
        if self.health is not None:
            latency_ms = (time.perf_counter() - started) * 1000.0
            self.health.record(backend, response.ok, latency_ms)
        self._record(backend, operation, request, response)
        return response

    # -- bookkeeping ----------------------------------------------------------------

    def record_external(
        self, backend: str, operation: str, request: str, response: BackendResponse
    ) -> None:
        """Log an interaction served outside the environment's own dispatch.

        Batched serving paths (e.g. a probe-scheduler cohort answering a
        backend's queries through ``submit_many``) bypass :meth:`query`;
        they call this so the interaction log — the unit Figure 3's
        labeling counts — stays complete.
        """
        self._record(backend, operation, request, response)

    def _record(self, backend: str, operation: str, request: str, response: BackendResponse) -> None:
        self.log.append(
            InteractionRecord(
                backend=backend,
                operation=operation,
                request=request,
                ok=response.ok,
                row_count=len(response.rows),
                error=response.error,
            )
        )

    def interactions(self) -> int:
        return len(self.log)

    def reset_log(self) -> None:
        self.log.clear()

    def combine_rows(self, *row_sets: list[Any]) -> list[Any]:
        """Client-side glue placeholder: concatenate result sets."""
        combined: list[Any] = []
        for rows in row_sets:
            combined.extend(rows)
        return combined
