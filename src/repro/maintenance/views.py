"""Materialized views built by the sleeper-agent maintenance runtime.

A :class:`MaterializedView` is a hot subplan's result, executed once off
the serving path and stamped with the catalog data-version tuple it was
built against. The :class:`ViewStore` owns the views and answers the only
question the serving path ever asks: *"is there a valid view whose rows
can stand in for this subtree, byte-for-byte?"*

Validity is strict by construction: a view is served only while
``Catalog.data_version_tuple()`` still equals the stamp taken around the
build (the same machinery that retires the process-pool dispatch
backend's worker snapshots). Any write — DML through the database,
branch checkout via ``replace_table``, even a direct ``Table`` mutation —
moves the tuple and silently retires every view, so a maintenance-on run
can never serve rows a maintenance-off run would not compute.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.plan import logical
from repro.plan.fingerprint import fingerprints
from repro.plan.rules import view_output_projection
from repro.storage.types import Row


def source_tables(plan: logical.PlanNode) -> tuple[str, ...]:
    """Base tables a subtree reads (lowercased, deduplicated, sorted)."""
    tables = {
        node.table.lower()
        for node in plan.walk()
        if isinstance(node, (logical.Scan, logical.IndexScan))
    }
    return tuple(sorted(tables))


@dataclass(frozen=True)
class MaterializedView:
    """One materialized subplan: rows plus everything needed to serve them."""

    name: str
    #: Lenient digest of the source subtree — the advisor's dedupe key.
    lenient: str
    #: Strict digest of the representative plan the rows were computed from.
    strict: str
    plan: logical.PlanNode
    rows: tuple[Row, ...]
    #: ``Catalog.data_version_tuple()`` at build time; the validity stamp.
    built_version: tuple
    tables: tuple[str, ...]
    #: Unique per build — keeps ViewScan fingerprints (and therefore
    #: subplan-cache keys) from aliasing rows across rebuilds.
    build_id: int
    #: Advisor occurrence count when the view was built (steering detail).
    occurrences: int

    @property
    def row_count(self) -> int:
        return len(self.rows)


class ViewStore:
    """The runtime's registry of materialized views.

    Thread-safe: the serving path resolves views from scheduler worker
    threads (and builds ViewScans from them) while the maintenance thread
    installs and retires entries.
    """

    def __init__(self, max_views: int = 8) -> None:
        self._max_views = max_views
        self._by_lenient: dict[str, MaterializedView] = {}
        self._by_strict: dict[str, MaterializedView] = {}
        self._next_build_id = 1
        self._lock = threading.Lock()
        #: Observability counters.
        self.builds = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_lenient)

    def capacity_left(self) -> int:
        with self._lock:
            return max(0, self._max_views - len(self._by_lenient))

    def next_build_id(self) -> int:
        with self._lock:
            build_id = self._next_build_id
            self._next_build_id += 1
            return build_id

    # -- installation / retirement -------------------------------------------

    def install(self, view: MaterializedView) -> bool:
        """Install (or refresh) a view; returns False when the store is
        full of views at least as hot — the coldest installed view is
        displaced only by a strictly hotter candidate."""
        with self._lock:
            previous = self._by_lenient.get(view.lenient)
            if previous is not None:
                self._by_strict.pop(previous.strict, None)
            elif len(self._by_lenient) >= self._max_views:
                coldest = min(
                    self._by_lenient.values(),
                    key=lambda v: (v.occurrences, -v.build_id),
                )
                if coldest.occurrences >= view.occurrences:
                    return False
                del self._by_lenient[coldest.lenient]
                self._by_strict.pop(coldest.strict, None)
                self.invalidations += 1
            self._by_lenient[view.lenient] = view
            self._by_strict[view.strict] = view
            self.builds += 1
            return True

    def discard(self, lenient: str) -> None:
        with self._lock:
            view = self._by_lenient.pop(lenient, None)
            if view is not None:
                self._by_strict.pop(view.strict, None)
                self.invalidations += 1

    def retire_for_tables(self, tables: set[str]) -> int:
        """Drop views reading any of ``tables`` (lowercased); returns count."""
        with self._lock:
            victims = [
                view
                for view in self._by_lenient.values()
                if tables.intersection(view.tables)
            ]
            for view in victims:
                del self._by_lenient[view.lenient]
                self._by_strict.pop(view.strict, None)
            self.invalidations += len(victims)
            return len(victims)

    def retire_all(self) -> int:
        with self._lock:
            count = len(self._by_lenient)
            self._by_lenient.clear()
            self._by_strict.clear()
            self.invalidations += count
            return count

    # -- resolution (the serving path) ----------------------------------------

    def snapshot(self) -> list[MaterializedView]:
        with self._lock:
            return list(self._by_lenient.values())

    def has_lenient(self, lenient: str) -> bool:
        with self._lock:
            return lenient in self._by_lenient

    def fingerprints_materialized(self) -> set[str]:
        with self._lock:
            return set(self._by_lenient)

    def resolve(
        self, node: logical.PlanNode, version: tuple
    ) -> logical.ViewScan | None:
        """A ViewScan standing in for ``node``, or None.

        Strict fingerprint match serves the stored rows directly; a
        lenient match is closed only when
        :func:`~repro.plan.rules.view_output_projection` proves the
        difference is a pure output-column permutation. Either way the
        view must still be valid for the catalog's current data state —
        ``version`` is ``Catalog.data_version_tuple()``, computed once
        per rewrite pass by the caller (it cannot change under the serve
        lock, and recomputing the sorted tuple per node is hot-path
        waste).
        """
        digests = fingerprints(node)
        with self._lock:
            view = self._by_strict.get(digests.strict)
            if view is None:
                view = self._by_lenient.get(digests.lenient)
            if view is None:
                return None
        if view.built_version != version:
            return None
        projection = view_output_projection(node, view.plan)
        if projection is None:
            return None
        return logical.ViewScan(
            name=view.name,
            source_strict=view.strict,
            build_id=view.build_id,
            columns=node.output,
            rows=view.rows,
            projection=projection,
        )
