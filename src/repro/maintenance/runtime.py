"""The sleeper-agent maintenance runtime: idle-time work that makes the
next probe cheaper.

The paper's sleeper agents are not just commentators — between agent
turns they do offline work: materializing hot shared subplans, building
access-path structures, and keeping the store warm for the next
speculation burst. This module turns the advisory layers this codebase
already had (:class:`~repro.core.mqo.MaterializationAdvisor` suggestions,
lazily-recomputed statistics, a subplan cache that forgets under
pressure) into *acted-on* maintenance:

* **view materializer** — executes the advisor's hot subplans once (on
  the process dispatch substrate when a warm pool exists, else inline
  through the shared subplan cache), registers the result as a
  version-stamped :class:`~repro.maintenance.views.MaterializedView`, and
  rewrites incoming plans to scan the view
  (:func:`repro.plan.rules.rewrite_with_materialized_views`) when strict
  fingerprints match — falling back to lenient matches closed by a pure
  output-column permutation;
* **auto-indexer** — mines repeated equality/range predicates
  (:class:`~repro.maintenance.indexer.PredicateMiner`) and builds
  *auxiliary* hash/sorted indexes that the executor's scan paths use via
  the :func:`repro.plan.rules.rewrite_with_auxiliary_indexes` rewrite,
  while staying invisible to the planner so plan fingerprints (and
  therefore history attribution) never change;
* **statistics refresher + cache pre-warmer** — re-derives
  :mod:`repro.storage.statistics` for tables touched by write bursts and
  re-installs evicted hot :class:`~repro.engine.executor.SubplanCache`
  entries from the surviving views.

Scheduling: jobs run in gateway idle windows — the admission loop calls
:meth:`MaintenanceRuntime.notify_idle` whenever it drains its queue, and
the runtime's background thread takes the gateway's serve lock so no
probe is ever co-resident with maintenance work. The serve-preemption
rule is strict: between every unit of work the runtime checks for
pending probes and yields the lock immediately. ``run_pending()`` is the
same machinery invoked synchronously (tests, benchmarks, embedders
without a streaming gateway).

Equivalence: every artifact is validated against the catalog's
version/staleness machinery (``Catalog.data_version_tuple()`` stamps for
views, per-table ``data_version`` tracking for auxiliary indexes,
``ChangeEvent`` retirement), all rewrites happen strictly after
fingerprint/history bookkeeping and only for exact (unsampled) runs, and
every rewrite preserves rows *and row order* — so answers are
byte-identical to a maintenance-off run.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.columnar import make_executor, resolve_engine
from repro.engine.executor import ExecContext, subplan_cache_key
from repro.maintenance.indexer import KIND_EQ, PredicateMiner
from repro.maintenance.views import MaterializedView, ViewStore, source_tables
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.plan import logical, rules

if TYPE_CHECKING:
    from repro.core.system import AgentFirstDataSystem
    from repro.db.database import ChangeEvent

#: Environment override: ``REPRO_MAINTENANCE=1`` enables the runtime for
#: every system whose config leaves ``enable_maintenance`` unset — CI's
#: lever for the maintenance-on differential leg of the tier-1 suite.
MAINTENANCE_ENV_VAR = "REPRO_MAINTENANCE"

_TRUTHY = ("1", "true", "yes", "on")


def resolve_maintenance_enabled(enabled: bool | None) -> bool:
    """Normalise the maintenance switch (None -> env override, else off)."""
    if enabled is not None:
        return bool(enabled)
    return os.environ.get(MAINTENANCE_ENV_VAR, "").strip().lower() in _TRUTHY


@dataclass
class MaintenanceConfig:
    """Knobs for the sleeper-agent jobs; defaults suit the benches/tests."""

    #: Most views kept at once; the advisor's hottest candidates win.
    max_views: int = 8
    #: Advisor occurrence threshold for materializing (None -> advisor's).
    view_min_occurrences: int | None = None
    #: Mined-predicate demand threshold for building an auxiliary index.
    index_min_occurrences: int = 4
    #: Tables smaller than this are never worth indexing.
    index_min_rows: int = 256
    materialize_views: bool = True
    auto_index: bool = True
    refresh_statistics: bool = True
    prewarm_cache: bool = True


@dataclass
class MaintenanceReport:
    """What one maintenance pass did (returned by :meth:`run_pending`)."""

    views_built: list[str] = field(default_factory=list)
    indexes_built: list[tuple[str, str, str]] = field(default_factory=list)
    stats_refreshed: list[str] = field(default_factory=list)
    cache_entries_rewarmed: int = 0
    preempted: bool = False

    def did_work(self) -> bool:
        return bool(
            self.views_built
            or self.indexes_built
            or self.stats_refreshed
            or self.cache_entries_rewarmed
        )


class MaintenanceRuntime:
    """Owns the sleeper-agent jobs and their artifacts for one system.

    Lifetime counters live in the shared metrics registry behind
    :class:`~repro.obs.metrics.MetricAttr` shims — attribute reads and
    ``stats()`` keys are unchanged. Job counters are incremented only by
    the maintenance thread; ``idle_notifications`` by the gateway loop
    (same single-writer-per-counter discipline as before).
    """

    runs = MetricAttr("_m_runs")
    views_built = MetricAttr("_m_views_built")
    indexes_built = MetricAttr("_m_indexes_built")
    stats_refreshes = MetricAttr("_m_stats_refreshes")
    cache_rewarms = MetricAttr("_m_cache_rewarms")
    preemptions = MetricAttr("_m_preemptions")
    idle_notifications = MetricAttr("_m_idle_notifications")

    def __init__(
        self,
        system: "AgentFirstDataSystem",
        config: MaintenanceConfig | None = None,
        enabled: bool | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.config = config or MaintenanceConfig()
        self.enabled = resolve_maintenance_enabled(enabled)
        self.views = ViewStore(max_views=self.config.max_views)
        self.miner = PredicateMiner()
        self._dirty_tables: set[str] = set()
        #: Candidates that failed to build or install, recorded with the
        #: demand count at the failed attempt: retried only once demand
        #: grows past it. Without this, a candidate that can never win a
        #: view slot (or whose source table was dropped) would make
        #: ``_has_work`` true forever and burn every idle window on a
        #: doomed rebuild.
        self._deferred_views: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Steering-note memo: plans repeat heavily within and across
        #: windows, so notes are computed once per (plan, artifact state).
        self._notes_memo: dict[str, list[str]] = {}
        self._notes_stamp: tuple | None = None
        #: Background idle-loop machinery (started lazily on first idle).
        self._wake = threading.Event()
        self._stop = False
        self._closed = False
        self._thread: threading.Thread | None = None
        #: Lifetime counters (observability; the bench records them).
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        for slot, name, help_text in (
            ("_m_runs", "runs_total", "Maintenance passes executed."),
            ("_m_views_built", "views_built_total", "Views materialized."),
            ("_m_indexes_built", "indexes_built_total", "Auxiliary indexes built."),
            ("_m_stats_refreshes", "stats_refreshes_total", "Statistics refreshes."),
            ("_m_cache_rewarms", "cache_rewarms_total", "Subplan cache re-warms."),
            ("_m_preemptions", "preemptions_total", "Jobs preempted by serving demand."),
            (
                "_m_idle_notifications",
                "idle_notifications_total",
                "Gateway idle-window signals received.",
            ),
        ):
            setattr(
                self,
                slot,
                registry.counter(f"repro_maintenance_{name}", help_text).bind(),
            )
        self.runs = 0
        self.views_built = 0
        self.indexes_built = 0
        self.stats_refreshes = 0
        self.cache_rewarms = 0
        self.preemptions = 0
        self.idle_notifications = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> None:
        """Hook the serving path (only called when enabled): execution-time
        rewrites, predicate mining, and the gateway idle signal."""
        optimizer = self.system.optimizer
        optimizer.execution_rewriter = self.rewrite_for_execution
        optimizer.plan_observer = self.miner.observe
        self.system.gateway.idle_hook = self.notify_idle

    def observe_change(self, event: "ChangeEvent") -> None:
        """Retire artifacts invalidated by a schema/data change.

        Views are dropped eagerly (their version stamps would refuse to
        serve anyway — this just frees the rows); the touched table is
        marked dirty for the statistics refresher. Auxiliary indexes need
        nothing: catalog-mediated DML maintains them in place.
        """
        if not self.enabled:
            return
        table = event.table.lower()
        if event.kind in ("create", "drop"):
            # Schema changes move every view's version stamp; drop them all.
            self.views.retire_all()
        else:
            self.views.retire_for_tables({table})
        with self._lock:
            self._dirty_tables.add(table)

    # -- the serving-path hooks ------------------------------------------------

    def rewrite_for_execution(self, plan: logical.PlanNode) -> logical.PlanNode:
        """The optimizer's execution-time rewrite (exact runs only).

        Never raises: any surprise falls back to the original plan, so a
        sick maintenance artifact can cost speed but never an answer.
        """
        catalog = self.system.db.catalog
        original = plan
        try:
            if len(self.views):
                # One version stamp for the whole pass: it cannot move
                # while the serve lock is held, and per-node recomputation
                # of the sorted tuple is measurable on 64-agent windows.
                version = catalog.data_version_tuple()
                plan = rules.rewrite_with_materialized_views(
                    plan, lambda node: self.views.resolve(node, version)
                )
            if catalog.auxiliary_index_keys():
                plan = rules.rewrite_with_auxiliary_indexes(plan, catalog)
            return plan
        except Exception:  # pragma: no cover - defensive
            return original

    def serving_notes(self, plan: logical.PlanNode | None) -> list[str]:
        """Sleeper-agent steering lines for a plan about to be answered.

        Deterministic given runtime state (which cannot change while the
        serve lock is held), so notes match what execution actually did.
        Memoized per (plan strict fingerprint, artifact state): swarms
        repeat the same plans heavily, and re-deriving the note would
        otherwise cost a second rewrite pass per query on the serving
        path.
        """
        if not self.enabled or plan is None:
            return []
        catalog = self.system.db.catalog
        from repro.plan.fingerprint import fingerprints

        stamp = (catalog.version(), self.views.builds, self.views.invalidations)
        strict = fingerprints(plan).strict
        with self._lock:
            if stamp != self._notes_stamp:
                self._notes_memo = {}
                self._notes_stamp = stamp
            cached = self._notes_memo.get(strict)
            if cached is not None:
                return list(cached)
        notes = self._derive_serving_notes(plan, catalog)
        with self._lock:
            if stamp == self._notes_stamp and len(self._notes_memo) < 1024:
                self._notes_memo[strict] = list(notes)
        return notes

    def _derive_serving_notes(self, plan: logical.PlanNode, catalog) -> list[str]:
        """Derive notes from the *same* rewrite pipeline execution uses —
        views first, then indexes over the view-rewritten plan — so a
        predicate swallowed by a ViewScan is never falsely credited to an
        index."""
        notes: list[str] = []
        try:
            rewritten = self.rewrite_for_execution(plan)
            for node in rewritten.walk():
                if isinstance(node, logical.ViewScan):
                    notes.append(
                        f"sleeper agent: served from materialized view"
                        f" {node.name} ({len(node.rows)} rows, built in an"
                        f" idle window instead of recomputing the subplan)"
                    )
                    break
            for node in rewritten.walk():
                if isinstance(node, logical.IndexScan) and node.row_id_order:
                    kind = "hash" if node.is_equality else "sorted"
                    notes.append(
                        f"sleeper agent: auto-built {kind} index on"
                        f" {node.table}.{node.index_column} served this"
                        f" predicate"
                    )
                    break
        except Exception:  # pragma: no cover - steering must never break serving
            return notes
        return notes

    # -- idle scheduling -------------------------------------------------------

    def notify_idle(self) -> None:
        """Gateway signal: no probes in flight — a maintenance window opened.

        Deliberately cheap: it runs on the gateway's admission-loop
        thread, so it only wakes the background worker — the (heavier)
        has-work scan happens over there.
        """
        if not self.enabled or self._closed:
            return
        self.idle_notifications += 1
        self._ensure_thread()
        self._wake.set()

    def _ensure_thread(self) -> None:
        if self._closed:
            return
        if self._thread is None or not self._thread.is_alive():
            self._stop = False
            self._thread = threading.Thread(
                target=self._idle_loop, name="sleeper-maintenance", daemon=True
            )
            self._thread.start()

    def _idle_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._stop:
                return
            try:
                if self._has_work():
                    self.run_pending(preemptible=True)
            except Exception:  # pragma: no cover - the loop must survive
                pass

    def stop(self) -> None:
        """Stop the background loop for good (idempotent; system.close
        calls this). Later idle notifications become no-ops — a stopped
        runtime stays stopped; ``run_pending()`` remains available."""
        self._closed = True
        self._stop = True
        self._wake.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    def _has_work(self) -> bool:
        """Would :meth:`run_pending` actually do anything right now?

        Must mirror the jobs' own skip conditions exactly (budget,
        planner-index shadowing, table-size floors) — a looser predicate
        here would wake the worker to take the serve lock for a no-op
        pass after every drained window, forever.
        """
        with self._lock:
            if self._dirty_tables and self.config.refresh_statistics:
                return True
        catalog = self.system.db.catalog
        version = catalog.data_version_tuple()
        installed = self.views.snapshot()
        if any(self._buildable_view_candidates()):
            return True
        if self.config.prewarm_cache:
            cache = self.system.optimizer.cache
            if cache is not None:
                for view in installed:
                    if view.built_version != version:
                        continue
                    key = subplan_cache_key(view.plan, 1.0, 0)
                    if key is not None and not cache.contains(key):
                        return True
        if self.config.auto_index and any(self._buildable_index_candidates()):
            return True
        return False

    # -- the maintenance pass --------------------------------------------------

    def run_pending(self, preemptible: bool = False) -> MaintenanceReport:
        """Run every due sleeper-agent job under the gateway's serve lock.

        With ``preemptible=True`` (the background idle loop) the strict
        serve-preemption rule applies: the pass stops between work units
        as soon as any probe is pending admission. The synchronous form
        (tests, benchmarks) runs to completion.
        """
        report = MaintenanceReport()
        if not self.enabled:
            return report
        gateway = self.system.gateway
        with gateway.serve_lock:
            self.runs += 1
            jobs = (
                self._job_refresh_statistics,
                self._job_auto_index,
                self._job_materialize_views,
                self._job_prewarm_cache,
            )
            for job in jobs:
                if report.preempted:
                    break  # a job already recorded the preemption
                if preemptible and gateway.serving_demand() > 0:
                    report.preempted = True
                    self.preemptions += 1
                    break
                job(report, preemptible)
        return report

    def _preempt(self, preemptible: bool) -> bool:
        # serving_demand (not just pending_probes): probes already admitted
        # into a window — or direct submit_many windows — block on the
        # serve lock without ever sitting in the admission queue, and the
        # strict preemption rule owes them the lock just the same.
        return preemptible and self.system.gateway.serving_demand() > 0

    def _view_threshold(self) -> int:
        if self.config.view_min_occurrences is not None:
            return self.config.view_min_occurrences
        return self.system.optimizer.advisor.min_occurrences

    # -- job: statistics refresher --------------------------------------------

    def _job_refresh_statistics(
        self, report: MaintenanceReport, preemptible: bool
    ) -> None:
        if not self.config.refresh_statistics:
            return
        with self._lock:
            dirty = sorted(self._dirty_tables)
            self._dirty_tables.clear()
        catalog = self.system.db.catalog
        for table in dirty:
            if self._preempt(preemptible):
                with self._lock:  # hand the remainder to the next window
                    self._dirty_tables.update(
                        t for t in dirty if t not in report.stats_refreshed
                    )
                report.preempted = True
                self.preemptions += 1
                return
            if not catalog.has_table(table):
                continue
            catalog.stats(table)  # recompute + cache while nobody is waiting
            report.stats_refreshed.append(table)
            self.stats_refreshes += 1

    # -- job: auto-indexer -----------------------------------------------------

    def _buildable_index_candidates(self):
        """Mined keys the auto-indexer would genuinely build right now.

        The single filter both :meth:`_has_work` and the job use — skips
        already-built keys, dropped/tiny tables, and columns the planner
        already indexes (those queries were rewritten at plan time and
        never reach the execution-time rewrite).
        """
        catalog = self.system.db.catalog
        existing = set(catalog.auxiliary_index_keys())
        for candidate in self.miner.candidates(self.config.index_min_occurrences):
            kind = "hash" if candidate.kind == KIND_EQ else "sorted"
            key = (candidate.table, candidate.column, kind)
            if key in existing:
                continue
            if not catalog.has_table(candidate.table):
                continue
            if catalog.table(candidate.table).num_rows < self.config.index_min_rows:
                continue
            if kind == "hash" and catalog.hash_index(candidate.table, candidate.column):
                continue
            if kind == "sorted" and catalog.sorted_index(
                candidate.table, candidate.column
            ):
                continue
            yield key

    def _job_auto_index(self, report: MaintenanceReport, preemptible: bool) -> None:
        if not self.config.auto_index:
            return
        catalog = self.system.db.catalog
        for table, column, kind in list(self._buildable_index_candidates()):
            if self._preempt(preemptible):
                report.preempted = True
                self.preemptions += 1
                return
            try:
                if kind == "hash":
                    catalog.create_auxiliary_hash_index(table, column)
                else:
                    catalog.create_auxiliary_sorted_index(table, column)
            except Exception:  # pragma: no cover - racing DDL; skip quietly
                continue
            report.indexes_built.append((table, column, kind))
            self.indexes_built += 1

    # -- job: view materializer -------------------------------------------------

    def _buildable_view_candidates(self):
        """Advisor candidates the materializer would act on right now.

        The single selection both :meth:`_has_work` and the job use —
        skips candidates whose installed view is still valid, candidates
        deferred at their current demand level (failed builds/installs
        wait for demand growth), and everything past the view budget.
        Like the auto-indexer's twin generator, sharing it is what keeps
        the wake-up predicate and the job from drifting into an idle loop
        that spins (or sleeps through real work).
        """
        if not self.config.materialize_views:
            return
        catalog = self.system.db.catalog
        version = catalog.data_version_tuple()
        current = {view.lenient: view for view in self.views.snapshot()}
        with self._lock:
            deferred = dict(self._deferred_views)
        at_capacity = len(current) >= self.config.max_views
        coldest_occurrences = min(
            (view.occurrences for view in current.values()), default=0
        )
        budget = self.config.max_views
        for candidate in self.system.optimizer.advisor.candidates(
            self._view_threshold()
        ):
            if budget <= 0:
                return
            existing = current.get(candidate.fingerprint)
            if existing is not None and existing.built_version == version:
                budget -= 1  # still valid: occupies a slot, needs no work
                continue
            if deferred.get(candidate.fingerprint, -1) >= candidate.count:
                continue  # failed at this demand level: wait for growth
            if (
                existing is None
                and at_capacity
                and candidate.count <= coldest_occurrences
            ):
                # The store would refuse the install (it only displaces a
                # strictly colder view): skip *before* paying for the
                # build, not after.
                continue
            budget -= 1
            yield candidate

    def _job_materialize_views(
        self, report: MaintenanceReport, preemptible: bool
    ) -> None:
        for candidate in list(self._buildable_view_candidates()):
            if self._preempt(preemptible):
                report.preempted = True
                self.preemptions += 1
                return
            view = self._build_view(candidate)
            if view is None or not self.views.install(view):
                # Unbuildable (dropped table, racing write) or refused by a
                # store full of at-least-as-hot views: defer until demand
                # grows, or _has_work would retry this every idle window.
                with self._lock:
                    self._deferred_views[candidate.fingerprint] = candidate.count
                continue
            with self._lock:
                self._deferred_views.pop(candidate.fingerprint, None)
            report.views_built.append(view.name)
            self.views_built += 1

    def _build_view(self, candidate) -> MaterializedView | None:
        """Execute one hot subplan and stamp the result.

        The version tuple is read before and after the build; a mismatch
        means a write raced the execution, and the result is discarded —
        a view may only ever serve rows the current catalog would compute.
        """
        catalog = self.system.db.catalog
        before = catalog.data_version_tuple()
        rows = self._execute_subplan(candidate.plan)
        if rows is None:
            return None
        if catalog.data_version_tuple() != before:
            return None
        return MaterializedView(
            name=f"mv_{candidate.fingerprint[:10]}",
            lenient=candidate.fingerprint,
            strict=candidate.strict_fingerprint,
            plan=candidate.plan,
            rows=tuple(rows),
            built_version=before,
            tables=source_tables(candidate.plan),
            build_id=self.views.next_build_id(),
            occurrences=candidate.count,
        )

    def _execute_subplan(self, plan: logical.PlanNode) -> list | None:
        """One engine run of a hot subplan, off the serving path.

        Prefers the scheduler's process dispatch substrate when a warm
        worker pool is already up (the build then costs the serving
        process nothing but a pickle); otherwise runs inline through the
        session's shared subplan cache, which doubles as a pre-warm.
        """
        optimizer = self.system.optimizer
        dispatcher = getattr(self.system.scheduler, "_dispatcher", None)
        if dispatcher is not None and getattr(dispatcher, "_pool", None) is not None:
            try:
                from repro.core.dispatch import SpeculationPayload

                payload = SpeculationPayload(
                    plan=plan,
                    sample_rate=1.0,
                    sample_seed=0,
                    engine=resolve_engine(optimizer.engine),
                )
                [outcome] = dispatcher.run(
                    self.system.db.catalog, [payload], optimizer.cache is not None
                )
                if outcome.error is None and outcome.result is not None:
                    return list(outcome.result.rows)
                return None
            except Exception:
                pass  # pool trouble: build inline instead
        try:
            context = ExecContext(cache=optimizer.cache)
            executor = make_executor(
                self.system.db.catalog, context, optimizer.engine
            )
            return list(executor.run(plan).rows)
        except Exception:
            return None  # racing write tore a scan, or the plan went stale

    # -- job: cache pre-warmer ---------------------------------------------------

    def _job_prewarm_cache(self, report: MaintenanceReport, preemptible: bool) -> None:
        if not self.config.prewarm_cache:
            return
        cache = self.system.optimizer.cache
        if cache is None:
            return
        catalog = self.system.db.catalog
        version = catalog.data_version_tuple()
        for view in self.views.snapshot():
            if self._preempt(preemptible):
                report.preempted = True
                self.preemptions += 1
                return
            if view.built_version != version:
                continue
            key = subplan_cache_key(view.plan, 1.0, 0)
            if key is None or cache.contains(key):
                continue
            # Re-install the evicted hot entry under the *original* plan's
            # strict fingerprint, so even un-rewritten execution paths
            # (e.g. the subtree nested under a colder parent) hit it.
            cache.put(key, list(view.rows))
            report.cache_entries_rewarmed += 1
            self.cache_rewarms += 1

    # -- reporting ----------------------------------------------------------------

    def materialized_fingerprints(self) -> set[str]:
        """Lenient fingerprints with an installed view (suggestion flags)."""
        return self.views.fingerprints_materialized()

    def stats(self) -> dict:
        """Lifetime observability snapshot (benches record this)."""
        return {
            "enabled": self.enabled,
            "runs": self.runs,
            "views_built": self.views_built,
            "views_installed": len(self.views),
            "view_invalidations": self.views.invalidations,
            "indexes_built": self.indexes_built,
            "stats_refreshes": self.stats_refreshes,
            "cache_rewarms": self.cache_rewarms,
            "preemptions": self.preemptions,
            "idle_notifications": self.idle_notifications,
        }
