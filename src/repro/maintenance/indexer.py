"""Predicate mining for the auto-indexer sleeper agent.

The :class:`PredicateMiner` watches every logically-demanded plan (the
probe optimizer's ``plan_observer`` hook, which fires even for queries
answered from history — demand is demand) and counts simple
equality/range comparisons over base-table scans. When a (table, column,
kind) key recurs often enough on a large-enough table, the maintenance
runtime builds the matching auxiliary index in an idle window:

* ``eq``    -> :class:`~repro.storage.indexes.HashIndex`
* ``range`` -> :class:`~repro.storage.indexes.SortedIndex`

The miner uses the same (column, literal, op) extractor as the
execution-time rewrite (:func:`repro.plan.rules.simple_comparison`), so
every predicate it counts is one the rewrite will actually accelerate.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from repro.plan import logical
from repro.plan.rules import simple_comparison, split_conjuncts

#: Comparison kinds the auto-indexer understands.
KIND_EQ = "eq"
KIND_RANGE = "range"

_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class IndexCandidate:
    """One mined (table, column, kind) with its demand count."""

    table: str
    column: str
    kind: str  # 'eq' | 'range'
    count: int


class PredicateMiner:
    """Counts repeated simple predicates across observed plans.

    Each (table, column, kind) key is counted at most once per observed
    plan — a probe that filters the same column three ways is one unit of
    demand, not three. Thread-safe: observation happens on the serving
    path (potentially from scheduler worker threads).
    """

    def __init__(self) -> None:
        self._counts: Counter[tuple[str, str, str]] = Counter()
        self._lock = threading.Lock()

    def observe(self, plan: logical.PlanNode) -> None:
        keys: set[tuple[str, str, str]] = set()
        for node in plan.walk():
            if not (
                isinstance(node, logical.Filter)
                and isinstance(node.child, logical.Scan)
            ):
                continue
            scan = node.child
            for conjunct in split_conjuncts(node.predicate):
                column, literal, op = simple_comparison(conjunct, scan)
                if column is None or literal is None:
                    continue
                if op == "=":
                    kind = KIND_EQ
                elif op in _RANGE_OPS:
                    kind = KIND_RANGE
                else:
                    continue
                keys.add((scan.table.lower(), column.lower(), kind))
        if not keys:
            return
        with self._lock:
            for key in keys:
                self._counts[key] += 1

    def candidates(self, min_occurrences: int) -> list[IndexCandidate]:
        """Keys at or above the demand threshold, hottest first."""
        with self._lock:
            out = [
                IndexCandidate(table=t, column=c, kind=k, count=count)
                for (t, c, k), count in self._counts.items()
                if count >= min_occurrences
            ]
        out.sort(key=lambda cand: (-cand.count, cand.table, cand.column, cand.kind))
        return out

    def count(self, table: str, column: str, kind: str) -> int:
        with self._lock:
            return self._counts[(table.lower(), column.lower(), kind)]
