"""Sleeper-agent maintenance: idle-time work that acts on the advisors.

The runtime (:mod:`repro.maintenance.runtime`) schedules three jobs in
gateway idle windows — a view materializer consuming
:class:`~repro.core.mqo.MaterializationAdvisor` suggestions, an
auto-indexer fed by mined predicate history
(:mod:`repro.maintenance.indexer`), and a statistics refresher + subplan
cache pre-warmer — with every artifact validated through the catalog's
version machinery so maintenance-on answers stay byte-identical to a
maintenance-off run (:mod:`repro.maintenance.views`).
"""

from repro.maintenance.indexer import IndexCandidate, PredicateMiner
from repro.maintenance.runtime import (
    MAINTENANCE_ENV_VAR,
    MaintenanceConfig,
    MaintenanceReport,
    MaintenanceRuntime,
    resolve_maintenance_enabled,
)
from repro.maintenance.views import MaterializedView, ViewStore

__all__ = [
    "IndexCandidate",
    "MAINTENANCE_ENV_VAR",
    "MaintenanceConfig",
    "MaintenanceReport",
    "MaintenanceRuntime",
    "MaterializedView",
    "PredicateMiner",
    "ViewStore",
    "resolve_maintenance_enabled",
]
