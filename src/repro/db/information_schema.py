"""Virtual ``information_schema`` tables.

Rebuilt on demand from the live catalog so agents can explore metadata the
way they would on PostgreSQL (``SELECT table_name FROM
information_schema.tables``). ``row_count`` is included in the tables view
because exploring table sizes is one of the paper's canonical metadata
probes.
"""

from __future__ import annotations

from repro.storage.catalog import Catalog
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType

TABLES_NAME = "information_schema.tables"
COLUMNS_NAME = "information_schema.columns"

_TABLES_SCHEMA = TableSchema(
    name=TABLES_NAME,
    columns=(
        Column("table_name", DataType.TEXT, nullable=False),
        Column("row_count", DataType.INTEGER, nullable=False),
        Column("description", DataType.TEXT),
    ),
    description="catalog of user tables",
)

_COLUMNS_SCHEMA = TableSchema(
    name=COLUMNS_NAME,
    columns=(
        Column("table_name", DataType.TEXT, nullable=False),
        Column("column_name", DataType.TEXT, nullable=False),
        Column("ordinal_position", DataType.INTEGER, nullable=False),
        Column("data_type", DataType.TEXT, nullable=False),
        Column("is_nullable", DataType.BOOLEAN, nullable=False),
        Column("is_primary_key", DataType.BOOLEAN, nullable=False),
        Column("description", DataType.TEXT),
    ),
    description="catalog of user table columns",
)


def is_information_schema(name: str) -> bool:
    return name.lower().startswith("information_schema.")


def build_tables(catalog: Catalog) -> tuple[Table, Table]:
    """Materialise both info-schema tables from the current catalog state."""
    tables = Table(_TABLES_SCHEMA)
    columns = Table(_COLUMNS_SCHEMA)
    for schema in sorted(catalog.schemas(), key=lambda s: s.name.lower()):
        if is_information_schema(schema.name):
            continue
        table = catalog.table(schema.name)
        tables.insert((schema.name, table.num_rows, schema.description))
        for position, column in enumerate(schema.columns, start=1):
            columns.insert(
                (
                    schema.name,
                    column.name,
                    position,
                    column.data_type.value,
                    column.nullable,
                    column.primary_key,
                    column.description,
                )
            )
    return tables, columns
