"""Database facade: end-to-end SQL over the catalog, storage and engine."""

from repro.db.database import ChangeEvent, Database

__all__ = ["ChangeEvent", "Database"]
