"""The relational database facade.

``Database`` owns a :class:`~repro.storage.catalog.Catalog` and runs the
full pipeline: parse → build → optimize → execute. It also

* serves virtual ``information_schema`` tables (rebuilt when stale),
* evaluates DML (INSERT/UPDATE/DELETE) with index maintenance,
* publishes :class:`ChangeEvent` notifications that the agentic memory
  store's staleness tracker subscribes to (paper Sec. 6.1),
* accepts per-query sampling rates and a shared
  :class:`~repro.engine.executor.SubplanCache` — the hooks the probe
  optimizer drives, and
* optionally attaches a write-ahead log (:meth:`Database.attach_wal`,
  ``REPRO_WAL=1`` for an auto-provisioned temp directory) so committed
  state survives a crash; :meth:`Database.recover` rebuilds a facade from
  a log directory at the exact pre-crash version.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.db import information_schema as info_schema
from repro.engine.columnar import make_executor
from repro.engine.executor import ExecContext, Executor, SubplanCache
from repro.engine.expressions import compile_expr
from repro.engine.result import QueryResult
from repro.errors import CatalogError, ExecutionError, PlanError
from repro.plan.builder import build_plan
from repro.plan.cost import CostEstimate, estimate_cost
from repro.plan.logical import OneRow, OutputCol, PlanNode
from repro.plan.rules import optimize_plan
from repro.sql import nodes
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, TableSchema
from repro.storage.types import DataType, Value


@dataclass(frozen=True)
class ChangeEvent:
    """A schema or data change, published to registered observers.

    ``details`` carries row-level information for DML: tuples of
    ``(row_id, new_values_or_None)`` — ``None`` marks a delete. The
    branched transaction manager uses these to maintain write sets, and
    the agentic memory store uses the coarse fields for staleness.
    """

    kind: str  # 'create' | 'drop' | 'insert' | 'update' | 'delete'
    table: str
    row_count: int = 0
    details: tuple[tuple[int, tuple | None], ...] = ()


class Database:
    """A single-node SQL database with an agent-friendly surface."""

    def __init__(
        self, name: str = "db", *, wal_dir: str | bool | None = None
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self._observers: list[Callable[[ChangeEvent], None]] = []
        self._info_schema_version = -1
        #: Serve-state recovered alongside the catalog (set by
        #: :meth:`recover`; the serving system consumes it at rebuild).
        self.recovered_serve = None
        self._wal_tmp: str | None = None
        if wal_dir is None:
            # REPRO_WAL=1 turns durability on globally: every facade gets
            # a throwaway log directory (reclaimed at GC / interpreter
            # exit). Pass ``wal_dir=False`` to opt a facade out.
            if os.environ.get("REPRO_WAL", "") not in ("", "0"):
                wal_dir = tempfile.mkdtemp(prefix=f"repro-wal-{name}-")
                self._wal_tmp = wal_dir
        if wal_dir:
            self.attach_wal(wal_dir)

    # -- durability ------------------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.txn.wal.WriteAheadLog`, or ``None``."""
        return self.catalog.wal

    def attach_wal(self, directory: str, **wal_kwargs) -> None:
        """Attach a write-ahead log rooted at ``directory``.

        The directory must be fresh — reopening an existing log without
        replaying it would fork history, so that path goes through
        :meth:`recover` instead. An initial checkpoint captures whatever
        state the facade already holds, making the log self-contained
        from its first byte (replicas can seed from it immediately).
        """
        from repro.errors import WalError
        from repro.txn.wal import WriteAheadLog

        if self.catalog.wal is not None:
            raise WalError("a write-ahead log is already attached")
        if os.path.isdir(directory) and any(
            entry.startswith(("wal-", "ckpt-")) for entry in os.listdir(directory)
        ):
            raise WalError(
                f"{directory!r} already contains a write-ahead log; "
                "use Database.recover() to resume from it"
            )
        wal = WriteAheadLog(directory, **wal_kwargs)
        self.catalog.wal = wal
        self.checkpoint()
        weakref.finalize(self, _release_wal, wal, self._wal_tmp)

    def checkpoint(self) -> str | None:
        """Write a durable checkpoint now (no-op without a log attached, or
        while an admission window is open). Returns the checkpoint path."""
        wal = self.catalog.wal
        if wal is None:
            return None
        return wal.write_checkpoint(
            self.catalog, info_schema_marker=self._info_schema_version
        )

    @classmethod
    def recover(cls, directory: str, name: str = "db", **wal_kwargs) -> "Database":
        """Rebuild a facade from a WAL directory: checkpoint + tail replay.

        The recovered catalog sits at the exact pre-crash
        ``data_version_tuple()`` — row ids, version counters, and the
        information-schema freshness marker all match, so a recovered run
        is byte-identical to one that never crashed. The log stays
        attached and appendable. ``recovered_serve`` carries the serving
        system's state for :meth:`AgentFirstDataSystem.recover`.
        """
        from repro.txn.wal import recover as wal_recover

        state = wal_recover(directory, **wal_kwargs)
        db = cls(name, wal_dir=False)
        db.catalog = state.catalog
        db._info_schema_version = state.extra.get("info_schema_marker", -1)
        db.recovered_serve = state.serve
        weakref.finalize(db, _release_wal, state.wal, None)
        return db

    # -- observers -------------------------------------------------------------

    def on_change(self, callback: Callable[[ChangeEvent], None]) -> None:
        """Register a callback invoked after every schema/data change."""
        self._observers.append(callback)

    def _publish(self, event: ChangeEvent) -> None:
        for callback in self._observers:
            callback(event)
        # Checkpoint opportunistically at change boundaries (never
        # mid-admission-window; write_checkpoint refuses those).
        wal = self.catalog.wal
        if wal is not None and wal.checkpoint_due():
            self.checkpoint()

    # -- DDL helpers (programmatic API) ------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.catalog.create_table(schema)
        self._publish(ChangeEvent("create", schema.name))

    def insert_rows(self, table: str, rows: Iterable[Iterable[Value]]) -> int:
        materialized = [tuple(r) for r in rows]
        row_ids = self.catalog.insert_rows(table, materialized)
        stored = self.catalog.table(table)
        details = tuple((rid, stored.get(rid)) for rid in row_ids)
        self._publish(ChangeEvent("insert", table, len(row_ids), details))
        return len(row_ids)

    def table_names(self) -> list[str]:
        return [
            name
            for name in self.catalog.table_names()
            if not info_schema.is_information_schema(name)
        ]

    # -- query execution -----------------------------------------------------------

    def execute(
        self,
        sql: str,
        sample_rate: float = 1.0,
        sample_seed: int = 0,
        cache: SubplanCache | None = None,
        engine: str | None = None,
    ) -> QueryResult:
        """Parse and execute one statement, returning a result.

        ``sample_rate`` < 1 runs SELECTs approximately (Bernoulli-sampled
        scans with scaled aggregates); DML always runs exactly. ``engine``
        selects the execution engine for SELECTs (``"row"`` |
        ``"columnar"`` | ``"auto"``; ``None`` defers to the
        ``REPRO_ENGINE`` env override, then the row engine).
        """
        statement = parse_statement(sql)
        if isinstance(statement, nodes.Select):
            return self._execute_select(
                statement, sample_rate, sample_seed, cache, engine
            )
        if isinstance(statement, nodes.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, nodes.DropTable):
            return self._execute_drop(statement)
        if isinstance(statement, nodes.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, nodes.Update):
            return self._execute_update(statement)
        if isinstance(statement, nodes.Delete):
            return self._execute_delete(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def plan_select(self, sql: str) -> PlanNode:
        """Parse and plan (but do not run) a SELECT; used by analyses."""
        statement = parse_statement(sql)
        if not isinstance(statement, nodes.Select):
            raise PlanError("plan_select requires a SELECT statement")
        self._refresh_information_schema_if_needed(statement)
        plan = build_plan(statement, self.catalog)
        return optimize_plan(plan, self.catalog)

    def explain(self, sql: str) -> str:
        """EXPLAIN: the optimized plan plus its cost estimate."""
        plan = self.plan_select(sql)
        estimate = self.estimate(sql)
        return (
            plan.describe()
            + f"\n-- estimated rows: {estimate.rows:.0f}, cost: {estimate.cost:.0f}"
        )

    def estimate(self, sql: str) -> CostEstimate:
        """Cost-estimate a SELECT without executing it."""
        plan = self.plan_select(sql)
        return estimate_cost(plan, self.catalog)

    # -- SELECT ------------------------------------------------------------------

    def _execute_select(
        self,
        statement: nodes.Select,
        sample_rate: float,
        sample_seed: int,
        cache: SubplanCache | None,
        engine: str | None = None,
    ) -> QueryResult:
        self._refresh_information_schema_if_needed(statement)
        plan = build_plan(statement, self.catalog)
        plan = optimize_plan(plan, self.catalog)
        context = ExecContext(
            sample_rate=sample_rate, sample_seed=sample_seed, cache=cache
        )
        executor = make_executor(self.catalog, context, engine)
        return executor.run(plan)

    def _refresh_information_schema_if_needed(self, statement: nodes.Select) -> None:
        if not _references_information_schema(statement):
            return
        current = (
            self.catalog.schema_version,
            tuple(
                self.catalog.table(t).data_version
                for t in sorted(self.catalog.table_names())
                if not info_schema.is_information_schema(t)
            ),
        )
        marker = hash(current)
        if marker == self._info_schema_version:
            return
        for name in (info_schema.TABLES_NAME, info_schema.COLUMNS_NAME):
            if self.catalog.has_table(name):
                self.catalog.drop_table(name)
        tables, columns = info_schema.build_tables(self.catalog)
        self.catalog.register_table(tables)
        self.catalog.register_table(columns)
        # register_table/drop_table bump schema_version; recompute the marker
        # so the refresh is stable until a real change happens.
        current = (
            self.catalog.schema_version,
            tuple(
                self.catalog.table(t).data_version
                for t in sorted(self.catalog.table_names())
                if not info_schema.is_information_schema(t)
            ),
        )
        self._info_schema_version = hash(current)
        # Journal the marker: a recovered facade must consider the
        # replayed information-schema tables exactly as fresh as the
        # crashed one did, neither re-registering them (extra
        # schema_version bumps) nor laundering stale ones fresh.
        wal = self.catalog.wal
        if wal is not None:
            wal.append("info_schema_marker", (self._info_schema_version,))

    # -- DDL ------------------------------------------------------------------------

    def _execute_create(self, statement: nodes.CreateTable) -> QueryResult:
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return _status_result("ok")
        columns = tuple(
            Column(
                name=definition.name,
                data_type=DataType.parse(definition.type_name),
                nullable=not definition.not_null,
                primary_key=definition.primary_key,
            )
            for definition in statement.columns
        )
        self.create_table(TableSchema(statement.name, columns))
        return _status_result("ok")

    def _execute_drop(self, statement: nodes.DropTable) -> QueryResult:
        if statement.if_exists and not self.catalog.has_table(statement.name):
            return _status_result("ok")
        self.catalog.drop_table(statement.name)
        self._publish(ChangeEvent("drop", statement.name))
        return _status_result("ok")

    # -- DML ------------------------------------------------------------------------

    def _execute_insert(self, statement: nodes.Insert) -> QueryResult:
        if not self.catalog.has_table(statement.table):
            raise CatalogError(f"table {statement.table!r} does not exist")
        table = self.catalog.table(statement.table)
        schema = table.schema
        if statement.select is not None:
            select_result = self._execute_select(statement.select, 1.0, 0, None)
            raw_rows: list[tuple[Value, ...]] = list(select_result.rows)
        else:
            raw_rows = []
            for row_exprs in statement.rows:
                compiled = [compile_expr(e, (), None) for e in row_exprs]
                raw_rows.append(tuple(fn(()) for fn in compiled))
        rows = [self._widen_row(schema, statement.columns, row) for row in raw_rows]
        count = self.insert_rows(statement.table, rows)
        return _status_result(f"inserted {count}")

    def _widen_row(
        self,
        schema: TableSchema,
        columns: tuple[str, ...] | None,
        values: tuple[Value, ...],
    ) -> tuple[Value, ...]:
        if columns is None:
            if len(values) != len(schema.columns):
                raise ExecutionError(
                    f"INSERT expects {len(schema.columns)} values, got {len(values)}"
                )
            return values
        if len(columns) != len(values):
            raise ExecutionError(
                f"INSERT column list has {len(columns)} names but {len(values)} values"
            )
        full: list[Value] = [None] * len(schema.columns)
        for name, value in zip(columns, values):
            full[schema.position_of(name)] = value
        return tuple(full)

    def _execute_update(self, statement: nodes.Update) -> QueryResult:
        table = self.catalog.table(statement.table)
        schema = table.schema
        output = tuple(
            OutputCol(column.name, schema.name) for column in schema.columns
        )
        executor = Executor(self.catalog)
        where = (
            compile_expr(statement.where, output, executor)
            if statement.where is not None
            else None
        )
        assignments = [
            (schema.position_of(column), compile_expr(expr, output, executor))
            for column, expr in statement.assignments
        ]
        updates: list[tuple[int, tuple[Value, ...]]] = []
        for row_id, row in table.scan_with_ids():
            if where is not None:
                verdict = where(row)
                if verdict is None or verdict is False or verdict == 0:
                    continue
            new_row = list(row)
            for position, fn in assignments:
                new_row[position] = fn(row)
            updates.append((row_id, tuple(new_row)))
        for row_id, new_row in updates:
            self.catalog.update_row(statement.table, row_id, new_row)
        details = tuple(
            (rid, self.catalog.table(statement.table).get(rid)) for rid, _ in updates
        )
        self._publish(ChangeEvent("update", statement.table, len(updates), details))
        return _status_result(f"updated {len(updates)}")

    def _execute_delete(self, statement: nodes.Delete) -> QueryResult:
        table = self.catalog.table(statement.table)
        schema = table.schema
        output = tuple(
            OutputCol(column.name, schema.name) for column in schema.columns
        )
        executor = Executor(self.catalog)
        where = (
            compile_expr(statement.where, output, executor)
            if statement.where is not None
            else None
        )
        victims: list[int] = []
        for row_id, row in table.scan_with_ids():
            if where is not None:
                verdict = where(row)
                if verdict is None or verdict is False or verdict == 0:
                    continue
            victims.append(row_id)
        for row_id in victims:
            self.catalog.delete_row(statement.table, row_id)
        details = tuple((rid, None) for rid in victims)
        self._publish(ChangeEvent("delete", statement.table, len(victims), details))
        return _status_result(f"deleted {len(victims)}")


def _release_wal(wal, tmp_dir: str | None) -> None:
    """GC finalizer: close the log, reclaim an auto-provisioned temp dir."""
    try:
        wal.close()
    except Exception:
        pass
    if tmp_dir is not None:
        shutil.rmtree(tmp_dir, ignore_errors=True)


def _status_result(message: str) -> QueryResult:
    return QueryResult(columns=["status"], rows=[(message,)])


def _references_information_schema(statement: nodes.Select) -> bool:
    def ref_tables(ref: nodes.TableRef | None) -> list[str]:
        if ref is None:
            return []
        if isinstance(ref, nodes.TableName):
            return [ref.name]
        if isinstance(ref, nodes.SubqueryRef):
            return collect(ref.select)
        if isinstance(ref, nodes.Join):
            return ref_tables(ref.left) + ref_tables(ref.right)
        return []

    def collect(select: nodes.Select) -> list[str]:
        found = ref_tables(select.from_clause)
        for expr_source in _subquery_expressions(select):
            found.extend(collect(expr_source))
        return found

    return any(info_schema.is_information_schema(name) for name in collect(statement))


def _subquery_expressions(select: nodes.Select) -> list[nodes.Select]:
    """All subquery ASTs appearing in expressions of ``select``."""
    sources: list[nodes.Expr] = [item.expr for item in select.items]
    if select.where is not None:
        sources.append(select.where)
    if select.having is not None:
        sources.append(select.having)
    sources.extend(select.group_by)
    sources.extend(order.expr for order in select.order_by)
    out: list[nodes.Select] = []
    for expr in sources:
        for node in nodes.walk(expr):
            if isinstance(node, (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)):
                out.append(node.subquery)
    return out
