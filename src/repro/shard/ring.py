"""Consistent hash ring with explicit pinning: who owns a placement key.

The ring is the single placement authority for the shard tier — session
affinity (tenant/principal -> home shard) and table partitioning (row
value -> owning shard) both resolve through :meth:`HashRing.owner`, so an
agent's probes land on the shard that holds its partition slice without
any coordination.

Hashing goes through :func:`~repro.util.hashing.stable_hash_int` (SHA-1
based), never Python's salted builtin ``hash``: placement must agree
across processes and across runs (``PYTHONHASHSEED``), because shard
contents built in one process are queried by sessions opened in another.

Virtual nodes smooth the key distribution; :meth:`add_shard` extends the
ring in place, moving only the keys whose arc the new shard's points
capture — the property rebalancing relies on. :meth:`pin` overrides the
hash for a specific key (a hot tenant manually isolated on its own
shard); pins always win and survive ring growth.
"""

from __future__ import annotations

import bisect
import threading

from repro.util.hashing import stable_hash_int

#: Virtual nodes per shard: enough to keep the largest/smallest arc ratio
#: low at small shard counts without making ``owner`` lookups slow.
DEFAULT_VNODES = 64


class HashRing:
    """Consistent-hash placement of keys onto shard ids, with pinning."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards < 1:
            raise ValueError("a hash ring needs at least one shard")
        self.vnodes = max(1, int(vnodes))
        self._lock = threading.Lock()
        self._pins: dict = {}
        self._points: list[tuple[int, int]] = []
        self.shards = 0
        for _ in range(shards):
            self.add_shard()

    def add_shard(self) -> int:
        """Extend the ring with one more shard; returns its id.

        Only keys on the arcs the new shard's virtual points capture move
        — everything else keeps its owner, which is what makes spin-up a
        targeted migration instead of a full reshuffle.
        """
        with self._lock:
            shard_id = self.shards
            for vnode in range(self.vnodes):
                point = (stable_hash_int(("shard-ring", shard_id, vnode)), shard_id)
                bisect.insort(self._points, point)
            self.shards += 1
            return shard_id

    def owner(self, key) -> int:
        """The shard id owning ``key`` (pins first, then the ring)."""
        with self._lock:
            if key in self._pins:
                return self._pins[key]
            position = stable_hash_int(("shard-key", key))
            index = bisect.bisect_right(self._points, (position, self.shards))
            if index == len(self._points):  # wrap past the last point
                index = 0
            return self._points[index][1]

    def pin(self, key, shard_id: int) -> None:
        """Force ``key`` onto ``shard_id`` regardless of the hash."""
        if not 0 <= shard_id < self.shards:
            raise ValueError(f"cannot pin to unknown shard {shard_id}")
        with self._lock:
            self._pins[key] = shard_id

    def unpin(self, key) -> None:
        with self._lock:
            self._pins.pop(key, None)

    def pins(self) -> dict:
        with self._lock:
            return dict(self._pins)
