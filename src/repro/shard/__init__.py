"""Sharded multi-tenant serving tier: router, matchmaker, scatter-gather.

Scale-out in front of the gateway (ROADMAP: the million-user story needs
many systems, not one). Catalogs partition by tenant/principal across N
complete :class:`~repro.core.system.AgentFirstDataSystem` shards; a
pull-based matchmaker (DIRAC's MatcherHandler pattern) lets shards
advertise capacity and pull queued work; cross-partition probes compile
to scatter-gather plans with partial aggregates merged at the router.
``REPRO_SHARDS=N`` routes cohort runners through the tier globally.
"""

from repro.shard.matchmaker import CapacityAdvert, Matchmaker, WorkUnit
from repro.shard.ring import HashRing
from repro.shard.router import ShardRouter
from repro.shard.scatter import ScatterAnalysis, ScatterPlan, analyze, merge_partials
from repro.shard.system import (
    SHARDS_ENV_VAR,
    ShardedSystem,
    ShardHandle,
    ShardSession,
    resolve_shard_count,
    sharded_serving_system,
)

__all__ = [
    "CapacityAdvert",
    "HashRing",
    "Matchmaker",
    "ScatterAnalysis",
    "ScatterPlan",
    "ShardedSystem",
    "ShardHandle",
    "ShardRouter",
    "ShardSession",
    "SHARDS_ENV_VAR",
    "WorkUnit",
    "analyze",
    "merge_partials",
    "resolve_shard_count",
    "sharded_serving_system",
]
