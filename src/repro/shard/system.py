"""The sharded serving tier: many ``AgentFirstDataSystem``\\ s, one surface.

``ShardedSystem`` scales the agent-first design *out*: each shard is a
complete :class:`~repro.core.system.AgentFirstDataSystem` — its own
scheduler, subplan cache, maintenance runtime, QoS controller, optional
WAL/replicas — over its own :class:`~repro.db.Database`. The tier adds
three things in front:

* the :class:`~repro.shard.router.ShardRouter` (placement: hash ring +
  pins + partition map),
* the pull-based :class:`~repro.shard.matchmaker.Matchmaker` (shards
  advertise capacity and pull queued work; the router only steers),
* scatter-gather serving for genuinely cross-partition probes
  (:mod:`repro.shard.scatter`), with partial aggregates merged at the
  router and steering lines naming the shards consulted.

Shard state moves as :class:`~repro.storage.catalog.CatalogSnapshot`
values — the same wire format the process-dispatch backend ships to
worker processes — both at spin-up (``ShardedSystem`` construction
filters one source snapshot into per-shard slices) and at rebalancing
(:meth:`ShardedSystem.add_shard` seeds the newcomer from a donor
snapshot, then migrates exactly the rows whose ring arc it captured).

The facade exposes the same ``session()/submit()/submit_many()`` surface
as a single system. At ``shards=1`` everything passes straight through
to one ``AgentFirstDataSystem`` over the *source* database — no copies,
no scatter, no extra steering — so answers are byte-identical to a bare
system (the differential suite pins this). At ``shards>1`` the source
database is left untouched: every shard serves from its own copy, and a
tenant's home shard is authoritative for that tenant's writes.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

from repro.core.brief import Brief
from repro.core.gateway import AgentSession, ProbeTicket
from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.core.system import AgentFirstDataSystem, SystemConfig, shared_serving_system
from repro.db import Database
from repro.db.information_schema import is_information_schema
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, merge_snapshots
from repro.shard import scatter
from repro.shard.matchmaker import CapacityAdvert, Matchmaker, WorkUnit
from repro.shard.router import ShardRouter
from repro.storage.catalog import CatalogSnapshot
from repro.storage.table import Table
from repro.util.text import normalize_identifier

_LOG = logging.getLogger(__name__)

#: ``REPRO_SHARDS=N`` turns the shard tier on globally (mirrors
#: ``REPRO_QOS`` / ``REPRO_WAL``): cohort runners route through a
#: ``ShardedSystem`` of N shards instead of one shared system.
SHARDS_ENV_VAR = "REPRO_SHARDS"


def resolve_shard_count(shards: int | None = None) -> int:
    """Normalise a shard-count setting (None -> env override or 1)."""
    if shards is None:
        env = os.environ.get(SHARDS_ENV_VAR)
        shards = int(env) if env else 1
    return max(1, int(shards))


@dataclass
class ShardHandle:
    """One shard: its database, its serving system, and its capacity voice."""

    shard_id: int
    db: Database
    system: AgentFirstDataSystem

    def advertise(self) -> CapacityAdvert:
        """This shard's capacity offer for one matching round.

        Built from the gateway's stable stats pair (``windows_served`` /
        ``queue_depth_peak``) plus the live pending gauge; the shard's
        own QoS controller judges the watermark — per-shard lane/bucket
        state never leaves the shard.
        """
        stats = self.system.gateway.stats()
        pending = stats["pending"]
        tripped = False
        if self.system.qos is not None:
            tripped = self.system.qos.overload_cause(pending, 0.0) is not None
        return CapacityAdvert(
            shard_id=self.shard_id,
            pending=pending,
            windows_served=stats["windows_served"],
            queue_depth_peak=stats["queue_depth_peak"],
            watermark_tripped=tripped,
            replicas=len(self.system.replicas) if self.system.replicas else 0,
            slots=0 if tripped else max(0, self.system.gateway.max_batch - pending),
        )


class ShardedSystem:
    """A shard router + matchmaker over N complete serving systems."""

    def __init__(
        self,
        db: Database,
        shards: int | None = None,
        partition: dict[str, str] | None = None,
        config: SystemConfig | None = None,
        workers: int | None = None,
    ) -> None:
        self.count = resolve_shard_count(shards)
        self.router = ShardRouter(self.count, partition)
        #: Tier-level registry: matchmaker accounting lives here; shard
        #: registries merge in through :meth:`metrics` with a ``shard``
        #: label per series.
        self.metrics_registry = MetricsRegistry()
        self.matchmaker = Matchmaker(registry=self.metrics_registry)
        self._source = db
        self._closed = False
        self._close_lock = threading.Lock()
        if self.count == 1:
            # Passthrough: one shard over the source database itself.
            # Writes land where a bare system would put them, and the
            # serving path is exactly the bare system's — the shards=1
            # byte-identity differential depends on this.
            self.shards = [
                ShardHandle(0, db, AgentFirstDataSystem(db, config=config, workers=workers))
            ]
            return
        snapshot = db.catalog.snapshot()  # the shard-state wire format
        self.shards = []
        for shard_id in range(self.count):
            shard_db = _build_shard_db(db.name, snapshot, shard_id, self.router)
            self.shards.append(
                ShardHandle(
                    shard_id,
                    shard_db,
                    AgentFirstDataSystem(shard_db, config=config, workers=workers),
                )
            )

    # -- the serving surface ---------------------------------------------------

    def session(
        self,
        agent_id: str | None = None,
        principal: str | None = None,
        defaults: Brief | None = None,
    ) -> "AgentSession | ShardSession":
        """Open a session on the agent's home shard.

        Placement is sticky and deterministic: the same identity always
        lands on the same shard (ring hash of principal, else agent id);
        a fully anonymous session is matchmade to whichever shard
        advertises capacity right now.
        """
        if self.count == 1:
            return self.shards[0].system.session(
                agent_id=agent_id, principal=principal, defaults=defaults
            )
        shard_id = self.router.home_shard(agent_id, principal)
        if shard_id is None:
            shard_id = self.matchmaker.place([h.advertise() for h in self.shards])
        inner = self.shards[shard_id].system.session(
            agent_id=agent_id, principal=principal, defaults=defaults
        )
        return ShardSession(self, shard_id, inner)

    def submit(self, probe: Probe) -> ProbeResponse:
        return self.submit_many([probe])[0]

    def submit_many(self, probes) -> list[ProbeResponse]:
        """Serve a caller-assembled window across the tier.

        Probes group by home shard and the groups serve concurrently (one
        admission window per shard); scatter-eligible cross-partition
        probes fan out and merge. Responses come back in input order.
        """
        probes = list(probes)
        if not probes:
            return []
        if self.count == 1:
            return self.shards[0].system.submit_many(probes)
        responses: list[ProbeResponse | None] = [None] * len(probes)
        groups: dict[int, list[tuple[int, Probe, tuple | None]]] = {}
        scatters: list[tuple[int, _ScatterTicket]] = []
        for position, probe in enumerate(probes):
            route = self._route_probe(probe)
            if route.scatter_plans is not None:
                scatters.append(
                    (position, _ScatterTicket(self, probe, route.scatter_plans))
                )
            else:
                groups.setdefault(route.shard_id, []).append(
                    (position, probe, route.warn)
                )

        def serve_group(shard_id: int, members):
            return self.shards[shard_id].system.submit_many(
                [probe for _, probe, _ in members]
            )

        if groups:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                futures = {
                    pool.submit(serve_group, shard_id, members): (shard_id, members)
                    for shard_id, members in groups.items()
                }
                for future, (shard_id, members) in futures.items():
                    for (position, _probe, warn), response in zip(
                        members, future.result()
                    ):
                        if warn is not None:
                            self._note_partial_coverage(warn, shard_id, response)
                        responses[position] = response
        for position, ticket in scatters:
            responses[position] = ticket.result()
        return responses  # type: ignore[return-value]

    # -- routing ---------------------------------------------------------------

    def _route_probe(self, probe: Probe) -> "_Route":
        """Decide one probe's serving strategy (shards>1 only).

        Partition-pruned first: a probe whose every query pins the
        partition column to values owned by one shard routes straight
        there (the common tenant-local case — no scatter, no warning).
        Then scatter for fully-eligible cross-partition probes; anything
        else serves on the home shard, warned when it touches partitioned
        data it cannot fully see.
        """
        home = self.router.home_shard(probe.agent_id, probe.principal)
        if not self.router.partition or not probe.queries:
            return _Route(shard_id=self._or_matchmade(home))
        analyses = [scatter.analyze(sql, self.router.partition) for sql in probe.queries]
        if not any(a.partitioned_table for a in analyses):
            return _Route(shard_id=self._or_matchmade(home))
        owners: set[int] | None = set()
        for analysis in analyses:
            if analysis.partitioned_table is None:
                continue  # replicated-only query: serves fully on any shard
            if analysis.pinned_values:
                owners.update(
                    self.router.owner_of_value(value)
                    for value in analysis.pinned_values
                )
            else:
                owners = None
                break
        if owners is not None and len(owners) == 1:
            return _Route(shard_id=owners.pop())
        eligible = (
            all(a.plan is not None for a in analyses)
            and probe.termination is None
            and probe.semantic_search is None
            and not probe.memory_queries
        )
        if eligible:
            return _Route(scatter_plans=[a.plan for a in analyses])
        table = next(a.partitioned_table for a in analyses if a.partitioned_table)
        reason = next((a.reason for a in analyses if a.reason), "")
        return _Route(shard_id=self._or_matchmade(home), warn=(table, reason))

    def _or_matchmade(self, shard_id: int | None) -> int:
        if shard_id is not None:
            return shard_id
        return self.matchmaker.place([h.advertise() for h in self.shards])

    def _note_partial_coverage(
        self, warn: tuple[str, str], shard_id: int, response: ProbeResponse
    ) -> None:
        """Append the partial-coverage steering note (honesty over silence:
        a non-distributable probe against partitioned data saw one slice)."""
        table, reason = warn
        note = (
            f"shard router: {table} is partitioned across {self.count} shards"
            f" and this probe could not scatter"
            f" ({reason or 'not distributable'}); the answer covers"
            f" shard {shard_id}'s partition only"
        )
        if note not in response.steering:
            response.steering.append(note)

    # -- matchmaking -----------------------------------------------------------

    def pump(self) -> int:
        """Run one pull-matching round: shards advertise, queued units
        dispatch to whoever volunteered. Returns units placed."""
        if self.matchmaker.depth() == 0:
            return 0
        adverts = [h.advertise() for h in self.shards]
        matches = self.matchmaker.match(adverts)
        touched: set[int] = set()
        for unit, shard_id in matches:
            handle = self.shards[shard_id]
            try:
                unit.ticket = handle.system.gateway.submit(unit.probe)
            except Exception as exc:  # GatewayClosed during shutdown races
                unit.ticket = _FailedTicket(exc)
            touched.add(shard_id)
        for shard_id in touched:
            self.shards[shard_id].system.gateway.flush()
        return len(matches)

    # -- scatter-gather --------------------------------------------------------

    def scatter_submit(
        self, probe: Probe, plans: list[scatter.ScatterPlan], session=None
    ) -> "_ScatterTicket":
        return _ScatterTicket(self, probe, plans, session=session)

    # -- rebalancing -----------------------------------------------------------

    def add_shard(self) -> int:
        """Spin up one more shard and migrate its ring arc onto it.

        The newcomer seeds from a donor :class:`CatalogSnapshot` (shard
        0's replicated tables travel verbatim; partitioned tables start
        empty), the ring grows in place, and then exactly the rows whose
        partition value the new arcs captured move over — deletes on the
        donors run through SQL so change events invalidate history and
        caches honestly.
        """
        if self.count == 1:
            raise ValueError("cannot rebalance a passthrough (shards=1) tier")
        donor = self.shards[0].db
        snapshot = donor.catalog.snapshot()
        new_id = self.router.ring.add_shard()
        self.count = self.router.shards
        shard_db = _build_shard_db(
            self._source.name, snapshot, new_id, self.router, empty_partitioned=True
        )
        handle = ShardHandle(
            new_id, shard_db, AgentFirstDataSystem(shard_db, config=None)
        )
        for table, column in self.router.partition.items():
            names = [
                normalize_identifier(c)
                for c in donor.catalog.table(table).schema.column_names()
            ]
            value_index = names.index(column)
            for old in self.shards:
                moved_values = set()
                for row in old.db.catalog.table(table).scan():
                    value = row[value_index]
                    if self.router.owner_of_value(value) == new_id:
                        moved_values.add(value)
                for value in sorted(moved_values, key=repr):
                    predicate = _value_predicate(column, value)
                    rows = old.db.execute(
                        f"SELECT * FROM {table} WHERE {predicate}"
                    ).rows
                    if rows:
                        shard_db.insert_rows(table, rows)
                        old.db.execute(f"DELETE FROM {table} WHERE {predicate}")
        self.shards.append(handle)
        return new_id

    # -- lifecycle -------------------------------------------------------------

    def prestart(self) -> str:
        with ThreadPoolExecutor(max_workers=self.count) as pool:
            backends = list(pool.map(lambda h: h.system.prestart(), self.shards))
        return backends[0]

    def close(self) -> None:
        """Close every shard concurrently; idempotent and safe before
        :meth:`prestart` (each shard's own ``close`` already is)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with ThreadPoolExecutor(max_workers=self.count) as pool:
            list(pool.map(lambda h: h.system.close(), self.shards))

    def __enter__(self) -> "ShardedSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting -------------------------------------------------------------

    @property
    def db(self) -> Database:
        return self._source

    @property
    def turn(self) -> int:
        """Total interaction turns served across the tier."""
        return sum(h.system.turn for h in self.shards)

    @property
    def gateway(self) -> "_GatewayFan":
        """A fan over every shard's gateway (duck-types the single-system
        ``system.gateway`` surface cohort runners poke: flush/stats)."""
        return _GatewayFan(self)

    def metrics(self) -> MetricsSnapshot:
        """One tier-wide snapshot: every shard's registry, each series
        tagged with a ``shard`` label, plus the tier registry (the
        matchmaker) under the ``router`` pseudo-shard."""
        parts = {
            str(handle.shard_id): handle.system.metrics() for handle in self.shards
        }
        parts["router"] = self.metrics_registry.snapshot()
        return merge_snapshots(parts)

    def stats(self) -> dict:
        per_shard = [h.system.gateway.stats() for h in self.shards]
        return {
            "shards": self.count,
            "per_shard": per_shard,
            "windows_served": sum(s["windows_served"] for s in per_shard),
            "probes_streamed": sum(s["probes_streamed"] for s in per_shard),
            "queue_depth_peak": max(s["queue_depth_peak"] for s in per_shard),
            "matchmaker": self.matchmaker.stats(),
            "pins": self.router.ring.pins(),
        }


@dataclass(frozen=True)
class _Route:
    shard_id: int | None = None
    scatter_plans: "list[scatter.ScatterPlan] | None" = None
    warn: tuple[str, str] | None = None


class ShardSession:
    """A session bound to its home shard, scatter-aware on submit."""

    def __init__(
        self, sharded: ShardedSystem, shard_id: int, session: AgentSession
    ) -> None:
        self.sharded = sharded
        self.shard_id = shard_id
        self.session = session

    @property
    def agent_id(self):
        return self.session.agent_id

    @property
    def principal(self):
        return self.session.principal

    def submit(self, probe: Probe):
        """Submit through the home shard; cross-partition probes scatter.

        Returns a :class:`~repro.core.gateway.ProbeTicket` (home-shard or
        partition-pruned submissions) or a :class:`_ScatterTicket` — both
        answer ``result(timeout)``/``done()``/``cancel()``.
        """
        effective = self.session.effective(probe)
        route = self.sharded._route_probe(effective)
        if route.scatter_plans is not None:
            with self.session._lock:
                self.session.probes_submitted += 1
            return self.sharded.scatter_submit(
                effective, route.scatter_plans, session=self.session
            )
        if route.shard_id not in (None, self.shard_id):
            # Partition-pruned to another shard: serve where the rows
            # live, account here where the agent lives.
            with self.session._lock:
                self.session.probes_submitted += 1
            return self.sharded.shards[route.shard_id].system.gateway.submit(
                effective, session=self.session
            )
        ticket = self.session.submit(probe)
        if route.warn is not None:
            return _NotedTicket(
                ticket,
                lambda response: self.sharded._note_partial_coverage(
                    route.warn, self.shard_id, response
                ),
            )
        return ticket

    def describe(self) -> str:
        return f"shard {self.shard_id}: {self.session.describe()}"


class _NotedTicket:
    """A ticket wrapper that appends a steering note to the response."""

    def __init__(self, ticket: ProbeTicket, note_fn) -> None:
        self._ticket = ticket
        self._note_fn = note_fn
        self._noted = False
        self._lock = threading.Lock()

    def result(self, timeout: float | None = None) -> ProbeResponse:
        response = self._ticket.result(timeout)
        with self._lock:
            if not self._noted:
                self._note_fn(response)
                self._noted = True
        return response

    def done(self) -> bool:
        return self._ticket.done()

    def cancel(self) -> bool:
        return self._ticket.cancel()


class _FailedTicket:
    """Stands in for a gateway ticket when submission itself failed."""

    def __init__(self, exc: Exception) -> None:
        self._exc = exc

    def result(self, timeout: float | None = None):
        raise self._exc

    def done(self) -> bool:
        return True

    def cancel(self) -> bool:
        return False


class _ScatterTicket:
    """The future for a scatter-gather probe: one work unit per shard,
    pulled by capacity, merged at the router on ``result()``."""

    def __init__(
        self,
        sharded: ShardedSystem,
        probe: Probe,
        plans: list[scatter.ScatterPlan],
        session: AgentSession | None = None,
    ) -> None:
        self._sharded = sharded
        self._probe = probe
        self._plans = plans
        self._session = session
        self._merged: ProbeResponse | None = None
        self._lock = threading.Lock()
        #: The coordinator-side trace. Partial probes are fresh dataclass
        #: copies, so each shard's gateway opens its *own* trace for its
        #: partial; ``result()`` grafts those under per-shard fan-out
        #: spans when it merges.
        self._trace = obs_trace.ensure_probe_trace(probe)
        fanout_span = None
        if self._trace is not None:
            fanout_span = self._trace.root.child(
                "scatter:fanout", shards=sharded.count, queries=len(plans)
            )
        partial_queries = tuple(plan.partial_sql for plan in plans)
        self._units = [
            WorkUnit(
                probe=replace(probe, queries=partial_queries, termination=None),
                target_shard=shard_id,
            )
            for shard_id in range(sharded.count)
        ]
        for unit in self._units:
            sharded.matchmaker.enqueue(unit)
        sharded.pump()
        if fanout_span is not None:
            fanout_span.finish()

    def done(self) -> bool:
        return all(
            unit.assigned.is_set() and unit.ticket is not None and unit.ticket.done()
            for unit in self._units
        )

    def cancel(self) -> bool:
        """Best-effort: unqueued units withdraw; submitted partials try
        to cancel. False once any partial was admitted."""
        ok = True
        for unit in self._units:
            if not unit.assigned.is_set():
                ok = self._sharded.matchmaker.discard(unit) and ok
            elif unit.ticket is not None:
                ok = unit.ticket.cancel() and ok
        return ok

    def result(self, timeout: float | None = None) -> ProbeResponse:
        with self._lock:
            if self._merged is not None:
                return self._merged
            deadline = None if timeout is None else time.monotonic() + timeout
            while not all(unit.assigned.is_set() for unit in self._units):
                if self._sharded.pump() == 0:
                    time.sleep(0.0005)
                if deadline is not None and time.monotonic() > deadline:
                    raise FutureTimeoutError(
                        "scatter partials were not matched to shard capacity in time"
                    )
            partials = []
            for unit in self._units:  # shard order
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                partials.append(unit.ticket.result(remaining))
            trace = self._trace
            if trace is None or trace.finished:
                merged = self._merge(partials)
            else:
                merge_span = trace.root.child("scatter:merge")
                merged = self._merge(partials)
                merge_span.finish()
                for unit, partial in zip(self._units, partials):
                    shard_span = trace.root.child(
                        f"scatter:shard{unit.shard_id}", shard=unit.shard_id
                    )
                    partial_trace = getattr(partial, "trace", None)
                    if partial_trace is not None:
                        # Same process, same monotonic clock: graft the
                        # shard's subtree verbatim, no re-anchoring.
                        shard_span.children.append(partial_trace.root)
                        shard_span.start = partial_trace.root.start
                        shard_span.finish(partial_trace.root.end)
                    else:
                        shard_span.finish()
                trace.finish()
                merged.trace = trace
            if self._session is not None:
                self._session._account(merged)
            self._merged = merged
            return merged

    def _merge(self, partials: list[ProbeResponse]) -> ProbeResponse:
        outcomes = []
        for query_index, plan in enumerate(self._plans):
            shard_outcomes = [
                next(o for o in response.outcomes if o.query_index == query_index)
                for response in partials
            ]
            outcomes.append(self._merge_outcomes(query_index, plan, shard_outcomes))
        response = ProbeResponse(
            outcomes=outcomes,
            turn=max(p.turn for p in partials),
            rows_processed=sum(p.rows_processed for p in partials),
            cache_hits=sum(p.cache_hits for p in partials),
        )
        consulted = ", ".join(str(unit.shard_id) for unit in self._units)
        tables = sorted({plan.table for plan in self._plans})
        response.steering.append(
            f"scatter-gather: consulted shards [{consulted}] for {', '.join(tables)}"
        )
        if any(plan.aggregates for plan in self._plans):
            response.steering.append(
                "scatter-gather: partial aggregates merged at the router"
                " (AVG re-assembled from SUM+COUNT partials)"
            )
        for unit, partial in zip(self._units, partials):
            for line in partial.steering:
                # Degradation notices must survive the merge: an agent is
                # always told when overload changed its answer's quality.
                if "system under load" in line or "staleness" in line:
                    response.steering.append(f"shard {unit.shard_id}: {line}")
        return response

    def _merge_outcomes(
        self, query_index: int, plan: scatter.ScatterPlan, shard_outcomes
    ) -> QueryOutcome:
        original_sql = self._probe.queries[query_index]
        estimated_cost = sum(o.estimated_cost for o in shard_outcomes)
        for unit, outcome in zip(self._units, shard_outcomes):
            if outcome.status == "error":
                return QueryOutcome(
                    sql=original_sql,
                    status="error",
                    query_index=query_index,
                    reason=f"shard {unit.shard_id}: {outcome.reason}",
                    estimated_cost=estimated_cost,
                )
        for unit, outcome in zip(self._units, shard_outcomes):
            if outcome.result is None:  # pruned / terminated partial
                return QueryOutcome(
                    sql=original_sql,
                    status=outcome.status,
                    query_index=query_index,
                    reason=f"shard {unit.shard_id}: {outcome.reason}"
                    if outcome.reason
                    else f"shard {unit.shard_id} returned no partial result",
                    estimated_cost=estimated_cost,
                )
        merged = scatter.merge_partials(plan, [o.result for o in shard_outcomes])
        approximate = any(o.status == "approximate" for o in shard_outcomes)
        return QueryOutcome(
            sql=original_sql,
            status="approximate" if approximate else "ok",
            query_index=query_index,
            result=merged,
            sample_rate=min(o.sample_rate for o in shard_outcomes),
            estimated_cost=estimated_cost,
        )


class _GatewayFan:
    """The tier-wide view of N gateways (flush/stats/pending/close)."""

    def __init__(self, sharded: ShardedSystem) -> None:
        self._sharded = sharded

    def flush(self) -> None:
        self._sharded.pump()
        for handle in self._sharded.shards:
            handle.system.gateway.flush()

    def pending_probes(self) -> int:
        return sum(h.system.gateway.pending_probes() for h in self._sharded.shards)

    def stats(self) -> dict:
        return self._sharded.stats()

    def close(self, timeout: float | None = 10.0) -> None:
        for handle in self._sharded.shards:
            handle.system.gateway.close(timeout)


def sharded_serving_system(db: Database, shards: int | None = None):
    """The database's long-lived sharded serving tier (or the shared
    single system when the resolved count is 1).

    Mirrors :func:`~repro.core.system.shared_serving_system`: steering
    and memory off, cached on the database. The cache is keyed by shard
    count *and* the source catalog version — setup writes between cohort
    runs rebuild the tier from a fresh snapshot instead of serving stale
    shard copies.
    """
    count = resolve_shard_count(shards)
    if count <= 1:
        return shared_serving_system(db)
    cached = getattr(db, "_sharded_serving", None)
    version = db.catalog.version()
    if cached is not None:
        system, built_version, built_count = cached
        if built_count == count and built_version == version:
            return system
        system.close()
    system = ShardedSystem(
        db,
        shards=count,
        config=SystemConfig(enable_steering=False, enable_memory=False),
    )
    db._sharded_serving = (system, version, count)
    return system


def _build_shard_db(
    source_name: str,
    snapshot: CatalogSnapshot,
    shard_id: int,
    router: ShardRouter,
    empty_partitioned: bool = False,
) -> Database:
    """Materialise one shard's database from the snapshot wire format.

    Replicated tables restore verbatim (chunk-shared within-process, the
    exact ``TableSnapshot`` bytes across); partitioned tables keep only
    the rows whose partition value the ring places on this shard.
    """
    db = Database(f"{source_name}-shard{shard_id}", wal_dir=False)
    for state in snapshot.tables:
        name = state.schema.name
        if is_information_schema(name):
            continue  # each shard derives its own information schema
        column = router.partition_column(name)
        if column is None:
            db.catalog.register_table(Table.restore(state))
            continue
        db.catalog.create_table(state.schema)
        if empty_partitioned:
            continue
        names = [normalize_identifier(c) for c in state.schema.column_names()]
        value_index = names.index(column)
        owned = [
            row
            for row in Table.restore(state).scan()
            if router.owner_of_value(row[value_index]) == shard_id
        ]
        if owned:
            db.catalog.insert_rows(name, owned)
    for table_name, column in snapshot.hash_indexes:
        db.catalog.create_hash_index(table_name, column)
    for table_name, column in snapshot.sorted_indexes:
        db.catalog.create_sorted_index(table_name, column)
    return db


def _value_predicate(column: str, value) -> str:
    """Render ``column = <value>`` (or IS NULL) for migration DML."""
    if value is None:
        return f"{column} IS NULL"
    if isinstance(value, bool):
        return f"{column} = {'TRUE' if value else 'FALSE'}"
    if isinstance(value, (int, float)):
        return f"{column} = {value!r}"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"{column} = '{escaped}'"
    raise ValueError(f"unmigratable partition value {value!r}")
