"""Session and partition placement: which shard owns whom.

The router holds the tier's placement state — the consistent-hash
:class:`~repro.shard.ring.HashRing`, the explicit tenant pins, and the
partition map (table -> partition column). It decides *where* things
live; it never serves anything itself, and it holds no per-shard QoS or
queue state (that stays inside each shard's own gateway — the matchmaker
reads it as capacity adverts).

Placement keys: a session (or probe) is placed by its ``principal`` when
one is declared — multi-tenant isolation partitions by paying tenant
first — falling back to ``agent_id`` so anonymous single-agent swarms
still spread deterministically. A fully anonymous submission has no
affinity at all and is matchmade to whichever shard advertises capacity.

Partition values route through the same ring, so the shard that owns
tenant ``"t7"`` as a principal also owns the ``tenant = 't7'`` rows of
every partitioned table: a tenant's probes are answerable entirely on
its home shard, and scatter-gather is reserved for genuinely cross-
partition questions.
"""

from __future__ import annotations

from repro.shard.ring import HashRing
from repro.util.text import normalize_identifier


class ShardRouter:
    """Maps placement keys and partition values onto shard ids."""

    def __init__(
        self,
        shards: int,
        partition: dict[str, str] | None = None,
        ring: HashRing | None = None,
    ) -> None:
        self.ring = ring or HashRing(shards)
        #: normalized table name -> normalized partition column.
        self.partition: dict[str, str] = {
            normalize_identifier(table): normalize_identifier(column)
            for table, column in (partition or {}).items()
        }

    @property
    def shards(self) -> int:
        return self.ring.shards

    # -- session placement -----------------------------------------------------

    @staticmethod
    def placement_key(agent_id: str | None, principal: str | None):
        """The identity a session/probe is placed by (``None`` = no affinity)."""
        if principal not in (None, "public"):
            return principal
        if agent_id not in (None, "anon"):
            return agent_id
        return None

    def home_shard(self, agent_id: str | None, principal: str | None) -> int | None:
        """The shard owning this identity; ``None`` asks the matchmaker."""
        key = self.placement_key(agent_id, principal)
        if key is None:
            return None
        return self.ring.owner(key)

    def pin(self, key, shard_id: int) -> None:
        """Explicitly place a tenant/agent key (pins beat the hash)."""
        self.ring.pin(key, shard_id)

    # -- partition placement ---------------------------------------------------

    def partition_column(self, table: str) -> str | None:
        return self.partition.get(normalize_identifier(table))

    def owner_of_value(self, value) -> int:
        """The shard owning one partition-column value (rows and probes
        hash identically: the tenant's rows live on the tenant's shard)."""
        return self.ring.owner(value)
