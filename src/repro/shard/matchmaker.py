"""Pull-based capacity matchmaking between the shard router and shards.

Modeled on DIRAC's workload-management pattern (``MatcherHandler`` +
``JobSchedulingAgent``): the router never pushes work at a shard it
merely *hopes* has capacity. Instead, each matching round starts from
fresh :class:`CapacityAdvert`\\ s — every shard states how deep its
admission queue is, how many windows it has served, its peak queue depth
(the gateway's ``windows_served``/``queue_depth_peak`` stats pair), its
QoS watermark state, and how many admission slots it is willing to fill
right now. Queued :class:`WorkUnit`\\ s are then matched FIFO against
those offers: a watermark-tripped shard advertises zero slots and simply
is not matched, so QoS lane/bucket state stays entirely per-shard — the
router only steers.

Degrade, don't drop: a unit nobody volunteers for (every candidate shard
tripped or out of slots) is deferred, and after ``max_deferrals`` rounds
it is force-assigned to the least-loaded candidate anyway. Matching must
make progress even when the whole tier is saturated; the receiving
shard's own QoS layer then degrades the probe honestly.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricAttr, MetricsRegistry

if TYPE_CHECKING:
    from repro.core.probe import Probe

_LOG = logging.getLogger(__name__)


@dataclass(frozen=True)
class CapacityAdvert:
    """One shard's self-reported capacity for a matching round."""

    shard_id: int
    #: Admission-queue depth right now (the gateway's ``pending`` gauge).
    pending: int
    #: Monotone gateway counters — the stable stats pair the matchmaker
    #: keys on: total windows served (either path) and the deepest the
    #: queue has ever been (a proxy for how bursty this shard's load is).
    windows_served: int
    queue_depth_peak: int
    #: True when the shard's QoS layer judges itself overloaded at the
    #: current queue depth; a tripped shard pulls nothing this round.
    watermark_tripped: bool
    #: Read replicas attached to the shard (spare read capacity).
    replicas: int
    #: Admission slots the shard volunteers to fill this round.
    slots: int

    def rank(self) -> tuple:
        """Sort key for willing shards: emptiest queue first, replicas as
        spare capacity, stable tie-break on id."""
        return (self.pending, -self.replicas, self.queue_depth_peak, self.shard_id)


@dataclass
class WorkUnit:
    """One queued probe awaiting a shard with capacity.

    ``target_shard`` restricts matching to a single shard — scatter-gather
    partials must run where the partition rows live; ``None`` means any
    shard may pull it. Assignment is recorded on the unit itself
    (``shard_id``/``assigned``) so callers can poll without a callback.
    """

    probe: "Probe"
    target_shard: int | None = None
    deferrals: int = 0
    shard_id: int | None = None
    assigned: threading.Event = field(default_factory=threading.Event)
    #: The gateway ticket, set by the router when it dispatches the
    #: assigned unit (the matchmaker itself never talks to gateways).
    ticket: object | None = None

    def assign(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.assigned.set()


class Matchmaker:
    """FIFO queue of work units matched against per-round capacity offers.

    Monotone accounting lives in the shared metrics registry behind
    :class:`~repro.obs.metrics.MetricAttr` shims; ``stats()`` keys and
    attribute reads are unchanged, and mutations stay under ``_lock``.
    """

    units_enqueued = MetricAttr("_m_units_enqueued")
    units_matched = MetricAttr("_m_units_matched")
    units_forced = MetricAttr("_m_units_forced")
    rounds = MetricAttr("_m_rounds")

    def __init__(
        self,
        max_deferrals: int = 3,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.max_deferrals = max(0, int(max_deferrals))
        self._lock = threading.Lock()
        self._queue: deque[WorkUnit] = deque()
        #: Monotone accounting (``stats()`` snapshots them).
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        self._m_units_enqueued = registry.counter(
            "repro_shard_units_enqueued_total", "Work units queued for matching."
        ).bind()
        self._m_units_matched = registry.counter(
            "repro_shard_units_matched_total", "Work units matched to a shard."
        ).bind()
        self._m_units_forced = registry.counter(
            "repro_shard_units_forced_total",
            "Units force-assigned after exhausting deferrals.",
        ).bind()
        self._m_rounds = registry.counter(
            "repro_shard_match_rounds_total", "Matching rounds executed."
        ).bind()
        self.units_enqueued = 0
        self.units_matched = 0
        self.units_forced = 0
        self.rounds = 0

    def enqueue(self, unit: WorkUnit) -> None:
        with self._lock:
            self._queue.append(unit)
            self.units_enqueued += 1

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def discard(self, unit: WorkUnit) -> bool:
        """Withdraw a still-queued unit (False once matched or unknown)."""
        with self._lock:
            try:
                self._queue.remove(unit)
                return True
            except ValueError:
                return False

    def place(self, adverts: list[CapacityAdvert]) -> int:
        """One-shot placement (session open, no queueing): the best
        willing shard, else the least-loaded one — never nothing."""
        willing = [a for a in adverts if a.slots > 0 and not a.watermark_tripped]
        pool = willing or adverts
        return min(pool, key=CapacityAdvert.rank).shard_id

    def match(self, adverts: list[CapacityAdvert]) -> list[tuple[WorkUnit, int]]:
        """Run one matching round; returns ``(unit, shard_id)`` pairs.

        Units are considered strictly FIFO. Each assignment consumes one
        of the shard's advertised slots and bumps its in-round pending
        count, so one round spreads a burst instead of dog-piling the
        single emptiest shard.
        """
        offers = {a.shard_id: [a.slots, a.pending, a] for a in adverts}
        matches: list[tuple[WorkUnit, int]] = []
        with self._lock:
            self.rounds += 1
            deferred: deque[WorkUnit] = deque()
            while self._queue:
                unit = self._queue.popleft()
                candidates = [
                    entry
                    for shard_id, entry in offers.items()
                    if unit.target_shard in (None, shard_id)
                ]
                willing = [
                    entry
                    for entry in candidates
                    if entry[0] > 0 and not entry[2].watermark_tripped
                ]
                if willing:
                    best = min(willing, key=lambda e: (e[1], e[2].rank()))
                elif candidates and unit.deferrals >= self.max_deferrals:
                    # Nobody volunteered often enough: force the unit onto
                    # the least-loaded candidate so it never starves.
                    best = min(candidates, key=lambda e: (e[1], e[2].rank()))
                    self.units_forced += 1
                    _LOG.warning(
                        "matchmaker: forcing unit onto shard %d after %d deferrals",
                        best[2].shard_id,
                        unit.deferrals,
                    )
                else:
                    unit.deferrals += 1
                    deferred.append(unit)
                    continue
                best[0] -= 1
                best[1] += 1
                unit.assign(best[2].shard_id)
                matches.append((unit, best[2].shard_id))
                self.units_matched += 1
            self._queue = deferred
        return matches

    def stats(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._queue),
                "units_enqueued": self.units_enqueued,
                "units_matched": self.units_matched,
                "units_forced": self.units_forced,
                "rounds": self.rounds,
            }
