"""Scatter-gather compilation for cross-shard probes.

A probe that addresses a *partitioned* table from the wrong shard (or
from no shard in particular) cannot be answered locally: each shard holds
only its slice of the rows. Eligible queries compile to a scatter plan —
the same (or a rewritten) statement runs on every shard, and the router
merges the partials:

* Scan/Filter/Project pipelines (no aggregates): each shard runs the
  original SQL verbatim; the merged result is the concatenation of the
  shard results in shard order.
* Aggregates: COUNT/SUM/MIN/MAX ship as-is (their partials merge with
  sum/sum/min/max); AVG(x) is decomposed into SUM(x) + COUNT(x) partial
  columns and re-assembled at the router as ``sum(sums) / sum(counts)``.
  GROUP BY groups merge by key tuple, output in first-seen order scanning
  shards in shard order (deterministic: shard order and per-shard row
  order are both fixed).

Merge semantics mirror :mod:`repro.engine.aggregates` exactly — SUM/AVG
over zero rows is ``None`` (so an empty shard contributes a ``None``
partial, which the merge skips), COUNT is 0, MIN/MAX compare through
:func:`~repro.storage.types.compare_values`.

Not everything distributes. Joins, subqueries, DISTINCT (including
``COUNT(DISTINCT ...)``), ORDER BY / LIMIT / OFFSET, HAVING, and
aggregate arithmetic (``SUM(x)/COUNT(x)``) are declined: the analysis
reports *why*, the router serves the probe on its home shard instead,
and the response carries a steering line saying the answer covers one
partition. Honest partial coverage beats a silently-wrong merge.

The rewrite works at the AST level: statements parse through
:func:`repro.sql.parser.parse_statement`, partial statements are built by
swapping :class:`~repro.sql.nodes.SelectItem` lists, and
``Select.sql()`` re-renders them — shards re-parse the partial SQL
through their ordinary serving path, so scatter partials share work,
hit history, and obey QoS exactly like native probes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.result import ExecStats, QueryResult
from repro.sql import nodes
from repro.sql.parser import parse_statement
from repro.storage.types import compare_values
from repro.util.text import normalize_identifier

#: Aggregate kinds the router knows how to merge.
MERGEABLE_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


@dataclass(frozen=True)
class AggSpec:
    """How one output column of an aggregate query merges.

    ``partial_indexes`` addresses the *partial* row: one column for
    COUNT/SUM/MIN/MAX, the (sum, count) pair for a decomposed AVG.
    """

    kind: str
    out_index: int
    partial_indexes: tuple[int, ...]


@dataclass(frozen=True)
class ScatterPlan:
    """One query's compiled scatter-gather strategy."""

    table: str
    partial_sql: str
    #: Output column names of the merged result (the single-shard names).
    columns: tuple[str, ...]
    #: ``None`` -> plain row concatenation; otherwise the aggregate specs.
    aggregates: tuple[AggSpec, ...] | None
    #: Output positions that are GROUP BY keys (empty for global aggregates).
    group_indexes: tuple[int, ...] = ()


@dataclass(frozen=True)
class ScatterAnalysis:
    """What the router learned about one statement."""

    plan: ScatterPlan | None
    #: The partitioned table the statement touches, if any (set even when
    #: the plan is ``None`` — the router warns about partial coverage).
    partitioned_table: str | None = None
    #: Why an ineligible statement could not scatter.
    reason: str = ""
    #: Partition-column values the WHERE clause pins (top-level ``=`` or
    #: ``IN`` conjuncts): every matching row lives on an owner of one of
    #: these values, so the router can prune the scatter to those shards
    #: — the common tenant-local probe never fans out at all. Extracted
    #: even for scatter-ineligible single-table statements (an ORDER BY
    #: over one tenant's slice still serves fully on the owner shard).
    pinned_values: tuple = ()


def analyze(sql: str, partitioned: dict[str, str]) -> ScatterAnalysis:
    """Classify one statement against the partition map.

    ``partitioned`` maps normalized table name -> partition column.
    Returns a plan when the statement distributes, otherwise the reason
    it does not (with ``partitioned_table`` set whenever the statement
    addresses partitioned data at all, so callers can warn).
    """
    try:
        statement = parse_statement(sql)
    except Exception:
        # Unparseable SQL fails identically on any shard; serve it home.
        return ScatterAnalysis(plan=None)
    if not isinstance(statement, nodes.Select):
        # DML routes to the probe's home shard (its own partition slice).
        table = getattr(statement, "table", None) or getattr(statement, "name", None)
        touched = (
            normalize_identifier(table)
            if isinstance(table, str) and normalize_identifier(table) in partitioned
            else None
        )
        return ScatterAnalysis(
            plan=None, partitioned_table=touched, reason="DML does not scatter"
        )
    from_clause = statement.from_clause
    if not isinstance(from_clause, nodes.TableName):
        touched = _partitioned_in_ref(from_clause, partitioned)
        reason = "joins and subqueries do not scatter" if touched else ""
        return ScatterAnalysis(plan=None, partitioned_table=touched, reason=reason)
    table = normalize_identifier(from_clause.name)
    if table not in partitioned:
        return ScatterAnalysis(plan=None)
    has_subquery = _has_subquery(statement)
    pinned = (
        () if has_subquery else _pinned_values(statement.where, partitioned[table])
    )

    def declined(reason: str) -> ScatterAnalysis:
        return ScatterAnalysis(
            plan=None, partitioned_table=table, reason=reason, pinned_values=pinned
        )

    if has_subquery:
        return declined("subqueries do not scatter")
    if statement.distinct:
        return declined("DISTINCT does not scatter")
    if statement.order_by or statement.limit is not None or statement.offset is not None:
        return declined("ORDER BY / LIMIT does not scatter")
    if statement.having is not None:
        return declined("HAVING does not scatter")

    has_aggregate = any(
        nodes.contains_aggregate(item.expr) for item in statement.items
    )
    columns = _merged_column_names(statement.items)
    if not has_aggregate:
        if statement.group_by:
            return declined("GROUP BY without aggregates does not scatter")
        # Scan/Filter/Project: every shard runs the statement verbatim.
        return ScatterAnalysis(
            plan=ScatterPlan(
                table=table,
                partial_sql=statement.sql(),
                columns=columns,
                aggregates=None,
            ),
            partitioned_table=table,
            pinned_values=pinned,
        )

    group_exprs = tuple(statement.group_by)
    partial_items: list[nodes.SelectItem] = []
    aggregates: list[AggSpec] = []
    group_indexes: list[int] = []
    for out_index, item in enumerate(statement.items):
        expr = item.expr
        if not nodes.contains_aggregate(expr):
            if expr not in group_exprs:
                return declined("non-grouped output column does not scatter")
            group_indexes.append(out_index)
            partial_items.append(item)
            continue
        if not (
            isinstance(expr, nodes.FuncCall) and expr.name in MERGEABLE_AGGREGATES
        ):
            return declined("aggregate arithmetic does not scatter")
        if expr.distinct:
            return declined("COUNT(DISTINCT ...) does not scatter")
        if expr.name == "AVG":
            # AVG(x) -> SUM(x), COUNT(x) partials; re-divided at the router.
            start = len(partial_items)
            partial_items.append(
                nodes.SelectItem(nodes.FuncCall("SUM", expr.args))
            )
            partial_items.append(
                nodes.SelectItem(nodes.FuncCall("COUNT", expr.args))
            )
            aggregates.append(AggSpec("AVG", out_index, (start, start + 1)))
        else:
            aggregates.append(AggSpec(expr.name, out_index, (len(partial_items),)))
            partial_items.append(nodes.SelectItem(expr))
    partial = nodes.Select(
        items=tuple(partial_items),
        from_clause=statement.from_clause,
        where=statement.where,
        group_by=statement.group_by,
    )
    return ScatterAnalysis(
        plan=ScatterPlan(
            table=table,
            partial_sql=partial.sql(),
            columns=columns,
            aggregates=tuple(aggregates),
            group_indexes=tuple(group_indexes),
        ),
        partitioned_table=table,
        pinned_values=pinned,
    )


def merge_partials(plan: ScatterPlan, partials: list[QueryResult]) -> QueryResult:
    """Assemble one merged result from per-shard partials (in shard order)."""
    stats = ExecStats()
    for partial in partials:
        stats.merge(partial.stats)
    sample_rate = min((p.sample_rate for p in partials), default=1.0)
    if plan.aggregates is None:
        rows = [row for partial in partials for row in partial.rows]
        # Shards ran the original SQL verbatim, so the first partial's
        # columns are the single-shard names (including ``*`` expansion).
        columns = list(partials[0].columns) if partials else list(plan.columns)
        return QueryResult(
            columns=columns,
            rows=rows,
            stats=stats,
            sample_rate=sample_rate,
        )
    width = len(plan.columns)
    if not plan.group_indexes:
        # Global aggregate: every shard contributes exactly one partial row.
        row = [None] * width
        for spec in plan.aggregates:
            values = [
                tuple(partial.rows[0][i] for i in spec.partial_indexes)
                for partial in partials
                if partial.rows
            ]
            row[spec.out_index] = _merge_one(spec.kind, values)
        return QueryResult(
            columns=list(plan.columns),
            rows=[tuple(row)],
            stats=stats,
            sample_rate=sample_rate,
        )
    # GROUP BY: partial rows carry the group keys at the same positions
    # the merged output does for COUNT/SUM/MIN/MAX, but AVG decomposition
    # can shift positions — map merged output index -> partial index.
    partial_index_of = _partial_positions(plan)
    merged: dict[tuple, list] = {}
    order: list[tuple] = []
    for partial in partials:
        for row in partial.rows:
            key = tuple(row[partial_index_of[i]] for i in plan.group_indexes)
            bucket = merged.get(key)
            if bucket is None:
                bucket = [[] for _ in plan.aggregates]
                merged[key] = bucket
                order.append(key)
            for slot, spec in enumerate(plan.aggregates):
                bucket[slot].append(tuple(row[i] for i in spec.partial_indexes))
    rows = []
    for key in order:
        row = [None] * width
        for position, out_index in enumerate(plan.group_indexes):
            row[out_index] = key[position]
        for slot, spec in enumerate(plan.aggregates):
            row[spec.out_index] = _merge_one(spec.kind, merged[key][slot])
        rows.append(tuple(row))
    return QueryResult(
        columns=list(plan.columns),
        rows=rows,
        stats=stats,
        sample_rate=sample_rate,
    )


def _partial_positions(plan: ScatterPlan) -> dict[int, int]:
    """Map merged-output group positions to partial-row positions."""
    positions: dict[int, int] = {}
    partial_cursor = 0
    agg_by_out = {spec.out_index: spec for spec in (plan.aggregates or ())}
    for out_index in range(len(plan.columns)):
        spec = agg_by_out.get(out_index)
        if spec is None:
            positions[out_index] = partial_cursor
            partial_cursor += 1
        else:
            partial_cursor += len(spec.partial_indexes)
    return positions


def _merge_one(kind: str, values: list[tuple]):
    """Merge one aggregate's per-shard partials (engine-identical edges)."""
    if kind == "COUNT":
        return sum(v[0] for v in values if v[0] is not None)
    if kind == "SUM":
        present = [v[0] for v in values if v[0] is not None]
        return sum(present) if present else None
    if kind in ("MIN", "MAX"):
        best = None
        for (value,) in values:
            if value is None:
                continue
            if best is None:
                best = value
                continue
            ordering = compare_values(value, best)
            if ordering is None:
                continue
            if (kind == "MIN" and ordering < 0) or (kind == "MAX" and ordering > 0):
                best = value
        return best
    if kind == "AVG":
        total = 0.0
        count = 0
        for partial_sum, partial_count in values:
            if partial_sum is not None:
                total += float(partial_sum)
            if partial_count:
                count += partial_count
        return total / count if count else None
    raise ValueError(f"unmergeable aggregate kind {kind!r}")


def _merged_column_names(items: tuple[nodes.SelectItem, ...]) -> tuple[str, ...]:
    """The executor's output names for these items (mirrors the plan
    builder: aggregates substitute to ``__agg{k}`` columns before the
    final projection names them, so an unaliased aggregate surfaces as
    ``__agg{k}`` with ``k`` its position among the aggregate items)."""
    names: list[str] = []
    aggregate_position = 0
    for position, item in enumerate(items):
        is_aggregate = nodes.contains_aggregate(item.expr)
        if item.alias:
            names.append(item.alias)
        elif is_aggregate:
            names.append(f"__agg{aggregate_position}")
        elif isinstance(item.expr, nodes.ColumnRef):
            names.append(item.expr.column)
        elif isinstance(item.expr, nodes.FuncCall):
            names.append(item.expr.name.lower())
        else:
            names.append(f"col{position}")
        if is_aggregate:
            aggregate_position += 1
    return tuple(names)


def _pinned_values(where: nodes.Expr | None, column: str) -> tuple:
    """Partition-column values pinned by top-level WHERE conjuncts.

    Any single ``col = literal`` or ``col IN (literals)`` conjunct bounds
    the matching rows' partition values (conjuncts only narrow), so the
    smallest such set is returned. Disjunctions, negations, and
    non-literal comparisons pin nothing.
    """
    if where is None:
        return ()
    candidates: list[tuple] = []
    for conjunct in _conjuncts(where):
        if isinstance(conjunct, nodes.Binary) and conjunct.op == "=":
            sides = (conjunct.left, conjunct.right)
            for ref, literal in (sides, sides[::-1]):
                if (
                    isinstance(ref, nodes.ColumnRef)
                    and normalize_identifier(ref.column) == column
                    and isinstance(literal, nodes.Literal)
                ):
                    candidates.append((literal.value,))
                    break
        elif (
            isinstance(conjunct, nodes.InList)
            and not conjunct.negated
            and isinstance(conjunct.operand, nodes.ColumnRef)
            and normalize_identifier(conjunct.operand.column) == column
            and all(isinstance(item, nodes.Literal) for item in conjunct.items)
        ):
            candidates.append(tuple(item.value for item in conjunct.items))
    if not candidates:
        return ()
    return min(candidates, key=len)


def _conjuncts(expr: nodes.Expr) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _has_subquery(statement: nodes.Select) -> bool:
    exprs = [item.expr for item in statement.items]
    if statement.where is not None:
        exprs.append(statement.where)
    for expr in exprs:
        for node in nodes.walk(expr):
            if isinstance(node, nodes.InSubquery):
                return True
    return False


def _partitioned_in_ref(ref, partitioned: dict[str, str]) -> str | None:
    """First partitioned table named anywhere in a FROM clause."""
    if isinstance(ref, nodes.TableName):
        name = normalize_identifier(ref.name)
        return name if name in partitioned else None
    if isinstance(ref, nodes.Join):
        return _partitioned_in_ref(ref.left, partitioned) or _partitioned_in_ref(
            ref.right, partitioned
        )
    if isinstance(ref, nodes.SubqueryRef):
        return _partitioned_in_ref(ref.select.from_clause, partitioned)
    return None
