"""The agent-first data system: probes in, answers + steering out.

This package implements the paper's Secs. 3-5:

* :mod:`repro.core.probe` / :mod:`repro.core.brief` — the probe interface
  (queries + natural-language briefs + termination criteria);
* :mod:`repro.core.interpreter` — the in-database probe interpreter;
* :mod:`repro.core.satisfice` — what to run, and at what accuracy;
* :mod:`repro.core.mqo` — shared execution across redundant probes;
* :mod:`repro.core.optimizer` — intra- and inter-probe optimization;
* :mod:`repro.core.scheduler` — cross-agent admission batches: fair
  dispatch plus batch-wide shared-work execution;
* :mod:`repro.core.gateway` — agent sessions, probe tickets, and the
  streaming admission loop that forms those batches from uncoordinated
  arrivals (``session.submit`` / ``asubmit``; ``submit_many`` is the
  caller-assembled one-window shim);
* :mod:`repro.core.steering` — sleeper agents: hints, why-not provenance,
  cost feedback;
* :mod:`repro.core.system` — the :class:`AgentFirstDataSystem` facade.
"""

from repro.core.brief import Brief, Phase
from repro.core.gateway import AgentSession, ProbeGateway, ProbeTicket
from repro.core.mqo import MaterializationSuggestion, SharingReport
from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.core.scheduler import ProbeScheduler, ScheduledBatch
from repro.core.system import AgentFirstDataSystem, SystemConfig

__all__ = [
    "AgentFirstDataSystem",
    "AgentSession",
    "Brief",
    "MaterializationSuggestion",
    "Phase",
    "Probe",
    "ProbeGateway",
    "ProbeResponse",
    "ProbeScheduler",
    "ProbeTicket",
    "QueryOutcome",
    "ScheduledBatch",
    "SharingReport",
    "SystemConfig",
]
