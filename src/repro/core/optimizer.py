"""The probe optimizer: satisficing execution with intra- and inter-probe
optimization.

Responsibilities (paper Sec. 5.2):

* resolve the satisficer's decisions at the decided accuracy (dispatch
  *order* belongs to :class:`~repro.core.scheduler.ProbeScheduler`, which
  drives this optimizer for both ``submit`` and ``submit_many``);
* share work across queries, probes, agents and turns through one
  :class:`~repro.engine.executor.SubplanCache` (intra- and inter-probe MQO);
* answer repeats from **history**: a query whose strict fingerprint was
  already answered this session returns instantly with no work;
* evaluate **termination criteria** over partial result lists and stop the
  probe's remaining queries when satisfied;
* feed the :class:`~repro.core.mqo.MaterializationAdvisor` so recurring
  subplans become materialization suggestions.

Concurrency: the scheduler's worker pool runs :meth:`speculative_execute`
from many threads (engine-only, no shared-state writes beyond the
internally-locked :class:`~repro.engine.executor.SubplanCache`), and
``run_decision`` itself may be called concurrently by independent serving
threads — so the ``history`` / ``lenient_history`` dictionaries are
guarded by a lock, and the advisor locks internally.

Under the *process* dispatch backend the same engine work crosses a
process boundary instead: :meth:`speculation_payload` derives the
picklable ``(plan, sample_rate, seed)`` unit whose worker-side execution
(:func:`repro.core.dispatch._worker_run`) mirrors
:meth:`speculative_execute` byte-for-byte against a catalog snapshot of
the same version. Either way the serial replay feeds results back through
:meth:`run_decision`, which owns all order-sensitive bookkeeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.interpreter import InterpretedProbe, PlannedQuery
from repro.core.mqo import MaterializationAdvisor
from repro.core.probe import QueryOutcome
from repro.core.satisfice import ExecutionDecision, Satisficer
from repro.db import Database
from repro.engine.columnar import make_executor, resolve_engine
from repro.engine.executor import ExecContext, SubplanCache
from repro.engine.result import QueryResult
from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.plan.fingerprint import fingerprints


@dataclass
class HistoryEntry:
    turn: int
    agent_id: str
    sql: str
    result: QueryResult
    lenient_fingerprint: str


@dataclass
class PrecomputedExecution:
    """One engine run performed ahead of serial bookkeeping.

    The scheduler's worker pool produces these concurrently (pure engine
    work: a result or an execution error); the serial replay then feeds
    them back through :meth:`ProbeOptimizer.run_decision`, which applies
    history, advisor, and steering bookkeeping in serial order.
    """

    result: QueryResult | None = None
    error: str | None = None
    #: Worker-side span subtree (process backend only, traced probes
    #: only): the engine-node spans recorded in the worker process, shipped
    #: back through the pickle seam for :func:`repro.obs.trace.reparent`
    #: to graft under the coordinator-side decision span.
    span: object | None = None


@dataclass
class ProbeOptimizer:
    """Executes interpreted probes; owns the session's shared state."""

    db: Database
    satisficer: Satisficer
    cache: SubplanCache | None = None
    advisor: MaterializationAdvisor = field(default_factory=MaterializationAdvisor)
    #: strict fingerprint -> history entry (the answered-before index).
    history: dict[str, HistoryEntry] = field(default_factory=dict)
    #: lenient fingerprint -> most recent history entry (similarity pointer).
    lenient_history: dict[str, HistoryEntry] = field(default_factory=dict)
    enable_history: bool = True
    #: Execution engine for every engine run this optimizer performs —
    #: serial, thread-speculative, or (via :meth:`speculation_payload`)
    #: in worker processes. ``None`` defers to the ``REPRO_ENGINE`` env
    #: override, then the row engine.
    engine: str | None = None
    #: Maintenance hook: rewrites a plan immediately before an *exact*
    #: engine run (materialized views, auxiliary indexes). All history,
    #: advisor, and fingerprint bookkeeping stays keyed on the original
    #: plan, so the rewrite can change work but never an answer. Must be
    #: pure and exception-free (the runtime guards internally).
    execution_rewriter: "Callable[[object], object] | None" = field(
        default=None, repr=False, compare=False
    )
    #: Maintenance hook: observes each logically-demanded plan (alongside
    #: the advisor) so the runtime can mine predicates for auto-indexing.
    plan_observer: "Callable[[object], None] | None" = field(
        default=None, repr=False, compare=False
    )
    #: Guards ``history`` and ``lenient_history`` under concurrent callers.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    #: WAL journals (enabled by :meth:`enable_wal_journal`): the history
    #: entries added since the last drain, so each admission window's
    #: ``serve_state`` commit record carries exactly the additions that
    #: survived to the window boundary. Cleared by :meth:`invalidate` —
    #: entries wiped before commit never reach the log, mirroring what a
    #: recovered optimizer should hold.
    _wal_history_journal: "dict[str, HistoryEntry] | None" = field(
        default=None, repr=False, compare=False
    )
    _wal_lenient_journal: "dict[str, HistoryEntry] | None" = field(
        default=None, repr=False, compare=False
    )

    def run_decision(
        self,
        interpreted: InterpretedProbe,
        decision: ExecutionDecision,
        turn: int,
        precomputed: PrecomputedExecution | None = None,
    ) -> QueryOutcome:
        """Resolve one satisficer decision into an outcome.

        Handles the prune/error short-circuits, the answered-before history
        check, and actual execution against the session's shared cache.
        The caller — the probe scheduler, for both ``submit`` and
        ``submit_many`` — owns dispatch order and termination bookkeeping
        (those are probe- and batch-level state). When the scheduler
        already ran the engine work speculatively, it passes the
        ``precomputed`` result and only the bookkeeping happens here.
        """
        query = decision.query
        if decision.action == "prune":
            return QueryOutcome(
                sql=query.sql,
                status="pruned",
                query_index=query.index,
                reason=decision.reason,
                estimated_cost=query.estimated_cost,
            )
        if query.plan is None:
            return QueryOutcome(
                sql=query.sql,
                status="error",
                query_index=query.index,
                reason=query.parse_error or "unplannable query",
            )
        return self._execute_one(interpreted, query, decision, turn, precomputed)

    def check_termination(
        self, interpreted: InterpretedProbe, results_so_far: list[QueryResult]
    ) -> bool:
        """Evaluate the probe's termination criterion over partial results."""
        criterion = interpreted.probe.termination
        if criterion is None or not results_so_far:
            return False
        try:
            return bool(criterion(results_so_far))
        except Exception:
            return False

    def speculation_payload(self, decision: ExecutionDecision, turn: int):
        """The picklable form of one speculative engine run.

        Exactly the knobs :meth:`speculative_execute` would use — same
        plan, same sampling rate, seed-by-turn — with no optimizer,
        history, or cache references, so the unit can cross a process
        boundary. The import is local to keep this module free of the
        dispatch layer at import time (dispatch imports us for
        :class:`PrecomputedExecution`).
        """
        from repro.core.dispatch import SpeculationPayload

        query = decision.query
        assert query.plan is not None
        return SpeculationPayload(
            plan=self._plan_for_execution(query.plan, decision.sample_rate),
            sample_rate=decision.sample_rate,
            sample_seed=turn,
            engine=resolve_engine(self.engine),
        )

    def _plan_for_execution(self, plan, sample_rate: float):
        """The plan an engine run should actually execute.

        Applies the maintenance runtime's execution-time rewrite (views,
        auxiliary indexes) for exact runs only — sampled scans must draw
        their own rows, never be answered from a full materialization.
        Every consumer of the *result* still keys on the original plan.
        """
        if self.execution_rewriter is None or sample_rate < 1.0:
            return plan
        return self.execution_rewriter(plan)

    def speculative_execute(
        self, decision: ExecutionDecision, turn: int
    ) -> PrecomputedExecution:
        """Engine-only execution of one decision — safe to run concurrently.

        Touches no optimizer state except the internally-locked subplan
        cache; history/advisor bookkeeping happens later, when the serial
        replay feeds the result back through :meth:`run_decision`.
        """
        query = decision.query
        assert query.plan is not None
        context = ExecContext(
            sample_rate=decision.sample_rate,
            sample_seed=turn,
            cache=self.cache,
        )
        executor = make_executor(self.db.catalog, context, self.engine)
        plan = self._plan_for_execution(query.plan, decision.sample_rate)
        try:
            return PrecomputedExecution(result=executor.run(plan))
        except ReproError as exc:
            return PrecomputedExecution(error=str(exc))

    def _execute_one(
        self,
        interpreted: InterpretedProbe,
        query: PlannedQuery,
        decision: ExecutionDecision,
        turn: int,
        precomputed: PrecomputedExecution | None = None,
    ) -> QueryOutcome:
        assert query.plan is not None
        digests = fingerprints(query.plan)
        strict = digests.strict
        if self.enable_history and decision.sample_rate >= 1.0:
            with self._lock:
                entry = self.history.get(strict)
            if entry is not None:
                ambient = obs_trace.current_span()
                if ambient is not None:
                    ambient.child(
                        "engine:history", answered_at_turn=entry.turn
                    ).finish()
                # Materialization advice tracks logical demand: answering
                # from history still counts as one more occurrence.
                self.advisor.observe(query.plan)
                if self.plan_observer is not None:
                    self.plan_observer(query.plan)
                return QueryOutcome(
                    sql=query.sql,
                    status="from_history",
                    query_index=query.index,
                    result=entry.result,
                    reason=(
                        f"identical query answered at turn {entry.turn}"
                        f" (agent {entry.agent_id})"
                    ),
                    estimated_cost=query.estimated_cost,
                )

        if precomputed is None:
            # Serial execution: engine-node spans nest directly under the
            # ambient decision span via the trace contextvar.
            precomputed = self.speculative_execute(decision, turn)
        else:
            ambient = obs_trace.current_span()
            if ambient is not None:
                worker_span = precomputed.span
                if worker_span is not None:
                    # Process-backend speculation: graft the worker's span
                    # subtree here, once — later sharers of the same unit
                    # get a provenance marker instead of a duplicate tree.
                    obs_trace.reparent(ambient, worker_span)
                    precomputed.span = None
                else:
                    ambient.child("engine:shared", source="speculation").finish()
        if precomputed.error is not None:
            return QueryOutcome(
                sql=query.sql,
                status="error",
                query_index=query.index,
                reason=precomputed.error,
            )
        result = precomputed.result
        assert result is not None

        self.advisor.observe(query.plan)
        if self.plan_observer is not None:
            self.plan_observer(query.plan)
        lenient = digests.lenient
        entry = HistoryEntry(
            turn=turn,
            agent_id=interpreted.probe.agent_id,
            sql=query.sql,
            result=result,
            lenient_fingerprint=lenient,
        )
        with self._lock:
            previous = self.lenient_history.get(lenient)
            similar_to_turn = previous.turn if previous is not None else None
            if decision.sample_rate >= 1.0:
                self.history[strict] = entry
                if self._wal_history_journal is not None:
                    self._wal_history_journal[strict] = entry
            self.lenient_history[lenient] = entry
            if self._wal_lenient_journal is not None:
                self._wal_lenient_journal[lenient] = entry

        status = "approximate" if decision.sample_rate < 1.0 else "ok"
        return QueryOutcome(
            sql=query.sql,
            status=status,
            query_index=query.index,
            result=result,
            sample_rate=decision.sample_rate,
            reason=decision.reason,
            estimated_cost=query.estimated_cost,
            similar_to_turn=similar_to_turn,
        )

    # -- inter-probe services -------------------------------------------------------

    def similar_answered(self, query: PlannedQuery) -> HistoryEntry | None:
        """A past answer to a semantically-equal (modulo output order) query."""
        if query.plan is None:
            return None
        lenient = fingerprints(query.plan).lenient
        with self._lock:
            entry = self.lenient_history.get(lenient)
        if entry is not None and entry.sql != query.sql:
            return entry
        return entry if entry is not None else None

    def invalidate(self) -> None:
        """Drop history and cache after writes change the data."""
        with self._lock:
            self.history.clear()
            self.lenient_history.clear()
            if self._wal_history_journal is not None:
                self._wal_history_journal.clear()
            if self._wal_lenient_journal is not None:
                self._wal_lenient_journal.clear()
        if self.cache is not None:
            self.cache.invalidate()

    # -- durability (serve-state journaling) ----------------------------------

    def enable_wal_journal(self) -> None:
        """Start journaling history additions for WAL serve-state records."""
        with self._lock:
            if self._wal_history_journal is None:
                self._wal_history_journal = {}
                self._wal_lenient_journal = {}
        self.advisor.enable_wal_journal()

    def drain_wal_journal(self) -> tuple[dict, dict]:
        """The (strict, lenient) history additions since the last drain."""
        with self._lock:
            history = dict(self._wal_history_journal or {})
            lenient = dict(self._wal_lenient_journal or {})
            if self._wal_history_journal is not None:
                self._wal_history_journal.clear()
                self._wal_lenient_journal.clear()
        return history, lenient

    def serve_state_snapshot(self, turn: int) -> dict:
        """The *full* serve state, for checkpoints (absolute, not delta)."""
        with self._lock:
            history = dict(self.history)
            lenient = dict(self.lenient_history)
        return {
            "turn": turn,
            "history": history,
            "lenient": lenient,
            "advisor": self.advisor.export_state(),
        }

    def restore_serve_state(self, state) -> None:
        """Load recovered history/advisor state (from a ``ServeState``)."""
        with self._lock:
            self.history.update(state.history)
            self.lenient_history.update(state.lenient_history)
            if self._wal_history_journal is not None:
                self._wal_history_journal.clear()
                self._wal_lenient_journal.clear()
        self.advisor.load_state(state.advisor)
