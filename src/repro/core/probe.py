"""Probes and probe responses: the agent-database contract.

A probe generalises a query (paper Sec. 3): one or more SQL statements, a
brief, optional beyond-SQL requests (anywhere-token semantic search, memory
lookups), and an optional termination criterion evaluated over partial
results so the system can stop early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.brief import Brief
from repro.core.mqo import SharingReport
from repro.engine.result import QueryResult
from repro.memstore.artifacts import Artifact
from repro.semantic.search import SearchHit

#: Evaluated over the results produced so far (in execution order);
#: returning True stops execution of the probe's remaining queries.
TerminationCriterion = Callable[[list[QueryResult]], bool]


@dataclass
class Probe:
    """One agent request: queries + brief + beyond-SQL extensions."""

    queries: tuple[str, ...] = ()
    brief: Brief = field(default_factory=Brief)
    #: Anywhere-token search: "where does this phrase appear?" (Sec. 4.1).
    semantic_search: str | None = None
    #: Free-text lookups against the agentic memory store.
    memory_queries: tuple[str, ...] = ()
    termination: TerminationCriterion | None = None
    agent_id: str = "anon"
    principal: str = "public"

    @classmethod
    def sql(cls, *queries: str, goal: str = "", **brief_kwargs) -> "Probe":
        """Convenience constructor for plain SQL probes."""
        return cls(queries=tuple(queries), brief=Brief(goal=goal, **brief_kwargs))


@dataclass
class QueryOutcome:
    """What happened to one query inside a probe."""

    sql: str
    status: str  # 'ok' | 'approximate' | 'pruned' | 'terminated' | 'from_history' | 'error'
    #: Position of the query in the probe's declared ``queries`` tuple.
    #: Dispatch may reorder (priorities, pull-forward); responses restore
    #: declared order by sorting on this — not by matching SQL text, which
    #: is ambiguous when a probe repeats a statement.
    query_index: int = 0
    result: QueryResult | None = None
    sample_rate: float = 1.0
    reason: str = ""
    estimated_cost: float = 0.0
    #: Turn at which a semantically-equivalent (modulo output order) query
    #: was previously answered, if any — feeds the similarity steering hint.
    similar_to_turn: int | None = None

    @property
    def executed(self) -> bool:
        return self.status in ("ok", "approximate")

    @property
    def answered(self) -> bool:
        return self.result is not None


@dataclass
class ProbeResponse:
    """The system's reply: answers, steering feedback, and cost accounting."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    steering: list[str] = field(default_factory=list)
    semantic_hits: list[SearchHit] = field(default_factory=list)
    memory_hits: list[tuple[Artifact, float]] = field(default_factory=list)
    turn: int = 0
    rows_processed: int = 0
    cache_hits: int = 0
    #: Batch-level work-sharing accounting for the admission batch this
    #: probe was served in (every probe in a batch carries the same report;
    #: a lone ``submit`` is a batch of one).
    sharing: SharingReport | None = None
    #: End-to-end span tree for this probe (``repro.obs.trace.Trace``),
    #: present only when the probe opted into tracing via ``Brief.trace``
    #: or ``REPRO_TRACE=1``; export with ``trace.to_chrome()``.
    trace: object | None = None

    def answered(self) -> list[QueryOutcome]:
        return [outcome for outcome in self.outcomes if outcome.answered]

    def results(self) -> list[QueryResult]:
        return [outcome.result for outcome in self.outcomes if outcome.result is not None]

    def first_result(self) -> QueryResult:
        results = self.results()
        if not results:
            raise ValueError("probe produced no results")
        return results[0]

    def describe(self) -> str:
        lines = [f"turn {self.turn}: {len(self.outcomes)} queries"]
        for outcome in self.outcomes:
            summary = outcome.status
            if outcome.result is not None:
                summary += f", {outcome.result.row_count} rows"
            if outcome.reason:
                summary += f" ({outcome.reason})"
            # Ellipsize only genuinely-truncated SQL, and lead with the
            # declared query index so reordered outcomes stay readable.
            sql = outcome.sql if len(outcome.sql) <= 60 else outcome.sql[:60] + "..."
            lines.append(f"  - [{outcome.query_index}] {sql} -> {summary}")
        for hint in self.steering:
            lines.append(f"  * steering: {hint}")
        return "\n".join(lines)
