"""Streaming admission gateway: the batch is an emergent property.

PR 1 made the admission batch the serving unit — but only for callers who
hand-assembled a ``submit_many`` list. The paper's actual workload is
*independently arriving* agents (Sec. 3, 5.2.1): nobody owns the batch.
This module moves batch formation into the system:

* :class:`AgentSession` — an agent's sticky identity on the system
  (``system.session(agent_id=..., principal=..., defaults=Brief(...))``).
  Probes submitted through a session inherit its identity and brief
  defaults (so per-probe ``agent_id``/``principal`` plumbing is optional)
  and the session accumulates turn/query/row/cost accounting.
* :class:`ProbeTicket` — the future-like handle ``session.submit(probe)``
  returns immediately: ``result(timeout=)``, ``done()``, and ``cancel()``
  for probes not yet admitted into a window.
* :class:`ProbeGateway` — the admission loop. Streamed probes queue up
  across all sessions; a window closes when ``max_batch`` probes are
  pending or ``max_wait`` has elapsed since the oldest arrival (both
  configurable on :class:`~repro.core.system.SystemConfig`), and the
  window is served through the scheduler's batch path — cross-agent
  dedup/sharing now happens between agents that never coordinated.
  ``submit``/``submit_many`` remain as shims over a one-window gateway,
  and ``await session.asubmit(probe)`` / ``async for response in
  gateway.serve(aiter_of_probes)`` expose the same loop to asyncio.

Equivalence contract
--------------------

Window boundaries are invisible in rows and statuses. Serving one window
equals serial ``submit`` of its probes (the scheduler's differential
contract), and *cross-window* reuse flows through session-lived state —
history, lenient history, the shared subplan cache — exactly as serial
submission would populate it. A streamed probe's per-query rows and
statuses are therefore byte-identical to serial submission in admission
order no matter how arrivals split into windows, which is what lets CI
re-run the unmodified differential suite with jittered window timing
(``REPRO_GATEWAY_JITTER``) and at any worker count.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import replace
from typing import TYPE_CHECKING, AsyncIterator, Callable, Iterable

from repro.core.brief import Brief
from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.errors import GatewayClosed
from repro.qos.policy import lane_name
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.qos.chaos import ChaosEngine, resolve_chaos_seed
from repro.qos.policy import LANE_STANDARD, Degradation

if TYPE_CHECKING:
    from repro.core.system import AgentFirstDataSystem
    from repro.qos.controller import QosController

_LOG = logging.getLogger(__name__)

#: Environment overrides for the admission-window knobs. CI uses
#: ``REPRO_GATEWAY_JITTER`` to fuzz window formation timing under the
#: differential suite: answers must not depend on where windows close.
MAX_BATCH_ENV_VAR = "REPRO_GATEWAY_MAX_BATCH"
MAX_WAIT_ENV_VAR = "REPRO_GATEWAY_MAX_WAIT"
JITTER_ENV_VAR = "REPRO_GATEWAY_JITTER"

DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT = 0.01  # seconds


def resolve_max_batch(max_batch: int | None) -> int:
    """Normalise a window-size setting (None -> env override or default)."""
    if max_batch is None:
        env = os.environ.get(MAX_BATCH_ENV_VAR)
        max_batch = int(env) if env else DEFAULT_MAX_BATCH
    return max(1, int(max_batch))


def resolve_max_wait(max_wait: float | None) -> float:
    """Normalise a window-wait setting (None -> env override or default)."""
    if max_wait is None:
        env = os.environ.get(MAX_WAIT_ENV_VAR)
        max_wait = float(env) if env else DEFAULT_MAX_WAIT
    return max(0.0, float(max_wait))


def merge_brief(brief: Brief, defaults: Brief) -> Brief:
    """Field-wise overlay: the probe's brief wins wherever it says anything.

    Unset fields (empty string, ``None``, empty dict) fall back to the
    session's defaults, so a bare ``Probe(queries=(sql,))`` submitted
    through a session behaves as if it carried the session's brief.
    """
    return Brief(
        goal=brief.goal or defaults.goal,
        phase=brief.phase if brief.phase is not None else defaults.phase,
        accuracy=brief.accuracy if brief.accuracy is not None else defaults.accuracy,
        priorities=dict(brief.priorities or defaults.priorities),
        complete_k_of_n=(
            brief.complete_k_of_n
            if brief.complete_k_of_n is not None
            else defaults.complete_k_of_n
        ),
        max_cost=brief.max_cost if brief.max_cost is not None else defaults.max_cost,
        lane=brief.lane if brief.lane is not None else defaults.lane,
        max_staleness=(
            brief.max_staleness
            if brief.max_staleness is not None
            else defaults.max_staleness
        ),
        trace=brief.trace if brief.trace is not None else defaults.trace,
        notes=brief.notes or defaults.notes,
    )


class ProbeTicket:
    """Future-like handle for one streamed probe.

    Returned immediately by ``session.submit``/``gateway.submit``; the
    response arrives when the probe's admission window has been served.
    """

    def __init__(
        self,
        gateway: "ProbeGateway",
        probe: Probe,
        session: "AgentSession | None" = None,
    ) -> None:
        self.probe = probe
        self.session = session
        self._gateway = gateway
        self._future: Future[ProbeResponse] = Future()
        self._enqueued_at = time.monotonic()
        self._admitted = False
        #: QoS classification, stamped at submission (inert without QoS):
        #: priority lane, whether the principal's token bucket ran dry,
        #: and the gateway-wide arrival sequence number that keeps
        #: within-lane ordering exactly FIFO.
        self.lane = LANE_STANDARD
        self.starved = False
        self._seq = 0
        #: Open "gateway:queued" span when the probe carries a trace;
        #: finished at the admission edge with the window's attributes.
        self._queued_span = None

    def done(self) -> bool:
        """True once the response is available (or the ticket cancelled)."""
        return self._future.done()

    def cancelled(self) -> bool:
        return self._future.cancelled()

    def admitted(self) -> bool:
        """True once the probe has been admitted into a window (at which
        point it can no longer be cancelled)."""
        return self._admitted

    def result(self, timeout: float | None = None) -> ProbeResponse:
        """Block until the probe's window is served; returns the response.

        Raises ``concurrent.futures.CancelledError`` if the ticket was
        cancelled, ``concurrent.futures.TimeoutError`` on timeout.
        """
        return self._future.result(timeout)

    def cancel(self) -> bool:
        """Withdraw a probe that has not yet been admitted into a window.

        Returns True on success; False if the probe was already admitted
        (its window is being — or has been — served).
        """
        return self._gateway._cancel(self)

    def aresult(self) -> "asyncio.Future[ProbeResponse]":
        """An awaitable view of this ticket for the running asyncio loop."""
        return asyncio.wrap_future(self._future)


class AgentSession:
    """One agent's sticky identity + accounting on a serving system.

    Sessions are cheap handles: they hold no queue of their own — every
    submitted probe goes straight to the gateway's shared admission loop,
    which is exactly what makes the batch cross-agent.
    """

    def __init__(
        self,
        gateway: "ProbeGateway",
        agent_id: str | None = None,
        principal: str | None = None,
        defaults: Brief | None = None,
    ) -> None:
        self.gateway = gateway
        self.agent_id = agent_id
        self.principal = principal
        self.defaults = defaults
        #: Accounting, updated as each of this session's tickets resolves.
        self.probes_submitted = 0
        self.turns_served = 0
        self.queries_served = 0
        self.rows_processed = 0
        self.cache_hits = 0
        self.spent_cost = 0.0
        self.last_turn = 0
        self._lock = threading.Lock()

    # -- the streaming surface ------------------------------------------------

    def submit(self, probe: Probe) -> ProbeTicket:
        """Stream one probe into the gateway; returns its ticket at once."""
        ticket = self.gateway.submit(self.effective(probe), session=self)
        with self._lock:  # after the gateway accepts: a closed gateway raises
            self.probes_submitted += 1
        return ticket

    async def asubmit(self, probe: Probe) -> ProbeResponse:
        """Asyncio twin of :meth:`submit`: awaits the served response."""
        return await self.submit(probe).aresult()

    # -- defaults -------------------------------------------------------------

    def effective(self, probe: Probe) -> Probe:
        """The probe as served: session identity/brief fill unset fields."""
        updates: dict = {}
        if self.agent_id is not None and probe.agent_id == "anon":
            updates["agent_id"] = self.agent_id
        if self.principal is not None and probe.principal == "public":
            updates["principal"] = self.principal
        if self.defaults is not None:
            merged = merge_brief(probe.brief, self.defaults)
            if merged != probe.brief:
                updates["brief"] = merged
        return replace(probe, **updates) if updates else probe

    # -- accounting -----------------------------------------------------------

    def _account(self, response: ProbeResponse) -> None:
        with self._lock:
            self.turns_served += 1
            self.last_turn = max(self.last_turn, response.turn)
            self.queries_served += len(response.outcomes)
            self.rows_processed += response.rows_processed
            self.cache_hits += response.cache_hits
            self.spent_cost += sum(
                outcome.estimated_cost
                for outcome in response.outcomes
                if outcome.executed
            )

    def describe(self) -> str:
        name = self.agent_id or "anon"
        return (
            f"session {name}: {self.turns_served}/{self.probes_submitted} probes"
            f" served, {self.queries_served} queries, {self.rows_processed} rows,"
            f" cost {self.spent_cost:.0f}"
        )


class ProbeGateway:
    """Admits streamed probes into cross-session admission windows.

    The loop thread starts lazily on the first streamed submit; systems
    that only ever use the synchronous ``submit``/``submit_many`` shims
    never pay for it. ``flush()`` closes the current window immediately
    (callers that know their stream has a lull use it to skip the
    ``max_wait`` timer); ``close()`` drains pending probes and stops the
    loop.

    Lock discipline: all stats counters — the streamed/direct window
    aggregates, the QoS backpressure counters, ``_seq_counter``, and the
    formation gauges — are mutated and snapshotted only while holding
    ``_cond``; never call back into user code (hooks, futures) or
    acquire ``_serve_lock`` while holding it. ``_serve_lock`` serialises
    window serving and is always taken *without* ``_cond`` held (the
    ``_serve_waiters`` handshake brackets it from outside), so the lock
    order is strictly one-at-a-time and deadlock-free. ``stats()`` is
    therefore a consistent point-in-time snapshot, exactly the
    discipline :class:`~repro.engine.executor.SubplanCache` documents
    for its counters. The counters themselves live in the shared metrics
    registry via :class:`~repro.obs.metrics.MetricAttr` shims —
    attribute reads/writes and ``stats()`` keys are unchanged.
    """

    windows_streamed = MetricAttr("_m_windows_streamed")
    probes_streamed = MetricAttr("_m_probes_streamed")
    windows_direct = MetricAttr("_m_windows_direct")
    probes_offloaded = MetricAttr("_m_probes_offloaded")
    idle_hook_errors = MetricAttr("_m_idle_hook_errors")
    overload_windows = MetricAttr("_m_overload_windows")
    probes_degraded = MetricAttr("_m_probes_degraded")
    probes_shed_to_replicas = MetricAttr("_m_probes_shed_to_replicas")
    probes_closed_unserved = MetricAttr("_m_probes_closed_unserved")

    def __init__(
        self,
        system: "AgentFirstDataSystem",
        max_batch: int | None = None,
        max_wait: float | None = None,
        qos: "QosController | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.max_batch = resolve_max_batch(max_batch)
        self.max_wait = resolve_max_wait(max_wait)
        #: Overload control (None = admit everything, strict FIFO — the
        #: pre-QoS behaviour). With a controller attached, submissions are
        #: classified into priority lanes and, *only past the configured
        #: watermarks*, windows admit lane-major and bulk probes degrade.
        self.qos = qos
        #: Deterministic timing chaos (``REPRO_CHAOS``): seeded per-window
        #: admission latency spikes. Timing is exactly the axis the
        #: differential contract proves answers are independent of.
        chaos_seed = resolve_chaos_seed()
        self.chaos = ChaosEngine(chaos_seed) if chaos_seed is not None else None
        #: Extra per-window wait drawn uniformly from [0, jitter] seconds —
        #: CI's tool for proving answers don't depend on window timing.
        self.jitter = max(0.0, float(os.environ.get(JITTER_ENV_VAR, 0.0) or 0.0))
        self._jitter_rng = random.Random(0xA6E27)
        self._pending: deque[ProbeTicket] = deque()
        #: Windows (streamed or direct) currently waiting for — or holding
        #: — the serve lock; the maintenance runtime's preemption signal
        #: for probes that are past admission. Guarded by ``_cond``.
        self._serve_waiters = 0
        self._cond = threading.Condition()
        #: Serialises window serving: streamed windows and direct
        #: ``submit_many`` windows interleave without tearing turn numbers.
        #: The maintenance runtime takes the same lock for its idle-window
        #: jobs, so sleeper-agent work is never co-resident with serving.
        self._serve_lock = threading.Lock()
        #: Maintenance hook: called (outside all gateway locks) whenever
        #: the admission loop drains its queue — an idle window opened.
        self.idle_hook: "Callable[[], None] | None" = None
        self._thread: threading.Thread | None = None
        self._stopped = False
        self._flush_requested = False
        #: Retire the admission thread after this long with nothing
        #: pending; a later streamed submit restarts it. Long-lived
        #: serving systems (one per database) otherwise pile up idle
        #: threads across a harness sweep.
        self.idle_stop = 5.0
        #: Observability: streamed-window formation stats (the bench reads
        #: these via :meth:`stats`) plus the caller-assembled windows
        #: served synchronously. Running aggregates, not per-window lists:
        #: a long-lived gateway must not grow without bound.
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry

        def _bind(name: str, help_text: str):
            return registry.counter(f"repro_gateway_{name}", help_text).bind()

        self._m_windows_streamed = _bind(
            "windows_streamed_total", "Admission windows formed by the loop."
        )
        self._m_probes_streamed = _bind(
            "probes_streamed_total", "Probes admitted through streamed windows."
        )
        self._m_windows_direct = _bind(
            "windows_direct_total", "Caller-assembled windows served synchronously."
        )
        self._m_probes_offloaded = _bind(
            "probes_offloaded_total", "Probes answered by read replicas."
        )
        self._m_idle_hook_errors = _bind(
            "idle_hook_errors_total", "Maintenance idle-hook failures survived."
        )
        self._m_overload_windows = _bind(
            "overload_windows_total", "Windows formed past a QoS watermark."
        )
        self._m_probes_degraded = _bind(
            "probes_degraded_total", "Probes served with a shedding verdict."
        )
        self._m_probes_shed_to_replicas = _bind(
            "probes_shed_to_replicas_total", "Probes force-offloaded by shedding."
        )
        self._m_probes_closed_unserved = _bind(
            "probes_closed_unserved_total", "Probes still queued at shutdown."
        )
        registry.add_collector(self._collect_gauges)
        self.windows_streamed = 0
        self.probes_streamed = 0
        self.windows_direct = 0
        self._window_size_max = 0
        self._formation_ms_total = 0.0
        self._formation_ms_max = 0.0
        #: Probes answered by read replicas instead of the primary window.
        self.probes_offloaded = 0
        #: Idle-hook failures survived (see ``_serve_streamed_window``).
        self.idle_hook_errors = 0
        self.last_idle_hook_error: str | None = None
        #: QoS backpressure counters (all monotone; ``stats()`` snapshots
        #: them under ``_cond`` together with the formation aggregates).
        self._seq_counter = 0
        self.overload_windows = 0
        self.probes_degraded = 0
        self.probes_shed_to_replicas = 0
        self.probes_closed_unserved = 0
        #: Capacity signals for the shard matchmaker: the deepest the
        #: admission queue has ever been (peak gauge, monotone), and —
        #: via ``stats()["windows_served"]`` — total windows served on
        #: either path. Shards advertise both so the router can pull-match
        #: queued work to the shard with headroom.
        self._queue_depth_peak = 0

    # -- synchronous window serving (the submit/submit_many shim path) --------

    def serve_window(self, probes: list[Probe]) -> list[ProbeResponse]:
        """Serve one caller-assembled admission window, synchronously."""
        if not probes:
            return []
        for probe in probes:
            trace = obs_trace.ensure_probe_trace(probe)
            if trace is not None:
                trace.root.child(
                    "gateway:window", path="direct", window_size=len(probes)
                ).finish()
        with self._cond:
            self._serve_waiters += 1  # visible to maintenance preemption
        try:
            with self._serve_lock:
                responses = self.system._serve_batch(probes)
        finally:
            with self._cond:
                self._serve_waiters -= 1
        with self._cond:  # stats share the cond lock with the loop thread
            self.windows_direct += 1
        return responses

    # -- the streaming surface ------------------------------------------------

    def submit(self, probe: Probe, session: AgentSession | None = None) -> ProbeTicket:
        """Enqueue one probe for admission; returns its ticket immediately.

        Raises :class:`~repro.errors.GatewayClosed` on a closed gateway
        and :class:`~repro.errors.OverloadError` past the QoS layer's
        hard admission cap (when one is configured — by default overload
        degrades instead of rejecting and this never raises).
        """
        trace = obs_trace.ensure_probe_trace(probe)
        ticket = ProbeTicket(self, probe, session)
        if trace is not None:
            ticket._queued_span = trace.root.child("gateway:queued")
        with self._cond:
            if self._stopped:
                raise GatewayClosed()
            if self.qos is not None:
                # Classification (and the hard-cap check) happens under
                # the admission lock so lane/bucket state is consistent
                # with the queue depth it judged.
                ticket.lane, ticket.starved = self.qos.classify(
                    probe, len(self._pending)
                )
                if trace is not None:
                    trace.root.child(
                        "qos:classify",
                        lane=lane_name(ticket.lane),
                        starved=ticket.starved,
                    ).finish()
            ticket._seq = self._seq_counter
            self._seq_counter += 1
            self._ensure_loop()
            self._pending.append(ticket)
            if len(self._pending) > self._queue_depth_peak:
                self._queue_depth_peak = len(self._pending)
            self._cond.notify_all()
        return ticket

    def flush(self) -> None:
        """Close the current window now instead of waiting out ``max_wait``."""
        with self._cond:
            self._flush_requested = True
            self._cond.notify_all()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain pending probes, serve them, and stop the admission loop.

        Any probe still queued once the loop is down — submit raced the
        stop flag, the thread had already retired idle, or the join timed
        out — resolves with a structured ``GatewayClosed`` error
        *response* (every query an ``"error"`` outcome, plus a steering
        line): ``ticket.result()`` must never block on shutdown.
        """
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        with self._cond:
            leftovers = list(self._pending)
            self._pending.clear()
        resolved = 0
        for ticket in leftovers:
            # Settle the cancel race exactly like window admission does;
            # a ticket cancelled out-of-band is already resolved.
            if not ticket._future.set_running_or_notify_cancel():
                continue
            ticket._admitted = True
            resolved += 1
            # No session accounting: this probe was never served.
            with contextlib.suppress(InvalidStateError):
                ticket._future.set_result(_closed_response(ticket.probe))
        if resolved:
            with self._cond:
                self.probes_closed_unserved += resolved

    def pending_probes(self) -> int:
        with self._cond:
            return len(self._pending)

    def serving_demand(self) -> int:
        """Probes that would be served right now if nothing were in the
        way: queued for admission, plus windows (streamed or direct)
        waiting on — or holding — the serve lock. The maintenance
        runtime's preemption predicate: any positive value means a
        sleeper job should yield the lock."""
        with self._cond:
            return len(self._pending) + self._serve_waiters

    @property
    def serve_lock(self) -> threading.Lock:
        """The window-serving lock; the maintenance runtime holds it for
        idle-window jobs so sleeper work and serving never overlap."""
        return self._serve_lock

    async def serve(
        self,
        probes: "AsyncIterator[Probe] | Iterable[Probe]",
        session: AgentSession | None = None,
    ) -> "AsyncIterator[ProbeResponse]":
        """Stream probes from an (async) iterator; yield served responses.

        Probes are admitted as they arrive — submission keeps running
        while earlier responses are awaited, so a slow producer and the
        admission timer overlap. Responses come back in submission order.
        """
        queue: asyncio.Queue = asyncio.Queue()
        submit = session.submit if session is not None else self.submit

        async def _feed() -> None:
            # The sentinel (or the producer's failure) must always reach
            # the consumer, or it would block on queue.get() forever.
            try:
                if hasattr(probes, "__aiter__"):
                    async for probe in probes:  # type: ignore[union-attr]
                        queue.put_nowait(submit(probe))
                else:
                    for probe in probes:  # type: ignore[union-attr]
                        queue.put_nowait(submit(probe))
                        await asyncio.sleep(0)  # let consumers interleave
            except BaseException as exc:
                queue.put_nowait(exc)
                raise
            queue.put_nowait(None)

        feeder = asyncio.ensure_future(_feed())
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield await item.aresult()
        finally:
            feeder.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await feeder

    # -- admission loop -------------------------------------------------------

    def _ensure_loop(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="probe-gateway", daemon=True
            )
            self._thread.start()

    def _window_wait(self) -> float:
        if not self.jitter:
            return self.max_wait
        return self.max_wait + self._jitter_rng.uniform(0.0, self.jitter)

    def _loop(self) -> None:
        while True:
            window: list[ProbeTicket] = []
            with self._cond:
                while not self._pending and not self._stopped:
                    self._flush_requested = False
                    woke = self._cond.wait(timeout=self.idle_stop)
                    if not woke and not self._pending and not self._stopped:
                        # Idle past the retirement window: stop this
                        # thread; the next streamed submit restarts one.
                        self._thread = None
                        return
                if not self._pending and self._stopped:
                    return
                window_wait = self._window_wait()
                while (
                    self._pending
                    and len(self._pending) < self.max_batch
                    and not self._flush_requested
                    and not self._stopped
                ):
                    remaining = (
                        self._pending[0]._enqueued_at
                        + window_wait
                        - time.monotonic()
                    )
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                if not self._pending:  # everything cancelled while waiting
                    continue
                first_enqueued = self._pending[0]._enqueued_at
                # Overload is judged at the admission edge, from the
                # backlog this window leaves behind: queue depth and the
                # oldest arrival's wait. Below the watermarks (or without
                # QoS) admission is strict FIFO — the byte-identity path.
                overload_cause = None
                if self.qos is not None:
                    wait_ms = (time.monotonic() - first_enqueued) * 1000.0
                    overload_cause = self.qos.overload_cause(
                        len(self._pending), wait_ms
                    )
                if overload_cause is None:
                    candidates = self._pending
                else:
                    # Lane-major, arrival-order-minor; bucket-starved
                    # probes last. sort() is stable but the key is total
                    # (every ticket has a unique _seq) so ordering is
                    # deterministic either way.
                    candidates = deque(
                        sorted(
                            self._pending,
                            key=lambda t: (
                                self.qos.effective_lane(t.lane, t.starved),
                                t._seq,
                            ),
                        )
                    )
                while candidates and len(window) < self.max_batch:
                    ticket = candidates.popleft()
                    if candidates is not self._pending:
                        self._pending.remove(ticket)
                    # Settle the admission race with cancel() here, under
                    # the same lock _cancel takes. Marking the future
                    # RUNNING makes any later Future.cancel() — including
                    # out-of-band ones from asyncio.wait_for timing out on
                    # aresult() — return False deterministically; a future
                    # already cancelled out-of-band is skipped, never
                    # served to a caller who gave up on it.
                    if not ticket._future.set_running_or_notify_cancel():
                        continue
                    ticket._admitted = True
                    window.append(ticket)
                if not self._pending:
                    self._flush_requested = False
                formation_ms = (time.monotonic() - first_enqueued) * 1000.0
            if not window:  # everything was cancelled at the admission edge
                continue
            self._serve_streamed_window(window, formation_ms, overload_cause)

    def _serve_streamed_window(
        self,
        window: list[ProbeTicket],
        formation_ms: float,
        overload_cause: str | None = None,
    ) -> None:
        if self.chaos is not None:
            # Seeded timing chaos: perturb when this window serves, never
            # what it answers (the jitter differential contract).
            delay = self.chaos.admission_delay_s()
            if delay:
                time.sleep(delay)
        for position, ticket in enumerate(window):
            span = ticket._queued_span
            if span is not None:
                # The admission-window span: queue time plus the window's
                # shape, closed at the admission edge.
                span.note(
                    window_size=len(window),
                    position=position,
                    formation_ms=round(formation_ms, 3),
                )
                if overload_cause is not None:
                    span.note(overload_cause=overload_cause)
                span.finish()
                ticket._queued_span = None
        degradations: list[Degradation | None] | None = None
        if overload_cause is not None and self.qos is not None:
            with self._cond:
                self.overload_windows += 1
            degradations = self.qos.plan_degradations(
                window, overload_cause, self._replica_shed_eligibility()
            )
        window, degradations = self._offload_to_replicas(window, degradations)
        if window:
            probes = [ticket.probe for ticket in window]
            try:
                with self._cond:
                    self._serve_waiters += 1  # admitted probes still count as demand
                try:
                    with self._serve_lock:
                        # The keyword travels only when a shedding plan
                        # exists, so serve-path wrappers (tests, hooks)
                        # with the original one-argument signature keep
                        # working on every unloaded window.
                        if degradations is not None:
                            responses = self.system._serve_batch(
                                probes, degradations=degradations
                            )
                        else:
                            responses = self.system._serve_batch(probes)
                finally:
                    with self._cond:
                        self._serve_waiters -= 1
            except BaseException as exc:  # pragma: no cover - defensive
                for ticket in window:
                    if not ticket._future.done():
                        with contextlib.suppress(InvalidStateError):
                            ticket._future.set_exception(exc)
                return
            with self._cond:
                self.windows_streamed += 1
                self.probes_streamed += len(window)
                self._window_size_max = max(self._window_size_max, len(window))
                self._formation_ms_total += formation_ms
                self._formation_ms_max = max(self._formation_ms_max, formation_ms)
                if degradations is not None:
                    self.probes_degraded += sum(
                        1 for verdict in degradations if verdict is not None
                    )
            for ticket, response in zip(window, responses):
                self._deliver(ticket, response)
        if self.qos is not None:
            # Window cadence drives bucket refill (deterministic, unlike
            # wall-clock): principals earn admission budget back as the
            # gateway actually makes progress.
            self.qos.window_served()
        # The queue drained behind this window: an idle window opened for
        # the maintenance runtime. Fired outside all gateway locks; the
        # runtime re-checks for pending probes before (and while) working.
        hook = self.idle_hook
        if hook is not None and self.pending_probes() == 0:
            try:
                hook()
            except Exception as exc:
                # A poison maintenance job must never take the admission
                # loop down with it: log, count, keep serving.
                _LOG.exception("gateway idle hook failed; admission continues")
                with self._cond:
                    self.idle_hook_errors += 1
                    self.last_idle_hook_error = f"{type(exc).__name__}: {exc}"

    @staticmethod
    def _deliver(ticket: ProbeTicket, response: ProbeResponse) -> None:
        if ticket.session is not None:
            ticket.session._account(response)
        # A future in an unexpected state (an out-of-band cancel that slid
        # past the admission edge) just drops the response; raising here
        # would kill the admission loop for every other session.
        with contextlib.suppress(InvalidStateError):
            ticket._future.set_result(response)

    def _replica_shed_eligibility(self):
        """The replica-eligibility predicate handed to the shedding
        planner: may this probe be answered by a replica under a
        QoS-imposed staleness tolerance?"""
        pool = getattr(self.system, "replicas", None)
        if pool is None or self.qos is None:
            return None
        assume = self.qos.config.shed_max_staleness is not None
        return lambda probe: pool.eligible(probe, assume_staleness=assume)

    def _offload_to_replicas(
        self,
        window: list[ProbeTicket],
        degradations: "list[Degradation | None] | None" = None,
    ) -> tuple[list[ProbeTicket], "list[Degradation | None] | None"]:
        """Spill eligible probes to read replicas when the primary is loaded.

        Only fires when this window is full or more probes are already
        queued behind it — an unloaded primary serves everything itself
        (fresher answers at no extra cost). Returns the tickets the
        primary still has to serve, with the window's shedding plan
        (when one exists) kept ticket-aligned.

        Probes with a ``"replica"`` shedding verdict are *forced* here
        under the verdict's staleness tolerance, each tagged with the
        verdict's "system under load" steering line; a replica that
        declines (too stale, unparseable) downgrades the verdict to the
        sampled path — degrade, don't drop.
        """
        pool = getattr(self.system, "replicas", None)
        if pool is None or not window:
            return window, degradations
        if (
            degradations is None
            and len(window) < self.max_batch
            and self.pending_probes() == 0
        ):
            return window, degradations
        kept: list[ProbeTicket] = []
        kept_verdicts: list[Degradation | None] = []
        for position, ticket in enumerate(window):
            verdict = degradations[position] if degradations is not None else None
            if verdict is not None and verdict.kind == "replica":
                response = pool.try_serve(
                    ticket.probe,
                    staleness_override=verdict.staleness,
                    load_note=verdict.steering(),
                )
                if response is not None:
                    with self._cond:
                        self.probes_offloaded += 1
                        self.probes_shed_to_replicas += 1
                        self.probes_degraded += 1
                    self._finalize_offload_trace(ticket, response, forced=True)
                    self._deliver(ticket, response)
                    continue
                verdict = (
                    Degradation(
                        kind="sample",
                        cause=verdict.cause,
                        sample_cap=self.qos.config.shed_sample_rate,
                    )
                    if ticket.probe.queries and self.qos is not None
                    else None
                )
            else:
                response = pool.try_serve(ticket.probe)
                if response is not None:
                    with self._cond:
                        self.probes_offloaded += 1
                    self._finalize_offload_trace(ticket, response, forced=False)
                    self._deliver(ticket, response)
                    continue
            kept.append(ticket)
            kept_verdicts.append(verdict)
        return kept, (kept_verdicts if degradations is not None else None)

    @staticmethod
    def _finalize_offload_trace(
        ticket: ProbeTicket, response: ProbeResponse, forced: bool
    ) -> None:
        """Close a trace that never reaches ``_serve_batch``: the probe
        was answered by a replica, so the gateway owns finalization."""
        trace = obs_trace.probe_trace(ticket.probe)
        if trace is None or trace.finished:
            return
        span = ticket._queued_span
        if span is not None:
            span.note(offloaded=True)
            span.finish()
            ticket._queued_span = None
        trace.root.child("replica:offload", forced=forced).finish()
        trace.finish()
        response.trace = trace

    def _collect_gauges(self) -> None:
        """Snapshot-time gauges (zero hot-path cost): the live queue
        depth and the formation peaks, read under ``_cond`` exactly like
        ``stats()``."""
        with self._cond:
            pending = len(self._pending)
            peak = self._queue_depth_peak
            size_max = self._window_size_max
        registry = self.metrics_registry
        registry.gauge(
            "repro_gateway_pending", "Probes queued for admission right now."
        ).set(pending)
        registry.gauge(
            "repro_gateway_queue_depth_peak",
            "Deepest the admission queue has ever been.",
        ).set(peak)
        registry.gauge(
            "repro_gateway_window_size_max", "Largest window served so far."
        ).set(size_max)

    # -- cancellation ---------------------------------------------------------

    def _cancel(self, ticket: ProbeTicket) -> bool:
        with self._cond:
            if ticket._admitted or ticket._future.done():
                return False
            try:
                self._pending.remove(ticket)
            except ValueError:
                return False
            cancelled = ticket._future.cancel()
            self._cond.notify_all()
            return cancelled

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        """A snapshot of window-formation behaviour (the bench records it)."""
        with self._cond:
            windows = self.windows_streamed
            return {
                "windows_streamed": windows,
                "probes_streamed": self.probes_streamed,
                "windows_direct": self.windows_direct,
                # The matchmaker's capacity pair (both monotone): total
                # windows served on either path, and the deepest the
                # admission queue has ever been.
                "windows_served": windows + self.windows_direct,
                "queue_depth_peak": self._queue_depth_peak,
                "mean_window_size": (
                    self.probes_streamed / windows if windows else 0.0
                ),
                "max_window_size": self._window_size_max,
                "mean_formation_ms": (
                    self._formation_ms_total / windows if windows else 0.0
                ),
                "max_formation_ms": self._formation_ms_max,
                "probes_offloaded": self.probes_offloaded,
                "idle_hook_errors": self.idle_hook_errors,
                "last_idle_hook_error": self.last_idle_hook_error,
                # Backpressure: the pending gauge plus the QoS layer's
                # monotone overload counters (all zero without QoS, and
                # on a QoS-on system that never crossed a watermark).
                "pending": len(self._pending),
                "overload_windows": self.overload_windows,
                "probes_degraded": self.probes_degraded,
                "probes_shed_to_replicas": self.probes_shed_to_replicas,
                "probes_closed_unserved": self.probes_closed_unserved,
                "qos": self.qos.stats() if self.qos is not None else None,
                "chaos_delays_injected": (
                    self.chaos.delays_injected if self.chaos is not None else 0
                ),
            }


def _closed_response(probe: Probe) -> ProbeResponse:
    """The structured error response a shutdown resolves tickets with."""
    error = GatewayClosed("probe was still queued when the gateway shut down")
    reason = str(error)
    outcomes = [
        QueryOutcome(sql=sql, status="error", query_index=index, reason=reason)
        for index, sql in enumerate(probe.queries)
    ] or [QueryOutcome(sql="", status="error", query_index=0, reason=reason)]
    response = ProbeResponse(outcomes=outcomes, turn=0)
    response.steering.append(reason)
    return response
