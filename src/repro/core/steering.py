"""Sleeper agents: proactive steering from the data system to field agents.

Paper Sec. 4.2: the system should not just answer probes but *steer* agents
toward better ones. Three sleeper agents run alongside probe execution:

* :class:`WhyNotDiagnoser` — empty results get a why-not-provenance style
  diagnosis: which predicate killed every row, and what nearby literal
  would have matched (the paper's "'CA' vs states listed out in entirety"
  example);
* :class:`JoinDiscovery` — related tables worth joining with or pivoting
  to, found by column-name and value-overlap evidence;
* :class:`CostAdvisor` — pre-execution cost estimates, narrowing and
  batching suggestions, and pointers to already-cached answers.

Each produces plain-language strings — the side-channel an LLM agent would
read alongside rows.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.db import Database
from repro.plan import logical
from repro.sql import nodes
from repro.storage.types import Value
from repro.util.text import singularize

#: How many most-common values to scan for near-miss literal suggestions.
_SUGGESTION_POOL = 10


# ---------------------------------------------------------------------------
# why-not provenance
# ---------------------------------------------------------------------------


@dataclass
class WhyNotFinding:
    """One diagnosed reason a query returned nothing."""

    conjunct_sql: str
    table: str
    column: str | None
    matched_rows: int
    suggestion: str | None

    def message(self) -> str:
        base = (
            f"your predicate {self.conjunct_sql} matched {self.matched_rows} rows"
            f" in {self.table}"
        )
        if self.suggestion:
            return f"{base}; {self.suggestion}"
        return base


class WhyNotDiagnoser:
    """Explains empty results by testing filter conjuncts in isolation."""

    def __init__(self, db: Database) -> None:
        self._db = db

    def diagnose(self, plan: logical.PlanNode) -> list[WhyNotFinding]:
        findings: list[WhyNotFinding] = []
        for node in plan.walk():
            if not isinstance(node, logical.Filter):
                continue
            scan = self._scan_below(node.child)
            if scan is None:
                continue
            for conjunct in _split_conjuncts(node.predicate):
                finding = self._test_conjunct(conjunct, scan)
                if finding is not None:
                    findings.append(finding)
        # IndexScans encode the predicate in the scan itself.
        for node in plan.walk():
            if isinstance(node, logical.IndexScan) and node.is_equality:
                finding = self._test_index_equality(node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _scan_below(self, node: logical.PlanNode) -> logical.Scan | None:
        if isinstance(node, logical.Scan):
            return node
        if isinstance(node, logical.Filter):
            return self._scan_below(node.child)
        return None

    def _test_conjunct(
        self, conjunct: nodes.Expr, scan: logical.Scan
    ) -> WhyNotFinding | None:
        column, literal = _column_literal(conjunct)
        if column is None:
            return None
        matched = self._count_matching(scan.table, conjunct)
        if matched > 0:
            return None
        suggestion = None
        if isinstance(literal, str):
            suggestion = self._literal_suggestion(scan.table, column, literal)
        return WhyNotFinding(
            conjunct_sql=conjunct.sql(),
            table=scan.table,
            column=column,
            matched_rows=0,
            suggestion=suggestion,
        )

    def _test_index_equality(self, scan: logical.IndexScan) -> WhyNotFinding | None:
        predicate = nodes.Binary(
            "=",
            nodes.ColumnRef(column=scan.index_column),
            nodes.Literal(scan.equal_value),
        )
        matched = self._count_matching(scan.table, predicate)
        if matched > 0:
            return None
        suggestion = None
        if isinstance(scan.equal_value, str):
            suggestion = self._literal_suggestion(
                scan.table, scan.index_column, scan.equal_value
            )
        return WhyNotFinding(
            conjunct_sql=predicate.sql(),
            table=scan.table,
            column=scan.index_column,
            matched_rows=0,
            suggestion=suggestion,
        )

    def _count_matching(self, table: str, conjunct: nodes.Expr) -> int:
        sql = f"SELECT COUNT(*) FROM {table} WHERE {conjunct.sql()}"
        try:
            return int(self._db.execute(sql).first_value())
        except Exception:
            return 1  # cannot verify -> do not accuse this conjunct

    def _literal_suggestion(
        self, table: str, column: str, literal: str
    ) -> str | None:
        """Find how the column actually encodes values close to ``literal``."""
        stats = self._db.catalog.stats(table).column(column)
        if stats is None:
            return None
        candidates = [
            value
            for value, _ in stats.most_common[:_SUGGESTION_POOL]
            if isinstance(value, str)
        ]
        if not candidates:
            return None
        lowered = literal.lower()
        # Containment either way catches abbreviation-vs-full-name mismatches.
        for value in candidates:
            if lowered != value.lower() and (
                lowered in value.lower() or value.lower().startswith(lowered)
            ):
                return (
                    f"values in {table}.{column} are stored like {value!r},"
                    f" not {literal!r}"
                )
        close = difflib.get_close_matches(
            literal, candidates, n=1, cutoff=0.5
        )
        if close:
            return (
                f"did you mean {close[0]!r}? {table}.{column} has no"
                f" value {literal!r}"
            )
        sample = ", ".join(repr(v) for v in candidates[:3])
        return f"{table}.{column} contains values like {sample}"


# ---------------------------------------------------------------------------
# join / related-table discovery
# ---------------------------------------------------------------------------


@dataclass
class JoinSuggestion:
    source_table: str
    source_column: str
    target_table: str
    target_column: str
    value_overlap: float

    def message(self) -> str:
        return (
            f"{self.source_table}.{self.source_column} joins"
            f" {self.target_table}.{self.target_column}"
            f" (value overlap {self.value_overlap:.0%})"
        )


class JoinDiscovery:
    """Finds tables related to the ones a probe touched (paper's [14])."""

    def __init__(self, db: Database, sample_size: int = 200) -> None:
        self._db = db
        self._sample_size = sample_size

    def related_tables(self, table: str, limit: int = 3) -> list[JoinSuggestion]:
        if not self._db.catalog.has_table(table):
            return []
        suggestions: list[JoinSuggestion] = []
        source_schema = self._db.catalog.table(table).schema
        for other_name in self._db.table_names():
            if other_name.lower() == table.lower():
                continue
            other_schema = self._db.catalog.table(other_name).schema
            for source_col in source_schema.columns:
                for target_col in other_schema.columns:
                    if not self._names_joinable(
                        table, source_col.name, other_name, target_col.name
                    ):
                        continue
                    overlap = self._value_overlap(
                        table, source_col.name, other_name, target_col.name
                    )
                    if overlap > 0.05:
                        suggestions.append(
                            JoinSuggestion(
                                source_table=table,
                                source_column=source_col.name,
                                target_table=other_name,
                                target_column=target_col.name,
                                value_overlap=overlap,
                            )
                        )
        suggestions.sort(key=lambda s: (-s.value_overlap, s.target_table))
        deduped: list[JoinSuggestion] = []
        seen_targets: set[str] = set()
        for suggestion in suggestions:
            if suggestion.target_table in seen_targets:
                continue
            seen_targets.add(suggestion.target_table)
            deduped.append(suggestion)
        return deduped[:limit]

    def _names_joinable(
        self, source_table: str, source: str, target_table: str, target: str
    ) -> bool:
        s, t = source.lower(), target.lower()
        if s == t and s not in ("name", "description", "created_at"):
            return True
        # foo.id <-> bar.foo_id naming convention, both directions.
        if t == f"{singularize(source_table)}_{s}":
            return True
        if s == f"{singularize(target_table)}_{t}":
            return True
        return False

    def _value_overlap(
        self, source_table: str, source: str, target_table: str, target: str
    ) -> float:
        source_values = self._sample_values(source_table, source)
        target_values = self._sample_values(target_table, target)
        if not source_values or not target_values:
            return 0.0
        return len(source_values & target_values) / len(source_values)

    def _sample_values(self, table: str, column: str) -> set[Value]:
        stored = self._db.catalog.table(table)
        position = stored.schema.position_of(column)
        values: set[Value] = set()
        for row in stored.scan():
            value = row[position]
            if value is not None:
                values.add(value)
            if len(values) >= self._sample_size:
                break
        return values


# ---------------------------------------------------------------------------
# cost advisor
# ---------------------------------------------------------------------------


class CostAdvisor:
    """Cost estimates and efficiency feedback (paper Sec. 4.2)."""

    def __init__(self, db: Database, expensive_threshold: float = 50_000.0) -> None:
        self._db = db
        self._expensive_threshold = expensive_threshold
        #: (agent_id -> recent single-query probe tables) for batching hints.
        self._recent_tables: dict[str, list[str]] = {}

    def pre_execution_feedback(
        self, agent_id: str, estimated_cost: float, max_cost: float | None, sql: str
    ) -> list[str]:
        feedback: list[str] = []
        threshold = max_cost if max_cost is not None else self._expensive_threshold
        if estimated_cost > threshold:
            feedback.append(
                f"estimated cost {estimated_cost:.0f} work units exceeds"
                f" {threshold:.0f}; consider narrowing the predicate, adding"
                f" a LIMIT, or requesting a lower accuracy in the brief"
            )
        return feedback

    def observe_probe(self, agent_id: str, tables: list[str], query_count: int) -> list[str]:
        """Detect a stream of small sequential probes hitting the same data."""
        history = self._recent_tables.setdefault(agent_id, [])
        feedback: list[str] = []
        if query_count == 1 and tables:
            history.extend(tables)
            if len(history) >= 3 and len(set(history[-3:])) == 1:
                feedback.append(
                    f"you have issued {len(history)} sequential probes on"
                    f" {history[-1]!r}; batching them into one multi-query probe"
                    " would share scan work"
                )
        else:
            history.clear()
        return feedback


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: nodes.Expr) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _column_literal(expr: nodes.Expr) -> tuple[str | None, Value]:
    """(column, literal) for simple comparison conjuncts, else (None, None)."""
    if isinstance(expr, nodes.Binary) and expr.op in ("=", "<", "<=", ">", ">=", "LIKE"):
        left, right = expr.left, expr.right
        if isinstance(left, nodes.ColumnRef) and isinstance(right, nodes.Literal):
            return left.column, right.value
        if isinstance(right, nodes.ColumnRef) and isinstance(left, nodes.Literal):
            return right.column, left.value
    if isinstance(expr, nodes.InList) and isinstance(expr.operand, nodes.ColumnRef):
        literals = [i.value for i in expr.items if isinstance(i, nodes.Literal)]
        if literals:
            return expr.operand.column, literals[0]
    return None, None


# ---------------------------------------------------------------------------
# overload / backend-health notices (the QoS layer's steering vocabulary)
# ---------------------------------------------------------------------------
#
# Degradation must be legible to the agent: every QoS action that changes
# what a response would otherwise have been carries one of these lines.
# They are plain prose with machine-greppable anchors ("system under
# load", "excluded from", "circuit breaker") so both humans and agent
# parsers can key off them.


def overload_notice(cause: str, action: str) -> str:
    """One steering line naming an overload degradation and its cause."""
    return f"system under load ({cause}): {action}"


def breaker_exclusion_notice(backend: str, cooldown_remaining: float) -> str:
    """One steering line for a federation member tripped out of a plan."""
    return (
        f"backend {backend!r} excluded from the plan: circuit breaker open"
        f" ({max(0.0, cooldown_remaining):.1f}s until the next recovery"
        " probe); re-plan without it or retry later"
    )
