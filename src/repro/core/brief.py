"""Briefs: the natural-language side-channel attached to probes.

A brief tells the data system *why* and *how* a probe's queries should be
answered (paper Sec. 4.1): the agent's goal, its phase, accuracy needs,
relative priorities, and k-of-n completion contracts. Everything is
optional — a bare SQL string is a degenerate probe with an empty brief.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """Where the issuing agent is in its speculation arc (paper Sec. 2)."""

    METADATA_EXPLORATION = "metadata_exploration"
    SOLUTION_FORMULATION = "solution_formulation"
    VALIDATION = "validation"


#: Keyword evidence for inferring a phase from free-text goals. The probe
#: interpreter falls back to these when the brief does not state a phase.
_EXPLORATION_MARKERS = (
    "explore",
    "discover",
    "what tables",
    "which tables",
    "schema",
    "sample",
    "look around",
    "get a sense",
    "understand the data",
    "rough",
    "approximate",
    "statistics",
    "distinct values",
)
_VALIDATION_MARKERS = ("verify", "double-check", "validate", "confirm")
_SOLUTION_MARKERS = (
    "final",
    "exact",
    "answer",
    "compute the",
    "report",
    "precise",
    "solution",
)


@dataclass
class Brief:
    """Background information accompanying a probe's queries."""

    goal: str = ""
    phase: Phase | None = None
    #: Required accuracy in [0, 1]; None = let the system decide by phase.
    accuracy: float | None = None
    #: Per-query priorities (index -> weight, higher = more important).
    priorities: dict[int, float] = field(default_factory=dict)
    #: Only this many of the probe's queries need to run to completion;
    #: the system picks which (paper's "k of n" example).
    complete_k_of_n: int | None = None
    #: Soft cost budget in engine work units; the system warns when a
    #: query's estimate exceeds it and may increase approximation.
    max_cost: float | None = None
    #: Explicit QoS priority lane (``"interactive" | "standard" | "bulk"``).
    #: ``None`` (the default) lets the QoS layer derive the lane from the
    #: phase, priorities, and accuracy; stating a lane overrides that —
    #: e.g. a background sweep self-declares ``lane="bulk"`` so overload
    #: shedding degrades it first, and a latency-critical check claims
    #: ``lane="interactive"``. Ignored entirely unless QoS is enabled.
    lane: str | None = None
    #: Bounded-staleness tolerance: how many catalog write versions of lag
    #: the agent accepts on this probe's answers. Setting it lets the
    #: gateway serve the probe from a read replica under load (the
    #: response then carries an explicit staleness steering hint);
    #: ``None`` means answers always come from the primary.
    max_staleness: int | None = None
    #: Per-probe tracing opt-in: ``True`` attaches an end-to-end
    #: :class:`repro.obs.trace.Trace` to the response, ``False`` opts out
    #: even when ``REPRO_TRACE=1`` is set globally, and ``None`` (the
    #: default) defers to the environment. Tracing never changes answers.
    trace: bool | None = None
    #: Free-form extra context, passed through to sleeper agents.
    notes: str = ""

    def infer_phase(self) -> Phase:
        """The stated phase, or one inferred from goal keywords."""
        if self.phase is not None:
            return self.phase
        text = f"{self.goal} {self.notes}".lower()
        if any(marker in text for marker in _VALIDATION_MARKERS):
            return Phase.VALIDATION
        exploration_votes = sum(text.count(m) for m in _EXPLORATION_MARKERS)
        solution_votes = sum(text.count(m) for m in _SOLUTION_MARKERS)
        if exploration_votes > solution_votes:
            return Phase.METADATA_EXPLORATION
        return Phase.SOLUTION_FORMULATION

    def priority_of(self, index: int) -> float:
        return self.priorities.get(index, 1.0)
