"""Dispatch backends for the scheduler's speculative execution phase.

PR 2 gave :class:`~repro.core.scheduler.ProbeScheduler` a speculative
phase that runs each admission batch's independent engine work on a
``ThreadPoolExecutor``. On stock CPython that delivers parallelism in
name only: the engine is pure Python, so the GIL timeslices the worker
threads and the batch is no faster than the serial loop
(``bench_scheduler.py`` records ``parallel_capable: false`` on such
hosts). This module adds the **process-pool backend**: the same
speculation units — each a pure ``(plan, sample_rate, seed, catalog) ->
result`` function — execute in spawned worker processes on real cores.

Three pieces make the units portable:

* :class:`SpeculationPayload` — the picklable unit of work: the (frozen,
  memo-stripped) plan plus execution knobs. No optimizer, history, or
  cache references cross the boundary.
* **Versioned catalog snapshots** — each worker process is initialised
  once with a :class:`~repro.storage.catalog.CatalogSnapshot` and reuses
  it across batches. The pool remembers the shipped
  :meth:`~repro.storage.catalog.Catalog.version`; any write (``storage/``
  DML, ``txn/`` branch checkout, even direct table mutation) changes the
  version, and :class:`ProcessDispatcher` retires the pool and re-ships
  on next use. Workers also keep a process-local
  :class:`~repro.engine.executor.SubplanCache`, valid exactly as long as
  the snapshot (it dies with the pool).
* **Worker results** — a :class:`~repro.core.optimizer.PrecomputedExecution`
  (rows + :class:`~repro.engine.result.ExecStats` + estimate errors, or
  the engine error string) travels back for the unchanged serial replay
  to attribute in admission order.

Backend selection is ``"thread" | "process" | "auto"`` via
``SystemConfig.dispatch_backend`` or the ``REPRO_SCHEDULER_BACKEND``
environment override; ``auto`` picks the process pool exactly when
threads cannot overlap engine work (GIL enabled) and the host has more
than one core. Workers use the ``spawn`` start method unconditionally —
the serving system runs gateway/admission threads, which forked children
would inherit mid-lock.

Equivalence: engine runs are pure, so *where* they execute can never
change an answer. The scheduler's serial replay still owns every
order-sensitive effect; the differential suites run unchanged under
``REPRO_SCHEDULER_BACKEND=process`` in CI to prove rows, statuses,
history attribution, and budgets stay byte-identical.
"""

from __future__ import annotations

import os
import sys
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

from repro.core.optimizer import PrecomputedExecution
from repro.engine.columnar import ColumnarExecutor, ColumnBatch, make_executor
from repro.engine.executor import ExecContext, SubplanCache
from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.plan.logical import PlanNode
from repro.storage.catalog import Catalog, CatalogSnapshot

#: Environment override for the dispatch backend — lets CI rerun the
#: unmodified differential suites under the process pool.
BACKEND_ENV_VAR = "REPRO_SCHEDULER_BACKEND"

BACKENDS = ("thread", "process", "auto")

#: Ceiling on one speculative engine run in a worker (seconds). A wedged
#: worker must not hang serving: on timeout the dispatcher raises, the
#: scheduler retires the pool and falls back to in-process execution.
WORKER_RESULT_TIMEOUT = 120.0


def threads_can_parallelise() -> bool:
    """Can *threads* overlap pure-Python engine work on this host?

    True only on free-threaded (no-GIL) builds; on stock CPython the GIL
    serialises the engine no matter how many cores exist.
    """
    return not getattr(sys, "_is_gil_enabled", lambda: True)()


def resolve_backend(backend: str | None) -> str:
    """Normalise a backend setting to ``"thread"`` or ``"process"``.

    ``None`` falls back to the ``REPRO_SCHEDULER_BACKEND`` environment
    override, else ``"thread"`` (the seed behaviour). ``"auto"`` picks
    the process pool exactly when it can win: threads cannot parallelise
    (GIL) and the host has more than one core.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "thread"
    backend = backend.lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown dispatch backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        multicore = (os.cpu_count() or 1) > 1
        return "process" if multicore and not threads_can_parallelise() else "thread"
    return backend


@dataclass(frozen=True)
class SpeculationPayload:
    """One picklable speculative engine run: a plan plus execution knobs.

    Everything a worker needs besides the catalog (shipped separately,
    once per worker): plans are frozen dataclasses whose pickled form
    drops the fingerprint memo, and the knobs mirror
    :class:`~repro.engine.executor.ExecContext`.
    """

    plan: PlanNode
    sample_rate: float
    sample_seed: int
    #: Resolved execution engine ("row" | "columnar"). Resolved by the
    #: *parent* (env overrides must not depend on what a spawned worker
    #: inherited), so workers never consult the environment.
    engine: str = "row"
    #: Record engine-node spans in the worker and ship them back on
    #: ``PrecomputedExecution.span``. Resolved by the parent (a worker
    #: must not consult its own environment) and set only when some
    #: traced probe shares this unit — tracing-off dispatch is unchanged.
    trace: bool = False


# ---------------------------------------------------------------------------
# worker side (module-level: spawn pickles these by qualified name)
# ---------------------------------------------------------------------------

#: Per-process worker state, populated by the pool initializer: the
#: restored catalog and (when MQO is on) a process-local subplan cache.
#: Both live exactly as long as the pool — retirement on catalog version
#: bump is what keeps them from ever serving stale data.
_WORKER_STATE: dict = {}


def _worker_init(snapshot: CatalogSnapshot, use_cache: bool) -> None:
    """Pool initializer: restore the catalog snapshot once per worker."""
    _WORKER_STATE["catalog"] = Catalog.from_snapshot(snapshot)
    _WORKER_STATE["version"] = snapshot.version
    _WORKER_STATE["cache"] = SubplanCache() if use_cache else None


def _worker_run(payload: SpeculationPayload) -> PrecomputedExecution:
    """Execute one speculation unit against the worker's catalog.

    Mirrors :meth:`ProbeOptimizer.speculative_execute` exactly: pure
    engine work, engine errors captured as strings, everything else a
    real bug that should surface loudly (and break the pool).
    """
    context = ExecContext(
        sample_rate=payload.sample_rate,
        sample_seed=payload.sample_seed,
        cache=_WORKER_STATE["cache"],
    )
    executor = make_executor(_WORKER_STATE["catalog"], context, payload.engine)
    span = None
    token = None
    if payload.trace:
        # Detached subtree on this process's own monotonic clock; the
        # coordinator re-anchors it via obs_trace.reparent after unpickle.
        span = obs_trace.Span("speculation:worker")
        span.attrs["pid"] = os.getpid()
        token = obs_trace.set_current(span)
    try:
        result = executor.run(payload.plan)
    except ReproError as exc:
        return PrecomputedExecution(error=str(exc), span=span)
    finally:
        if token is not None:
            obs_trace.reset_current(token)
            span.finish()
    if isinstance(executor, ColumnarExecutor):
        # Ride home column-major: one list per column pickles smaller
        # than a tuple per row. The dispatcher unpacks before replay.
        result.rows = ColumnBatch.from_rows(result.rows, len(result.columns))
    return PrecomputedExecution(result=result, span=span)


def _worker_ping() -> tuple:
    """Warmup probe: forces the worker to spawn and restore its snapshot."""
    return _WORKER_STATE["version"]


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ProcessDispatcher:
    """Owns the scheduler's worker-process pool and its shipped snapshot.

    The pool outlives individual batches (spawn + snapshot restore are
    the expensive part; amortising them across batches is the point) and
    is retired when the catalog version moves past the shipped snapshot,
    when MQO is toggled, on :meth:`retire`, or when the dispatcher is
    garbage collected (a ``weakref.finalize`` per pool guarantees no
    leaked worker processes across a long test or serving session).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._pool: ProcessPoolExecutor | None = None
        self._shipped_version: tuple | None = None
        self._shipped_use_cache: bool | None = None
        self._finalizer: weakref.finalize | None = None
        #: Observability: pools created (== snapshots shipped) and units
        #: executed in worker processes.
        self.snapshot_ships = 0
        self.units_dispatched = 0

    # -- pool lifecycle -----------------------------------------------------

    def ensure(self, catalog: Catalog, use_cache: bool) -> ProcessPoolExecutor:
        """The live pool for ``catalog``'s current version, (re)built as
        needed: a version bump or MQO toggle retires the old pool first."""
        version = catalog.version()
        if (
            self._pool is not None
            and version == self._shipped_version
            and use_cache == self._shipped_use_cache
        ):
            return self._pool
        self.retire()
        snapshot = catalog.snapshot()
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(snapshot, use_cache),
        )
        self._pool = pool
        self._shipped_version = version
        self._shipped_use_cache = use_cache
        self._finalizer = weakref.finalize(
            self, pool.shutdown, wait=False, cancel_futures=True
        )
        self.snapshot_ships += 1
        return pool

    def retire(self) -> None:
        """Shut the pool down; the next :meth:`ensure` ships afresh."""
        pool, self._pool = self._pool, None
        self._shipped_version = None
        self._shipped_use_cache = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def prestart(self, catalog: Catalog, use_cache: bool) -> None:
        """Spawn every worker and restore its snapshot *now*.

        Serving systems call this to move the pool's cold-start cost
        (spawn + snapshot restore) out of the first batch's latency; the
        benchmark uses it to time steady-state serving honestly.
        """
        pool = self.ensure(catalog, use_cache)
        futures = [pool.submit(_worker_ping) for _ in range(self.workers)]
        for future in futures:
            future.result(timeout=WORKER_RESULT_TIMEOUT)

    # -- execution ----------------------------------------------------------

    def run(
        self, catalog: Catalog, payloads: list[SpeculationPayload], use_cache: bool
    ) -> list[PrecomputedExecution]:
        """Execute payloads on the pool; results in payload order.

        Raises on any pool-level failure (broken pool, unpicklable
        payload, timeout) — the scheduler treats every such exception as
        "this backend is unhealthy", retires the pool, and falls back to
        in-process execution, which can never change an answer.
        """
        pool = self.ensure(catalog, use_cache)
        futures = [pool.submit(_worker_run, payload) for payload in payloads]
        results = [future.result(timeout=WORKER_RESULT_TIMEOUT) for future in futures]
        for precomputed in results:
            result = precomputed.result
            if result is not None and isinstance(result.rows, ColumnBatch):
                result.rows = result.rows.to_rows()
        self.units_dispatched += len(results)
        return results
