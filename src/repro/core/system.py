"""The agent-first data system facade (paper Sec. 3, Figure 4).

``AgentFirstDataSystem`` wires every component together:

    probes ──> probe interpreter ──> satisficer ──> probe optimizer
                     │                                   │
                     ▼                                   ▼
               sleeper agents  <──────────────  shared-work cache
                     │                                   │
                     ▼                                   ▼
              steering feedback               agentic memory store

Each ``submit`` is one interaction turn: the probe's queries are
interpreted, satisficed and executed (with cross-agent work sharing and
history reuse); sleeper agents attach steering feedback; and newly-gleaned
grounding is written back to the agentic memory store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.brief import Phase
from repro.core.interpreter import InterpretedProbe, ProbeInterpreter
from repro.core.mqo import MaterializationAdvisor
from repro.core.optimizer import ProbeOptimizer
from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.core.satisfice import Satisficer
from repro.core.steering import CostAdvisor, JoinDiscovery, WhyNotDiagnoser
from repro.db import Database
from repro.db.database import ChangeEvent
from repro.engine.executor import SubplanCache
from repro.memstore import AgenticMemoryStore, ArtifactKind
from repro.plan import logical
from repro.semantic.search import SemanticSearch


@dataclass
class SystemConfig:
    """Feature switches; the ablation benches flip these."""

    enable_satisficing: bool = True
    enable_mqo: bool = True
    enable_steering: bool = True
    enable_memory: bool = True
    enable_history: bool = True
    #: Cost above which the cost advisor warns even without a brief budget.
    expensive_threshold: float = 50_000.0


class AgentFirstDataSystem:
    """Answers probes; steers agents; remembers grounding."""

    def __init__(
        self,
        db: Database,
        memory: AgenticMemoryStore | None = None,
        config: SystemConfig | None = None,
    ) -> None:
        self.db = db
        self.config = config or SystemConfig()
        self.memory = memory or AgenticMemoryStore()
        if self.config.enable_memory:
            self.memory.attach(db)
        self.search = SemanticSearch(db)
        self.interpreter = ProbeInterpreter(db)
        self.satisficer = Satisficer(enable_pruning=self.config.enable_satisficing)
        self.optimizer = ProbeOptimizer(
            db=db,
            satisficer=self.satisficer,
            cache=SubplanCache() if self.config.enable_mqo else None,
            advisor=MaterializationAdvisor(),
            enable_history=self.config.enable_history,
        )
        self.why_not = WhyNotDiagnoser(db)
        self.join_discovery = JoinDiscovery(db)
        self.cost_advisor = CostAdvisor(db, self.config.expensive_threshold)
        self.turn = 0
        db.on_change(self._on_change)

    # -- the one entry point -----------------------------------------------------

    def submit(self, probe: Probe) -> ProbeResponse:
        """Answer one probe; returns answers plus steering feedback."""
        self.turn += 1
        interpreted = self.interpreter.interpret(probe)
        response = ProbeResponse(turn=self.turn)

        # Beyond-SQL requests first: they are cheap and ground what follows.
        if probe.semantic_search:
            response.semantic_hits = self.search.search(probe.semantic_search, limit=8)
        for memory_query in probe.memory_queries:
            response.memory_hits.extend(
                self.memory.search(memory_query, principal=probe.principal)
            )
        # Implicit memory recall: the goal itself is a memory query.
        if self.config.enable_memory and probe.brief.goal:
            response.memory_hits.extend(
                self.memory.search(probe.brief.goal, principal=probe.principal, k=3)
            )

        response.outcomes = self.optimizer.execute(interpreted, self.turn)
        for outcome in response.outcomes:
            # from_history outcomes reuse an old result object: no new work.
            if outcome.executed and outcome.result is not None:
                response.rows_processed += outcome.result.stats.rows_processed
                response.cache_hits += outcome.result.stats.cache_hits

        if self.config.enable_steering:
            response.steering = self._steer(probe, interpreted, response)
        if self.config.enable_memory:
            self._remember(probe, interpreted, response)
        return response

    # -- steering ---------------------------------------------------------------------

    def _steer(
        self,
        probe: Probe,
        interpreted: InterpretedProbe,
        response: ProbeResponse,
    ) -> list[str]:
        feedback: list[str] = []

        # Cost estimates and budget warnings (pre-execution knowledge,
        # surfaced with the response).
        for query in interpreted.executable():
            feedback.extend(
                self.cost_advisor.pre_execution_feedback(
                    probe.agent_id,
                    query.estimated_cost,
                    probe.brief.max_cost,
                    query.sql,
                )
            )

        # Why-not provenance for empty exact results (a 1-row aggregate of
        # zeros/NULLs counts as empty: COUNT(*) over no matching rows).
        def _looks_empty(result) -> bool:
            if result.row_count == 0:
                return True
            if result.row_count == 1 and all(
                value in (0, None) for value in result.rows[0]
            ):
                return True
            return False

        for outcome, query in zip(response.outcomes, interpreted.queries):
            if (
                outcome.status == "ok"
                and outcome.result is not None
                and _looks_empty(outcome.result)
                and query.plan is not None
            ):
                for finding in self.why_not.diagnose(query.plan):
                    feedback.append(f"empty result explained: {finding.message()}")

        # Related tables during exploration.
        if interpreted.phase is Phase.METADATA_EXPLORATION:
            for table in self._tables_touched(interpreted)[:2]:
                for suggestion in self.join_discovery.related_tables(table, limit=2):
                    feedback.append(f"related table: {suggestion.message()}")

        # Similar-query pointers (inter-probe novelty signal).
        for outcome in response.outcomes:
            if outcome.similar_to_turn is not None and outcome.similar_to_turn < self.turn:
                rows = outcome.result.row_count if outcome.result is not None else 0
                feedback.append(
                    f"a query equivalent to {outcome.sql[:50]!r} was answered at"
                    f" turn {outcome.similar_to_turn}; its {rows}-row result is"
                    " reusable (only output order differs)"
                )

        # Batching hints from the sequential-probe pattern detector.
        feedback.extend(
            self.cost_advisor.observe_probe(
                probe.agent_id,
                self._tables_touched(interpreted),
                len(interpreted.executable()),
            )
        )
        return _dedupe(feedback)

    # -- memory write-back ---------------------------------------------------------------

    def _remember(
        self,
        probe: Probe,
        interpreted: InterpretedProbe,
        response: ProbeResponse,
    ) -> None:
        # Join hints discovered by steering become durable grounding.
        for hint in response.steering:
            if hint.startswith("related table: "):
                detail = hint.removeprefix("related table: ")
                table = detail.split(".", 1)[0]
                self.memory.remember(
                    ArtifactKind.JOIN_HINT,
                    (table,),
                    detail,
                    principal=probe.principal,
                    shared=True,
                    data_sensitive=False,
                    turn=self.turn,
                )
            if hint.startswith("empty result explained: "):
                detail = hint.removeprefix("empty result explained: ")
                tables = self._tables_touched(interpreted)
                if tables:
                    self.memory.remember(
                        ArtifactKind.COLUMN_ENCODING,
                        (tables[0],),
                        detail,
                        principal=probe.principal,
                        shared=True,
                        data_sensitive=True,
                        turn=self.turn,
                    )
        # Exact solution-phase results are reusable partial solutions.
        if interpreted.phase is not Phase.METADATA_EXPLORATION:
            for outcome in response.outcomes:
                if outcome.status == "ok" and outcome.result is not None:
                    tables = self._tables_touched(interpreted)
                    if not tables:
                        continue
                    self.memory.remember(
                        ArtifactKind.PROBE_RESULT,
                        (tables[0], f"turn{self.turn}q{hash(outcome.sql) & 0xffff}"),
                        f"{probe.brief.goal or 'query'}: {outcome.sql}"
                        f" -> {outcome.result.row_count} rows",
                        principal=probe.principal,
                        shared=True,
                        depends_on=tuple(tables),
                        turn=self.turn,
                    )

    # -- plumbing ---------------------------------------------------------------------------

    def _tables_touched(self, interpreted: InterpretedProbe) -> list[str]:
        tables: list[str] = []
        for query in interpreted.queries:
            if query.plan is None:
                continue
            for node in query.plan.walk():
                if isinstance(node, (logical.Scan, logical.IndexScan)):
                    if node.table not in tables:
                        tables.append(node.table)
        return tables

    def _on_change(self, event: ChangeEvent) -> None:
        if event.kind in ("insert", "update", "delete", "create", "drop"):
            self.optimizer.invalidate()

    # -- reporting ---------------------------------------------------------------------------

    def materialization_suggestions(self) -> list[tuple[str, int, str]]:
        return self.optimizer.advisor.suggestions()


def _dedupe(items: list[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
