"""The agent-first data system facade (paper Sec. 3, Figure 4).

``AgentFirstDataSystem`` wires every component together. The serving unit
is the *admission window*: agents open sessions and stream probes in, and
the gateway's admission loop coalesces everything in flight — across all
sessions — into windows served as one batch. Callers who already hold a
batch use ``submit_many`` (a one-window shim); ``submit`` is the
degenerate window of one.

    agent swarm ──> session.submit(probe) ──────> ProbeTicket
        │                    │              (result()/done()/cancel(),
        │                    ▼               await session.asubmit(...))
        │              QoS layer (REPRO_QOS / SystemConfig.enable_qos)
        │               lanes: interactive > standard > bulk (from Brief)
        │               token buckets per principal; watermark shedding:
        │               bulk probes degrade (sample cap / stale replica)
        │               with an explicit "system under load" steering
        │               line — degrade, don't drop; inert when unloaded
        │                    │
        │                    ▼
        │            probe gateway ── admission loop: close the window at
        │                    │        max_batch pending or max_wait elapsed
        ▼                    ▼
    submit_many ────> admission window
    (one-window shim)        │
                             ▼
                      probe scheduler ──────────┐  admission, fairness,
                             │                  │  cross-agent dedup
                             ▼                  │
            dispatch backend (speculative phase)│
             thread pool  │  process pool       │
             (shared GIL) │  (spawned workers,  │
                          │   versioned catalog │
                          │   snapshots)        │
                             │                  │
                             ▼                  │
           execution engine (REPRO_ENGINE / SystemConfig.engine)
             row: tuple-at-a-time │ columnar: ColumnBatch kernels
             (seed behaviour)     │ (vectorized, per-node row fallback,
                          │         byte-identical rows/stats/steering)
                             │                  │
                             ▼                  │
    probe interpreter ──> satisficer ──> probe optimizer
                     │                          │
                     ▼                          ▼
               sleeper agents  <───────  shared-work cache (batch-wide)
                     │                          │
                     ▼                          ▼
              steering feedback         agentic memory store

    maintenance runtime (idle windows; REPRO_MAINTENANCE / SystemConfig)
        gateway idle ──> serve lock ──┬─> view materializer ──> ViewScan
        (no probes        (preempted  ├─> auto-indexer ──> aux IndexScan
         in flight)        by any     ├─> statistics refresher   rewrites
                           arrival)   └─> subplan-cache pre-warmer

    durability layer (REPRO_WAL / Database.attach_wal; txn/wal.py)
        catalog writes ──> write-ahead log (append BEFORE mutate)
        admission windows bracketed: window_begin … serve_state commit
        periodic checkpoints (Catalog.snapshot + serve state) prune the log
        crash ──> AgentFirstDataSystem.recover(dir): checkpoint + replay,
                  exact data_version_tuple AND history attribution restored
        log ──> read replicas (REPRO_REPLICAS / SystemConfig.read_replicas):
                gateway spills exact read probes under load, tagging each
                response "served by read replica: staleness ≤ N versions"
                and never exceeding the brief's max_staleness tolerance

    shard tier (REPRO_SHARDS / repro.shard.ShardedSystem; scale-out)
        agent swarm ──> ShardedSystem.session/submit (same surface)
                │
                ▼
        shard router ── hash ring + pins: principal/agent -> home shard;
                │       partition map: tenant-pinned probes prune to the
                │       owner shard (no scatter, no extra steering)
                ├─> matchmaker ── shards advertise capacity (pending,
                │       windows_served/queue_depth_peak, QoS watermark,
                │       replicas) and *pull* queued work; tripped shards
                │       pull nothing; degrade-don't-drop force-assignment
                └─> scatter-gather ── cross-partition probes split into
                        per-shard partials (partial aggregates; AVG as
                        SUM+COUNT), merged at the router, steering names
                        the shards consulted
        each shard = a complete AgentFirstDataSystem over its own
        catalog slice (CatalogSnapshot is the shard-state wire format
        for spin-up and add_shard rebalancing); shards=1 passes straight
        through to one system over the source database, byte-identical

    observability layer (repro.obs; REPRO_TRACE / Brief.trace / slow log)
        probe trace ── span tree following one probe end-to-end:
                probe ─┬─> gateway:queued/window ──> qos:classify/shed
                       ├─> scheduler:batch ──> speculate:unit │
                       │      decision:qN ──> node:* (rows, cache,
                       │      kernel vs fallback; process workers ship
                       │      speculation:worker subtrees, re-parented
                       │      onto the coordinator clock)
                       └─> wal:commit │ replica:serve │ scatter:shardN
                opt-in per probe (Brief.trace) or global (REPRO_TRACE=1);
                attached as response.trace; export: trace.to_chrome()
                (Perfetto / about:tracing); answers never change
        metrics registry ── every component publishes Counter/Gauge/
                Histogram series into one registry per system; legacy
                stats() dicts read back out of it unchanged;
                system.metrics() / ShardedSystem.metrics() (per-shard +
                "router" labels) render JSON or Prometheus text
        slow-probe log ── REPRO_SLOW_PROBE_MS / SystemConfig.slow_probe_ms
                ring-buffers offenders WITH their traces (threshold
                implies tracing), WARNING-logged

Each probe in a window is one interaction turn: its queries are
interpreted, satisficed and executed (with cross-agent work sharing and
history reuse); the scheduler dispatches round-robin across agents so no
probe starves behind another, and shares every duplicated sub-plan
batch-wide; sleeper agents attach steering feedback (including "N other
agents asked an equivalent query this turn"); and newly-gleaned grounding
is written back to the agentic memory store. Window boundaries never
change an answer: rows and statuses are byte-identical to serial
submission in admission order, however arrivals happen to batch up.

Between windows, the sleeper-agent maintenance runtime converts advice
into artifacts: recurring subplans become version-stamped materialized
views served through execution-time ViewScan rewrites, mined
equality/range predicates become auxiliary (planner-invisible) indexes,
statistics are re-derived after write bursts, and evicted hot subplan
cache entries are re-installed from views. Every artifact is validated
through ``Catalog.version()``/``ChangeEvent`` staleness machinery, so a
maintenance-on run stays byte-identical to a maintenance-off run — just
faster on repeated workloads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.brief import Brief, Phase
from repro.core.gateway import AgentSession, ProbeGateway
from repro.core.interpreter import InterpretedProbe, ProbeInterpreter
from repro.core.mqo import MaterializationAdvisor, MaterializationSuggestion
from repro.core.optimizer import ProbeOptimizer
from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.core.satisfice import Satisficer
from repro.core.scheduler import ProbeScheduler, ScheduledProbe
from repro.core.steering import CostAdvisor, JoinDiscovery, WhyNotDiagnoser
from repro.db import Database
from repro.db.database import ChangeEvent
from repro.engine.executor import SubplanCache
from repro.maintenance import MaintenanceConfig, MaintenanceRuntime
from repro.memstore import AgenticMemoryStore, ArtifactKind
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.slowlog import SlowProbeEntry, SlowProbeLog, resolve_slow_probe_ms
from repro.qos import QosConfig, QosController, resolve_qos_enabled
from repro.plan import logical
from repro.semantic.search import SemanticSearch
from repro.util.hashing import stable_hash_int


@dataclass
class SystemConfig:
    """Feature switches; the ablation benches flip these."""

    enable_satisficing: bool = True
    enable_mqo: bool = True
    enable_steering: bool = True
    enable_memory: bool = True
    enable_history: bool = True
    #: Cost above which the cost advisor warns even without a brief budget.
    expensive_threshold: float = 50_000.0
    #: Worker threads for the scheduler's speculative execution pool.
    #: ``None`` -> the ``REPRO_SCHEDULER_WORKERS`` env override, else
    #: ``min(8, os.cpu_count())``; ``1`` keeps dispatch fully serial.
    workers: int | None = None
    #: Execution substrate for the speculative phase: ``"thread"`` (shared
    #: catalog, GIL-bound on stock CPython), ``"process"`` (spawned
    #: workers with versioned catalog snapshots — real cores for
    #: pure-Python engine work), or ``"auto"`` (process exactly when
    #: threads cannot parallelise on a multi-core host). ``None`` -> the
    #: ``REPRO_SCHEDULER_BACKEND`` env override, else ``"thread"``.
    dispatch_backend: str | None = None
    #: Streaming admission window knobs: the gateway closes a window when
    #: ``gateway_max_batch`` probes are pending or ``gateway_max_wait``
    #: seconds have elapsed since the oldest arrival. ``None`` -> the
    #: ``REPRO_GATEWAY_MAX_BATCH`` / ``REPRO_GATEWAY_MAX_WAIT`` env
    #: overrides, else 64 probes / 0.01 s.
    gateway_max_batch: int | None = None
    gateway_max_wait: float | None = None
    #: Sleeper-agent maintenance runtime: idle-window view
    #: materialization, auto-indexing, statistics refresh, and cache
    #: pre-warming. ``None`` -> the ``REPRO_MAINTENANCE`` env override,
    #: else off. Answers are byte-identical either way; only the work
    #: (and wall-clock) changes.
    enable_maintenance: bool | None = None
    #: Detailed maintenance knobs (thresholds, view budget); ``None``
    #: uses :class:`~repro.maintenance.MaintenanceConfig` defaults.
    maintenance: MaintenanceConfig | None = None
    #: Overload control and agent QoS: priority lanes, per-principal
    #: token buckets, and degrade-don't-drop load shedding on the
    #: streaming gateway. ``None`` -> the ``REPRO_QOS`` env override,
    #: else off. Watermark-gated: an unloaded QoS-on system serves
    #: byte-identically to a QoS-off system.
    enable_qos: bool | None = None
    #: Detailed QoS knobs (watermarks, shed rates, bucket sizes, breaker
    #: thresholds); ``None`` uses :class:`~repro.qos.QosConfig` defaults.
    qos: QosConfig | None = None
    #: In-process read replicas fed from the write-ahead log (requires a
    #: WAL-attached database). ``None`` -> the ``REPRO_REPLICAS`` env
    #: override, else 0. Replicas serve read-only exact probes whose
    #: brief declares a ``max_staleness`` tolerance; everything else goes
    #: through the primary.
    read_replicas: int | None = None
    #: Execution engine for every engine run — serial, speculative
    #: (thread or process pool), replica-served, and maintenance view
    #: builds: ``"row"`` (tuple-at-a-time, the seed behaviour),
    #: ``"columnar"`` (vectorized :class:`~repro.engine.ColumnBatch`
    #: kernels with per-node row fallback), or ``"auto"`` (columnar).
    #: ``None`` -> the ``REPRO_ENGINE`` env override, else ``"row"``.
    #: Engines are proven byte-identical on rows, statuses, steering,
    #: history attribution, and work accounting; only wall-clock changes.
    engine: str | None = None
    #: Slow-probe threshold in milliseconds: served probes whose
    #: end-to-end trace exceeds it land in ``system.slow_probes`` (a ring
    #: buffer, WARNING-logged) with the full trace attached. ``None`` ->
    #: the ``REPRO_SLOW_PROBE_MS`` env override, else off. Setting a
    #: threshold implies tracing for every probe that does not opt out.
    slow_probe_ms: float | None = None


class AgentFirstDataSystem:
    """Answers probes; steers agents; remembers grounding."""

    def __init__(
        self,
        db: Database,
        memory: AgenticMemoryStore | None = None,
        config: SystemConfig | None = None,
        workers: int | None = None,
    ) -> None:
        self.db = db
        self.config = config or SystemConfig()
        # The override must not write through to the caller's (possibly
        # shared) SystemConfig object.
        scheduler_workers = workers if workers is not None else self.config.workers
        self.memory = memory or AgenticMemoryStore()
        if self.config.enable_memory:
            self.memory.attach(db)
        #: One metrics registry per system: every component publishes its
        #: counters here (the legacy ``stats()`` dicts read back out of
        #: it), and ``system.metrics()`` snapshots the whole thing.
        self.metrics_registry = MetricsRegistry()
        #: Ring buffer of slow-probe entries (traces attached) once a
        #: threshold is configured; always present so callers can poll.
        self.slow_probes = SlowProbeLog()
        self._slow_probe_ms = resolve_slow_probe_ms(self.config.slow_probe_ms)
        self.search = SemanticSearch(db)
        self.interpreter = ProbeInterpreter(db)
        self.satisficer = Satisficer(enable_pruning=self.config.enable_satisficing)
        self.optimizer = ProbeOptimizer(
            db=db,
            satisficer=self.satisficer,
            cache=SubplanCache() if self.config.enable_mqo else None,
            advisor=MaterializationAdvisor(),
            enable_history=self.config.enable_history,
            engine=self.config.engine,
        )
        self.why_not = WhyNotDiagnoser(db)
        self.join_discovery = JoinDiscovery(db)
        self.cost_advisor = CostAdvisor(db, self.config.expensive_threshold)
        self.scheduler = ProbeScheduler(
            interpreter=self.interpreter,
            optimizer=self.optimizer,
            workers=scheduler_workers,
            backend=self.config.dispatch_backend,
            registry=self.metrics_registry,
        )
        self.qos = (
            QosController(self.config.qos, registry=self.metrics_registry)
            if resolve_qos_enabled(self.config.enable_qos)
            else None
        )
        self.gateway = ProbeGateway(
            self,
            max_batch=self.config.gateway_max_batch,
            max_wait=self.config.gateway_max_wait,
            qos=self.qos,
            registry=self.metrics_registry,
        )
        self.maintenance = MaintenanceRuntime(
            self,
            config=self.config.maintenance,
            enabled=self.config.enable_maintenance,
            registry=self.metrics_registry,
        )
        if self.maintenance.enabled:
            self.maintenance.attach()
        self.turn = 0
        #: Guards ``turn``: windows reserve their turn range up front, and
        #: replica-served responses draw turns concurrently.
        self._turn_lock = threading.Lock()
        self.replicas = None
        wal = db.catalog.wal
        if wal is not None:
            # Local import: repro.txn.replica needs repro.core.probe, so a
            # module-level import here would close an import cycle
            # through the repro.core package __init__.
            from repro.txn.replica import ReplicaPool, resolve_replica_count

            # Journal serve-state deltas so each window's commit record
            # carries its surviving history additions, and let checkpoints
            # embed the full serve state.
            self.optimizer.enable_wal_journal()
            wal.state_provider = lambda: self.optimizer.serve_state_snapshot(
                self.turn
            )
            if db.recovered_serve is not None:
                self.turn = db.recovered_serve.turn
                self.optimizer.restore_serve_state(db.recovered_serve)
            replica_count = resolve_replica_count(self.config.read_replicas)
            if replica_count > 0:
                self.replicas = ReplicaPool(
                    wal,
                    replica_count,
                    turn_source=self._next_replica_turn,
                    engine=self.config.engine,
                    registry=self.metrics_registry,
                )
        self._node_latency = self.metrics_registry.histogram(
            "repro_engine_node_latency_ms",
            "Per-plan-node execution latency (traced probes only)",
            labelnames=("node", "engine"),
        )
        self._register_engine_collectors()
        db.on_change(self._on_change)

    def _register_engine_collectors(self) -> None:
        """Publish engine-level metrics as snapshot-time collectors.

        Occupancies and hit ratios are derived from live structures when
        ``metrics()`` is called — zero hot-path bookkeeping, which is how
        the <2% tracing-off overhead contract stays cheap to honour.
        """
        from repro.engine.columnar import KERNEL_MEMO_STATS, kernel_memo_occupancy
        from repro.engine.executor import EXPR_MEMO_STATS, expr_memo_occupancy

        registry = self.metrics_registry
        cache = self.optimizer.cache
        gauges = {
            name: registry.gauge(f"repro_engine_{name}", help)
            for name, help in (
                ("subplan_cache_entries", "Subplan cache occupancy"),
                ("subplan_cache_hits", "Subplan cache lifetime hits"),
                ("subplan_cache_misses", "Subplan cache lifetime misses"),
                ("subplan_cache_evictions", "Subplan cache lifetime evictions"),
                ("subplan_cache_hit_ratio", "hits / (hits + misses), 0 when idle"),
                ("expr_memo_entries", "Compiled-expression memo occupancy"),
                ("expr_memo_compilations", "Expression compilations (process-wide)"),
                ("expr_memo_hits", "Expression memo hits (process-wide)"),
                ("kernel_memo_entries", "Columnar kernel memo occupancy"),
                ("kernel_memo_builds", "Kernel builds (process-wide)"),
                ("kernel_memo_hits", "Kernel memo hits (process-wide)"),
                ("kernel_memo_fallbacks", "Kernel runs resolved by row fallback"),
                ("kernel_memo_unvectorized", "Nodes executed on the row path"),
            )
        }

        def collect() -> None:
            if cache is not None:
                hits, misses, evictions = cache.counters()
                gauges["subplan_cache_entries"].set(len(cache))
                gauges["subplan_cache_hits"].set(hits)
                gauges["subplan_cache_misses"].set(misses)
                gauges["subplan_cache_evictions"].set(evictions)
                total = hits + misses
                gauges["subplan_cache_hit_ratio"].set(hits / total if total else 0.0)
            gauges["expr_memo_entries"].set(expr_memo_occupancy())
            gauges["expr_memo_compilations"].set(EXPR_MEMO_STATS.compilations)
            gauges["expr_memo_hits"].set(EXPR_MEMO_STATS.hits)
            gauges["kernel_memo_entries"].set(kernel_memo_occupancy())
            gauges["kernel_memo_builds"].set(KERNEL_MEMO_STATS.builds)
            gauges["kernel_memo_hits"].set(KERNEL_MEMO_STATS.hits)
            gauges["kernel_memo_fallbacks"].set(KERNEL_MEMO_STATS.fallbacks)
            gauges["kernel_memo_unvectorized"].set(KERNEL_MEMO_STATS.unvectorized)

        registry.add_collector(collect)

    def metrics(self) -> MetricsSnapshot:
        """One snapshot of every metric this system publishes.

        Render with ``.as_dict()`` / ``.to_json()`` /
        ``.to_prometheus_text()``; the legacy per-component ``stats()``
        dicts remain available and read from the same registry.
        """
        return self.metrics_registry.snapshot()

    # -- the entry points -----------------------------------------------------

    def session(
        self,
        agent_id: str | None = None,
        principal: str | None = None,
        defaults: Brief | None = None,
    ) -> AgentSession:
        """Open an agent session on the streaming admission gateway.

        ``session.submit(probe)`` returns a :class:`ProbeTicket`
        immediately; the gateway coalesces in-flight probes across all
        sessions into admission windows, so cross-agent sharing happens
        between agents that never coordinated. The session's identity and
        brief ``defaults`` fill any fields the probe leaves unset, and the
        session accumulates turn/query/row/cost accounting.
        """
        return AgentSession(
            self.gateway, agent_id=agent_id, principal=principal, defaults=defaults
        )

    def submit(self, probe: Probe) -> ProbeResponse:
        """Answer one probe; returns answers plus steering feedback.

        A window of one: the full serving path is the gateway's admission
        loop (``session``/``submit_many``).
        """
        return self.submit_many([probe])[0]

    def submit_many(self, probes: Sequence[Probe]) -> list[ProbeResponse]:
        """Answer a caller-assembled admission window of probes.

        A thin synchronous shim over a one-window gateway: the whole list
        is served as a single admission window, exactly as if the probes
        had streamed in together. All probes are interpreted up front; the
        scheduler runs the window's independent engine work concurrently
        on its worker pool, then replays dispatch round-robin across
        agents through one batch-shared subplan cache, so every
        duplicated subtree materialises once. Per-query rows and statuses
        are byte-identical to submitting the probes serially — at any
        worker count; the engine work is not — duplicated work collapses,
        and independent work overlaps in wall-clock.
        """
        if not probes:
            return []
        return self.gateway.serve_window(list(probes))

    def _serve_batch(
        self, probes: Sequence[Probe], degradations: list | None = None
    ) -> list[ProbeResponse]:
        """Serve one admission window (gateway-internal; callers hold the
        gateway's serve lock, which serialises window order).

        ``degradations`` is the QoS layer's probe-aligned shedding plan
        for an overloaded window (``None`` everywhere else)."""
        # Reserve the window's whole turn range up front: replica-served
        # responses draw turns concurrently and must never collide.
        with self._turn_lock:
            first_turn = self.turn + 1
            self.turn += len(probes)
        # The direct paths (submit_many, serve_window) reach here without
        # passing gateway.submit: attach traces to probes that want them.
        # Gateway-streamed probes already carry theirs (no-op re-entry).
        any_traced = False
        for probe in probes:
            if obs_trace.ensure_probe_trace(probe) is not None:
                any_traced = True
        wal = self.db.catalog.wal
        wal_bounds: tuple[float, float] | None = None
        if wal is not None:
            # Bracket the window in the log. A crash mid-window leaves a
            # window_begin without its serve_state commit; recovery
            # truncates it (the responses never reached callers), so the
            # recovered system resumes at the last served boundary.
            wal.begin_window()
        try:
            batch = self.scheduler.run_batch(
                list(probes), first_turn, degradations=degradations
            )

            # Post-processing (beyond-SQL, steering, memory) runs per probe
            # in admission order, preserving serial visibility: a later
            # probe's memory recall sees what earlier probes wrote back.
            responses = []
            for scheduled in batch.probes:
                response = self._finish_probe(scheduled)
                response.sharing = batch.report
                responses.append(response)
        finally:
            if wal is not None:
                # Commit even on the exception path: any catalog writes
                # the window performed are already logged and live.
                commit_start = time.perf_counter()
                wal.commit_window(self._wal_serve_delta())
                if any_traced:
                    wal_bounds = (commit_start, time.perf_counter())
        if wal is not None and wal.checkpoint_due():
            self.db.checkpoint()
        if any_traced:
            self._finalize_traces(probes, responses, wal_bounds)
        return responses

    def _finalize_traces(
        self,
        probes: Sequence[Probe],
        responses: list[ProbeResponse],
        wal_bounds: tuple[float, float] | None,
    ) -> None:
        """Close out the window's traces: the shared WAL-commit span is
        attached to every traced probe, the root is finished, per-node
        latency histograms are fed, and slow probes land in the ring
        buffer (with their traces) at WARNING."""
        for probe, response in zip(probes, responses):
            trace = obs_trace.probe_trace(probe)
            if trace is None or trace.finished:
                continue
            if wal_bounds is not None:
                trace.root.child("wal:commit", start=wal_bounds[0]).finish(
                    wal_bounds[1]
                )
            trace.finish()
            response.trace = trace
            for span in trace.spans():
                if span.name.startswith("node:") and span.end is not None:
                    self._node_latency.observe(
                        span.duration_ms,
                        node=span.name[len("node:"):],
                        engine=span.attrs.get("engine", "row"),
                    )
            threshold = self._slow_probe_ms
            if threshold is not None and trace.duration_ms >= threshold:
                self.slow_probes.record(
                    SlowProbeEntry(
                        agent_id=probe.agent_id,
                        turn=response.turn,
                        duration_ms=trace.duration_ms,
                        threshold_ms=threshold,
                        trace=trace,
                    )
                )

    def _wal_serve_delta(self) -> dict:
        """The serve-state delta one window's commit record carries."""
        history, lenient = self.optimizer.drain_wal_journal()
        return {
            "turn": self.turn,
            "history": history,
            "lenient": lenient,
            "advisor": self.optimizer.advisor.drain_wal_delta(),
        }

    def _next_replica_turn(self) -> int:
        """Draw one turn number for a replica-served response."""
        with self._turn_lock:
            self.turn += 1
            return self.turn

    def _finish_probe(self, scheduled: ScheduledProbe) -> ProbeResponse:
        probe = scheduled.probe
        interpreted = scheduled.interpreted
        response = ProbeResponse(turn=scheduled.turn, outcomes=scheduled.outcomes)

        # Beyond-SQL requests: cheap grounding attached to the response.
        if probe.semantic_search:
            response.semantic_hits = self.search.search(probe.semantic_search, limit=8)
        for memory_query in probe.memory_queries:
            response.memory_hits.extend(
                self.memory.search(memory_query, principal=probe.principal)
            )
        # Implicit memory recall: the goal itself is a memory query.
        if self.config.enable_memory and probe.brief.goal:
            response.memory_hits.extend(
                self.memory.search(probe.brief.goal, principal=probe.principal, k=3)
            )

        for outcome in response.outcomes:
            # from_history outcomes reuse an old result object: no new work.
            if outcome.executed and outcome.result is not None:
                response.rows_processed += outcome.result.stats.rows_processed
                response.cache_hits += outcome.result.stats.cache_hits

        if self.config.enable_steering:
            response.steering = self._steer(
                probe, interpreted, response, batch_hints=scheduled.hints
            )
        # QoS degradation notices attach unconditionally — even on
        # steering-off systems (e.g. shared_serving_system): an agent must
        # always be told when overload changed the quality of its answer.
        if scheduled.qos_notes:
            response.steering.extend(scheduled.qos_notes)
        if self.config.enable_memory:
            self._remember(probe, interpreted, response)
        return response

    # -- steering ---------------------------------------------------------------------

    def _steer(
        self,
        probe: Probe,
        interpreted: InterpretedProbe,
        response: ProbeResponse,
        batch_hints: list[str] | None = None,
    ) -> list[str]:
        feedback: list[str] = []

        # Cost estimates and budget warnings (pre-execution knowledge,
        # surfaced with the response).
        for query in interpreted.executable():
            feedback.extend(
                self.cost_advisor.pre_execution_feedback(
                    probe.agent_id,
                    query.estimated_cost,
                    probe.brief.max_cost,
                    query.sql,
                )
            )

        # Why-not provenance for empty exact results (a 1-row aggregate of
        # zeros/NULLs counts as empty: COUNT(*) over no matching rows).
        def _looks_empty(result) -> bool:
            if result.row_count == 0:
                return True
            if result.row_count == 1 and all(
                value in (0, None) for value in result.rows[0]
            ):
                return True
            return False

        for outcome, query in zip(response.outcomes, interpreted.queries):
            if (
                outcome.status == "ok"
                and outcome.result is not None
                and _looks_empty(outcome.result)
                and query.plan is not None
            ):
                for finding in self.why_not.diagnose(query.plan):
                    feedback.append(f"empty result explained: {finding.message()}")

        # Related tables during exploration.
        if interpreted.phase is Phase.METADATA_EXPLORATION:
            for table in self._tables_touched(interpreted)[:2]:
                for suggestion in self.join_discovery.related_tables(table, limit=2):
                    feedback.append(f"related table: {suggestion.message()}")

        # Similar-query pointers (inter-probe novelty signal).
        for outcome in response.outcomes:
            if outcome.similar_to_turn is not None and outcome.similar_to_turn < response.turn:
                rows = outcome.result.row_count if outcome.result is not None else 0
                feedback.append(
                    f"a query equivalent to {outcome.sql[:50]!r} was answered at"
                    f" turn {outcome.similar_to_turn}; its {rows}-row result is"
                    " reusable (only output order differs)"
                )

        # Batching hints from the sequential-probe pattern detector.
        feedback.extend(
            self.cost_advisor.observe_probe(
                probe.agent_id,
                self._tables_touched(interpreted),
                len(interpreted.executable()),
            )
        )

        # Batch-level hints from the scheduler: cross-agent equivalence and
        # budget-fairness feedback ("N other agents asked this too").
        if batch_hints:
            feedback.extend(batch_hints)

        # Sleeper-agent provenance: when a query was answered through a
        # materialized view or an auto-built index, say so — field agents
        # should learn why repeats of this shape come back fast.
        if self.maintenance.enabled:
            for outcome, query in zip(response.outcomes, interpreted.queries):
                if outcome.executed and outcome.sample_rate >= 1.0:
                    feedback.extend(self.maintenance.serving_notes(query.plan))
        return _dedupe(feedback)

    # -- memory write-back ---------------------------------------------------------------

    def _remember(
        self,
        probe: Probe,
        interpreted: InterpretedProbe,
        response: ProbeResponse,
    ) -> None:
        # Join hints discovered by steering become durable grounding.
        for hint in response.steering:
            if hint.startswith("related table: "):
                detail = hint.removeprefix("related table: ")
                table = detail.split(".", 1)[0]
                self.memory.remember(
                    ArtifactKind.JOIN_HINT,
                    (table,),
                    detail,
                    principal=probe.principal,
                    shared=True,
                    data_sensitive=False,
                    turn=response.turn,
                )
            if hint.startswith("empty result explained: "):
                detail = hint.removeprefix("empty result explained: ")
                tables = self._tables_touched(interpreted)
                if tables:
                    self.memory.remember(
                        ArtifactKind.COLUMN_ENCODING,
                        (tables[0],),
                        detail,
                        principal=probe.principal,
                        shared=True,
                        data_sensitive=True,
                        turn=response.turn,
                    )
        # Exact solution-phase results are reusable partial solutions.
        if interpreted.phase is not Phase.METADATA_EXPLORATION:
            for outcome in response.outcomes:
                if outcome.status == "ok" and outcome.result is not None:
                    tables = self._tables_touched(interpreted)
                    if not tables:
                        continue
                    self.memory.remember(
                        ArtifactKind.PROBE_RESULT,
                        # Keyed by a process-stable digest: python's builtin
                        # ``hash`` is salted per run (PYTHONHASHSEED) and
                        # would scatter keys across processes.
                        (
                            tables[0],
                            f"turn{response.turn}q{stable_hash_int(outcome.sql, 16):04x}",
                        ),
                        f"{probe.brief.goal or 'query'}: {outcome.sql}"
                        f" -> {outcome.result.row_count} rows",
                        principal=probe.principal,
                        shared=True,
                        depends_on=tuple(tables),
                        turn=response.turn,
                    )

    # -- plumbing ---------------------------------------------------------------------------

    def _tables_touched(self, interpreted: InterpretedProbe) -> list[str]:
        tables: list[str] = []
        for query in interpreted.queries:
            if query.plan is None:
                continue
            for node in query.plan.walk():
                if isinstance(node, (logical.Scan, logical.IndexScan)):
                    if node.table not in tables:
                        tables.append(node.table)
        return tables

    def _on_change(self, event: ChangeEvent) -> None:
        if event.kind in ("insert", "update", "delete", "create", "drop"):
            # Journal the history wipe: recovery must clear its shadow
            # history at exactly this point in the replay. (Raw catalog
            # records cannot stand in — information-schema refreshes drop
            # and register tables without publishing a change.)
            wal = self.db.catalog.wal
            if wal is not None:
                wal.log_invalidation()
            self.optimizer.invalidate()
            # Worker-process snapshots are now stale too. The dispatcher
            # would notice on next use (it re-checks the catalog version);
            # retiring eagerly just frees the stale workers sooner.
            self.scheduler.invalidate_backend()
            # Maintenance artifacts built against the old data retire
            # (views eagerly dropped; the table queues for a stats refresh).
            self.maintenance.observe_change(event)

    # -- lifecycle ----------------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: str,
        config: SystemConfig | None = None,
        memory: AgenticMemoryStore | None = None,
        workers: int | None = None,
        name: str = "db",
    ) -> "AgentFirstDataSystem":
        """Rebuild a serving system from a WAL directory after a crash.

        Restores the database to its exact pre-crash version (rows, row
        ids, every counter) *and* the serving state: the turn counter,
        the answered-before history (so a repeated query still comes back
        ``from_history`` with its original "answered at turn N (agent
        X)" attribution), and the materialization advisor's demand
        counts. The log stays attached; serving continues appending to
        it.
        """
        db = Database.recover(directory, name=name)
        return cls(db, memory=memory, config=config, workers=workers)

    def prestart(self) -> str:
        """Warm the serving path; returns the resolved dispatch backend.

        For the process backend this spawns the worker pool and ships the
        catalog snapshot now instead of inside the first batch's serving
        latency; a no-op for threads. The lifecycle pair of
        :meth:`close`.
        """
        return self.scheduler.prestart()

    def close(self) -> None:
        """Release serving resources: the gateway's admission loop, the
        maintenance runtime's idle loop, and the scheduler's dispatch
        backend (worker processes, if any). Idempotent;
        ``submit``/``submit_many`` keep working after close — only streamed
        submission (``session.submit``) requires a live gateway."""
        self.gateway.close()
        self.maintenance.stop()
        self.scheduler.close()

    def __enter__(self) -> "AgentFirstDataSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting ---------------------------------------------------------------------------

    def materialization_suggestions(self) -> list[MaterializationSuggestion]:
        """The advisor's materialization advice, ready for an agent to read.

        Deduplicated by lenient fingerprint (the advisor counts each
        recurring subplan once however many turns demanded it), sorted by
        (occurrences, subtree size) descending, and flagged with whether
        the sleeper-agent maintenance runtime has already materialized
        each one as a view.
        """
        materialized = self.maintenance.materialized_fingerprints()
        return [
            MaterializationSuggestion(
                fingerprint=candidate.fingerprint,
                count=candidate.count,
                size=candidate.size,
                description=candidate.description,
                materialized=candidate.fingerprint in materialized,
            )
            for candidate in self.optimizer.advisor.candidates()
        ]


def shared_serving_system(db: Database) -> AgentFirstDataSystem:
    """The database's long-lived headless serving system, built on demand.

    Batched agent runners (parallel attempts, federated cohorts) use this
    instead of constructing a fresh system per call: every
    ``AgentFirstDataSystem`` registers a change observer on its database
    that is never detached, so throwaway systems would accumulate — and
    replay invalidations — for the database's whole lifetime. Steering and
    memory are off (field agents never read them); MQO, history, and the
    shared cache persist across calls, so repeat sweeps over the same
    database keep getting cheaper.
    """
    system = getattr(db, "_serving_system", None)
    if system is None:
        system = AgentFirstDataSystem(
            db, config=SystemConfig(enable_steering=False, enable_memory=False)
        )
        db._serving_system = system
    return system


def _dedupe(items: list[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
