"""Satisficing: decide *what* to execute, not just how.

Given an interpreted probe, produce an execution decision per query
(paper Sec. 5.2.1 "Deciding What to Execute"):

* **semantic pruning** — during exploration, queries whose referenced
  tables/columns are unrelated to the brief's goal are pruned;
* **k-of-n selection** — when the brief says only k of n queries need
  completing, keep the k that maximise priority per unit cost;
* **ordering** — run high-priority/cheap queries first so termination
  criteria fire as early as possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.brief import Phase
from repro.core.interpreter import InterpretedProbe, PlannedQuery
from repro.plan import logical
from repro.semantic.embedding import HashedEmbedder, cosine_similarity

#: Goal-relevance below this prunes a query during exploration. Deliberately
#: permissive: pruning a needed query costs a follow-up turn (the paper's
#: cost/accuracy trade-off), so only clearly-unrelated queries drop.
PRUNE_THRESHOLD = 0.08


@dataclass
class ExecutionDecision:
    """The satisficer's verdict for one planned query."""

    query: PlannedQuery
    action: str  # 'execute' | 'prune'
    sample_rate: float = 1.0
    reason: str = ""


class Satisficer:
    """Turns interpreted probes into ordered execution decisions."""

    def __init__(self, embedder: HashedEmbedder | None = None, enable_pruning: bool = True) -> None:
        self._embedder = embedder or HashedEmbedder()
        self._enable_pruning = enable_pruning

    def decide(
        self,
        interpreted: InterpretedProbe,
        sample_cap: float | None = None,
        cap_reason: str = "",
    ) -> list[ExecutionDecision]:
        """Execution decisions for one probe.

        ``sample_cap`` is an externally-imposed sample-rate ceiling (the
        QoS layer's load-shedding verdict): every execute decision runs
        at ``min(own_rate, sample_cap)``, overriding even the
        cheap-query exact floor — under declared overload, the system's
        protection of its higher-priority lanes outranks the
        interpreter's per-query accuracy preference. ``cap_reason``
        becomes the decision's reason when the cap actually lowered it.
        """
        decisions: list[ExecutionDecision] = []
        for query in interpreted.queries:
            if query.plan is None:
                # Parse/plan failures surface as errors downstream; the
                # satisficer leaves them alone.
                decisions.append(ExecutionDecision(query, "execute"))
                continue
            decision = self._decide_one(interpreted, query)
            decisions.append(decision)

        decisions = self._apply_k_of_n(interpreted, decisions)
        if sample_cap is not None:
            for decision in decisions:
                if (
                    decision.action == "execute"
                    and decision.query.plan is not None
                    and decision.sample_rate > sample_cap
                ):
                    decision.sample_rate = max(0.01, sample_cap)
                    decision.reason = cap_reason or decision.reason
        return self._order(decisions)

    # -- per-query --------------------------------------------------------------

    def _decide_one(
        self, interpreted: InterpretedProbe, query: PlannedQuery
    ) -> ExecutionDecision:
        goal = interpreted.probe.brief.goal
        if (
            self._enable_pruning
            and goal
            and interpreted.phase is Phase.METADATA_EXPLORATION
        ):
            relevance = self._relevance(goal, query)
            if relevance < PRUNE_THRESHOLD:
                return ExecutionDecision(
                    query,
                    "prune",
                    reason=(
                        f"referenced data looks unrelated to the goal"
                        f" (relevance {relevance:.2f})"
                    ),
                )
        return ExecutionDecision(query, "execute", sample_rate=query.sample_rate)

    def _relevance(self, goal: str, query: PlannedQuery) -> float:
        """Cosine similarity between the goal and the query's data surface."""
        surface = " ".join(self._surface_terms(query.plan))
        if not surface:
            return 1.0
        return cosine_similarity(
            self._embedder.embed(goal), self._embedder.embed(surface)
        )

    def _surface_terms(self, plan: logical.PlanNode | None) -> list[str]:
        terms: list[str] = []
        if plan is None:
            return terms
        for node in plan.walk():
            if isinstance(node, (logical.Scan, logical.IndexScan)):
                terms.append(node.table)
                terms.extend(node.columns)
        return terms

    # -- k-of-n -------------------------------------------------------------------

    def _apply_k_of_n(
        self, interpreted: InterpretedProbe, decisions: list[ExecutionDecision]
    ) -> list[ExecutionDecision]:
        k = interpreted.probe.brief.complete_k_of_n
        if k is None:
            return decisions
        candidates = [d for d in decisions if d.action == "execute" and d.query.plan is not None]
        if k >= len(candidates):
            return decisions
        # Keep the k best by priority-per-cost: satisfy the contract at the
        # least total work (the paper's "data system can decide which").
        ranked = sorted(
            candidates,
            key=lambda d: (
                -(d.query.priority / max(d.query.estimated_cost, 1.0)),
                d.query.index,
            ),
        )
        keep = {id(d) for d in ranked[:k]}
        out: list[ExecutionDecision] = []
        for decision in decisions:
            if decision.action == "execute" and decision.query.plan is not None and id(decision) not in keep:
                out.append(
                    ExecutionDecision(
                        decision.query,
                        "prune",
                        reason=f"k-of-n: only {k} of {len(candidates)} queries needed",
                    )
                )
            else:
                out.append(decision)
        return out

    # -- ordering -------------------------------------------------------------------

    def _order(self, decisions: list[ExecutionDecision]) -> list[ExecutionDecision]:
        """Execution order: highest priority first, then cheapest."""

        def sort_key(decision: ExecutionDecision) -> tuple:
            query = decision.query
            return (-query.priority, query.estimated_cost, query.index)

        executed = [d for d in decisions if d.action == "execute"]
        pruned = [d for d in decisions if d.action != "execute"]
        return sorted(executed, key=sort_key) + pruned
