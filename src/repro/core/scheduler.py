"""Cross-agent probe scheduling: serve the swarm, not the request.

The paper's central serving observation (Sec. 5.2.1, Fig. 2) is that
80-90% of sub-plans across concurrent agent probes are duplicates, so the
natural admission unit is the *batch of probes from many agents*, not one
probe. Batches reach this module from two directions: the streaming
admission gateway (:mod:`repro.core.gateway`) closes windows over probes
that arrived independently across agent sessions, and ``submit_many``
hands over a caller-assembled window directly. Either way,
:class:`ProbeScheduler` implements the serving path:

1. **Admission** — every probe in the batch is interpreted and satisficed
   up front; each gets its own turn number (admission order), exactly as
   if the probes had arrived serially.
2. **Shared-work census** — every executable sub-plan across all agents is
   fingerprinted (via :func:`repro.plan.fingerprint.subexpressions`), and
   the batch executes against the session's shared
   :class:`~repro.engine.executor.SubplanCache`, so each distinct subtree
   materialises once batch-wide. (With MQO disabled session-wide there is
   no cache, and the batch honours that: ablation baselines stay honest.)
3. **Parallel work-group execution** — the batch's independent engine work
   runs concurrently on a worker pool (below), then a serial replay
   re-imposes admission order on all observable bookkeeping.
4. **Fair dispatch** — queries are dispatched round-robin across probes so
   no agent waits behind another agent's whole probe; within each round,
   agents that have exhausted their :class:`~repro.core.brief.Brief`
   ``max_cost`` budget are deprioritised.
5. **Steering** — each probe's response carries the batch-level
   :class:`~repro.core.mqo.SharingReport` and cross-agent hints ("N other
   agents asked an equivalent query this turn").

Equivalence contract
--------------------

``submit_many([p1..pn])`` returns byte-identical per-query rows and
statuses to ``n`` serial ``submit`` calls on the same system — at every
worker count. The contract is kept by splitting each batch into a
*parallel execution phase* and a *serial replay phase*:

**What runs concurrently.** Executable queries are partitioned by lenient
fingerprint (the pull-forward index in ``_BatchRun.groups``). Within one
group, members must resolve serially-first-wins — the serially-first
occurrence of each strict fingerprint executes and lands in history, later
ones answer ``from_history``, and a merely-equivalent earlier query must
land in lenient history before a later one reads its "similar query
answered at turn N" pointer. *Distinct groups share no history keys*
(strict equality implies lenient equality, so all history interaction is
within a group), which makes their engine work independent. The scheduler
therefore speculatively executes exactly the engine runs serial dispatch
would perform: the serially-first occurrence per strict fingerprint not
already answered by session history, plus every sampled occurrence
(sampling bypasses history and draws seed-per-turn). Engine runs are pure
— results depend only on (plan, sample rate, seed, catalog); the shared
subplan cache is internally locked and only redistributes work, never
changes rows — so concurrent execution cannot change any answer.

**Where the units run: dispatch backends.** The speculative phase has two
interchangeable execution substrates (``dispatch_backend`` on
:class:`~repro.core.system.SystemConfig`, env
``REPRO_SCHEDULER_BACKEND``; see :mod:`repro.core.dispatch`):

* ``"thread"`` — a per-batch :class:`ThreadPoolExecutor` of ``workers``
  threads sharing this process's catalog and subplan cache. Zero setup
  cost; real overlap only on free-threaded builds (the GIL serialises
  pure-Python engine work otherwise).
* ``"process"`` — a persistent ``ProcessPoolExecutor`` of spawned
  workers, each initialised once with a versioned catalog snapshot that
  is reused across batches until a write bumps the catalog version.
  Units cross as picklable ``SpeculationPayload``\\ s; only units whose
  materialisation is not already in the in-process subplan cache are
  shipped, and returned materialisations are installed into that cache,
  so cross-batch reuse and the dedup of identical units are preserved.
  The trade: *intra-batch* subtree sharing between distinct units happens
  per worker (each worker has its own cache), so overlapping-but-not-
  identical units may recompute shared subtrees, and worker-side cache
  activity is invisible to the batch ``SharingReport`` (its hit/miss
  deltas cover the in-process cache only). Rows and statuses are
  unaffected. Any pool-level failure falls back to the thread path
  mid-batch — correctness never depends on the pool's health.
* ``"auto"`` — ``process`` exactly when threads cannot overlap engine
  work (GIL enabled) on a multi-core host, else ``thread``.

**Where serial order is re-imposed.** After the speculative phase, the
original serial dispatch loop runs unchanged — round-robin with
demand-driven pull-forward (before a query resolves, any serially-earlier
group member is advanced first, in its own probe's order) — except that
``ProbeOptimizer.run_decision`` consumes the precomputed engine result
instead of re-executing. All order-sensitive effects happen here, in exact
serial order: history attribution, ``from_history`` statuses, lenient
"answered at turn N" pointers, termination-criterion calls (user code,
invoked exactly as often as serial submission), budget accounting, and
per-probe outcome order (restored via ``QueryOutcome.query_index``).
Termination can skip queries the speculative phase already ran; those
results are discarded — wasted work, never wrong answers — and a query
whose execution shifted to a different occurrence simply executes inline
during replay.

``workers=1`` (and any batch with fewer than two independent engine runs)
skips speculation entirely, preserving today's serial loop exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from dataclasses import replace

from repro.core.dispatch import ProcessDispatcher, resolve_backend
from repro.core.interpreter import InterpretedProbe, ProbeInterpreter
from repro.core.mqo import SharingReport, subplan_census
from repro.core.optimizer import PrecomputedExecution, ProbeOptimizer
from repro.core.probe import Probe, QueryOutcome
from repro.core.satisfice import ExecutionDecision
from repro.engine.executor import subplan_cache_key
from repro.engine.result import QueryResult
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.plan.fingerprint import fingerprints

#: Environment override for the default worker count — lets CI run the
#: whole differential suite, unmodified, at several parallelism levels.
WORKERS_ENV_VAR = "REPRO_SCHEDULER_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count setting (None -> env override or CPU-based)."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)
        if env:
            workers = int(env)
        else:
            workers = min(8, os.cpu_count() or 1)
    return max(1, int(workers))


@dataclass
class ScheduledProbe:
    """One probe's progress through a batch dispatch."""

    index: int
    probe: Probe
    interpreted: InterpretedProbe
    turn: int
    decisions: list[ExecutionDecision]
    #: One slot per decision, filled as dispatch resolves it; replaced by
    #: the probe-declared-order outcome list when the batch completes.
    outcomes: list[QueryOutcome | None]
    results_so_far: list[QueryResult] = field(default_factory=list)
    terminated: bool = False
    next_position: int = 0
    #: Estimated engine cost of queries this probe has executed so far —
    #: the budget-fairness input, compared against ``brief.max_cost``.
    spent_cost: float = 0.0
    #: Batch-level steering extras (cross-agent equivalence, budget).
    hints: list[str] = field(default_factory=list)
    #: QoS degradation notices ("system under load, answer sampled at
    #: 10%"). Kept separate from ``hints``: these attach to the response
    #: even on systems with steering disabled — degraded service must be
    #: legible to the agent unconditionally.
    qos_notes: list[str] = field(default_factory=list)

    def pending(self) -> bool:
        return self.next_position < len(self.decisions)

    def over_budget(self) -> bool:
        budget = self.probe.brief.max_cost
        return budget is not None and self.spent_cost > budget


@dataclass
class ScheduledBatch:
    """What one admission batch produced: per-probe outcomes + accounting."""

    probes: list[ScheduledProbe]
    report: SharingReport


@dataclass
class _BatchRun:
    """Per-call dispatch state: nothing outlives the batch it served."""

    states: list[ScheduledProbe]
    #: Lenient fingerprint per executable (probe index, decision position),
    #: computed once at admission and reused by grouping, dispatch, and
    #: the cross-agent steering hints.
    lenient_fingerprints: dict[tuple[int, int], str]
    #: Executable queries grouped by lenient fingerprint, members serially
    #: sorted — the pull-forward index. Lenient equivalence subsumes
    #: strict duplication, so this preserves both history attribution and
    #: the "similar query answered at turn N" pointers.
    groups: dict[str, list[tuple[int, int]]]
    #: Speculatively-executed engine results, keyed by the (probe index,
    #: decision position) expected to consume each one during replay.
    precomputed: dict[tuple[int, int], PrecomputedExecution] = field(
        default_factory=dict
    )
    #: Per-probe ``scheduler:batch`` spans (probe index -> Span) for the
    #: traced probes in the batch — empty with tracing off.
    spans: dict[int, object] = field(default_factory=dict)


class ProbeScheduler:
    """Dispatches admission batches of probes with cross-agent sharing.

    ``workers`` controls the speculative execution pool: ``None`` resolves
    to the ``REPRO_SCHEDULER_WORKERS`` environment override, else
    ``min(8, os.cpu_count())``; ``1`` disables speculation and preserves
    the serial dispatch loop exactly. ``backend`` picks the speculative
    phase's substrate (``"thread" | "process" | "auto"``; ``None``
    resolves to the ``REPRO_SCHEDULER_BACKEND`` environment override,
    else threads).
    """

    #: Batches served, queries dispatched, and engine runs performed by
    #: the speculative phase. Metric-backed attribute shims: reads and
    #: ``+=`` mutations go through the metrics registry while call sites
    #: keep the plain-counter spelling.
    batches_served = MetricAttr("_m_batches_served")
    queries_dispatched = MetricAttr("_m_queries_dispatched")
    speculative_executions = MetricAttr("_m_speculative_executions")

    def __init__(
        self,
        interpreter: ProbeInterpreter,
        optimizer: ProbeOptimizer,
        workers: int | None = None,
        backend: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.interpreter = interpreter
        self.optimizer = optimizer
        self.workers = resolve_workers(workers)
        self.backend = resolve_backend(backend)
        #: Lazily-pooled worker processes; only the process backend (at
        #: workers > 1, with real work to overlap) ever spawns one.
        self._dispatcher: ProcessDispatcher | None = (
            ProcessDispatcher(self.workers)
            if self.backend == "process" and self.workers > 1
            else None
        )
        self.metrics_registry = registry if registry is not None else MetricsRegistry()
        self._m_batches_served = self.metrics_registry.counter(
            "repro_scheduler_batches_served_total", "Admission batches served"
        ).bind()
        self._m_queries_dispatched = self.metrics_registry.counter(
            "repro_scheduler_queries_dispatched_total",
            "Query decisions resolved through dispatch",
        ).bind()
        self._m_speculative_executions = self.metrics_registry.counter(
            "repro_scheduler_speculative_executions_total",
            "Engine runs performed by the speculative phase",
        ).bind()
        self.batches_served = 0
        self.queries_dispatched = 0
        self.speculative_executions = 0

    # -- backend lifecycle -------------------------------------------------------

    def prestart(self) -> str:
        """Warm the dispatch backend; returns the resolved backend name.

        For the process backend this spawns every worker and ships the
        catalog snapshot now, moving pool cold-start out of the first
        batch's serving latency. A no-op for threads (per-batch pools
        cost microseconds).
        """
        if self._dispatcher is not None:
            self._dispatcher.prestart(
                self.optimizer.db.catalog, self.optimizer.cache is not None
            )
        return self.backend

    def invalidate_backend(self) -> None:
        """Retire pooled workers eagerly (e.g. after a write).

        Purely an economy measure: correctness never needs it — the
        dispatcher re-checks the catalog version on every use — but
        retiring on write frees worker processes holding now-stale
        snapshots instead of leaving them idle until the next batch.
        """
        if self._dispatcher is not None:
            self._dispatcher.retire()

    def close(self) -> None:
        """Release backend resources (worker processes). Idempotent; the
        scheduler remains usable — the next batch rebuilds what it needs."""
        if self._dispatcher is not None:
            self._dispatcher.retire()

    # -- batch entry point -------------------------------------------------------

    def run_batch(
        self,
        probes: list[Probe],
        first_turn: int,
        degradations: list | None = None,
    ) -> ScheduledBatch:
        """Serve one admission batch.

        ``degradations`` (probe-aligned, entries ``None`` or a
        :class:`repro.qos.policy.Degradation`) carries the QoS layer's
        load-shedding verdicts: a ``"sample"`` verdict caps the probe's
        sample rates through the satisficer and attaches the verdict's
        steering line. Absent (the usual case), admission is unchanged.
        """
        states: list[ScheduledProbe] = []
        for index, probe in enumerate(probes):
            interpreted = self.interpreter.interpret(probe)
            degradation = degradations[index] if degradations else None
            if degradation is not None and degradation.kind == "sample":
                decisions = self.optimizer.satisficer.decide(
                    interpreted,
                    sample_cap=degradation.sample_cap,
                    cap_reason=f"load shed: {degradation.cause}",
                )
                qos_notes = [degradation.steering()]
            else:
                decisions = self.optimizer.satisficer.decide(interpreted)
                qos_notes = []
            states.append(
                ScheduledProbe(
                    index=index,
                    probe=probe,
                    interpreted=interpreted,
                    turn=first_turn + index,
                    decisions=decisions,
                    outcomes=[None] * len(decisions),
                    qos_notes=qos_notes,
                )
            )
        run = self._plan_run(states)
        for state in states:
            trace = obs_trace.probe_trace(state.probe)
            if trace is None:
                continue
            run.spans[state.index] = trace.root.child(
                "scheduler:batch",
                turn=state.turn,
                batch_size=len(probes),
                workers=self.workers,
                backend=self.backend,
            )
            degradation = degradations[state.index] if degradations else None
            if degradation is not None:
                # The QoS shedding verdict, legible on the trace itself.
                trace.root.child(
                    "qos:shed",
                    kind=degradation.kind,
                    cause=degradation.cause,
                    sample_cap=degradation.sample_cap,
                    staleness=degradation.staleness,
                ).finish()
        cache = self.optimizer.cache  # None when MQO is disabled: no sharing
        counters_before = cache.counters() if cache is not None else (0, 0, 0)

        if self.workers > 1:
            self._speculate(run)

        # Round-robin across probes at query granularity; within a round,
        # over-budget agents go last (admission order breaks ties).
        rounds = max((len(state.decisions) for state in states), default=0)
        for round_no in range(rounds):
            order = sorted(states, key=lambda s: (s.over_budget(), s.index))
            for state in order:
                while state.pending() and state.next_position <= round_no:
                    self._dispatch_next(run, state)
        for state in states:  # drain any stragglers (defensive; none expected)
            while state.pending():
                self._dispatch_next(run, state)

        for span in run.spans.values():
            span.finish()
        counters_after = cache.counters() if cache is not None else (0, 0, 0)
        report = self._build_report(run, counters_before, counters_after)
        self._attach_hints(run)
        for state in states:
            resolved = [outcome for outcome in state.outcomes if outcome is not None]
            resolved.sort(key=lambda o: o.query_index)
            state.outcomes = resolved

        self.batches_served += 1
        return ScheduledBatch(probes=states, report=report)

    def _plan_run(self, states: list[ScheduledProbe]) -> _BatchRun:
        lenient_fingerprints: dict[tuple[int, int], str] = {}
        groups: dict[str, list[tuple[int, int]]] = {}
        for state in states:
            for position, decision in enumerate(state.decisions):
                if decision.action != "execute" or decision.query.plan is None:
                    continue
                lenient = fingerprints(decision.query.plan).lenient
                lenient_fingerprints[(state.index, position)] = lenient
                groups.setdefault(lenient, []).append((state.index, position))
        for members in groups.values():
            members.sort()
        return _BatchRun(
            states=states, lenient_fingerprints=lenient_fingerprints, groups=groups
        )

    # -- speculative parallel execution ------------------------------------------

    def _speculate(self, run: _BatchRun) -> None:
        """Run the batch's independent engine work on the dispatch backend.

        Unit selection is backend-independent; execution happens on the
        process pool when configured (falling back to threads on any
        pool-level failure — a sick pool may cost time, never answers).
        """
        units = self._select_units(run)
        if len(units) < 2:
            return  # nothing to overlap; let the serial loop execute inline
        if self._dispatcher is not None and self._speculate_process(run, units):
            return
        self._speculate_threads(run, units)

    def _select_units(self, run: _BatchRun) -> list[tuple[int, int]]:
        """Exactly the engine runs serial dispatch would perform.

        Per strict fingerprint, the serially-first executable occurrence
        not already answered by session history (group members resolve in
        (probe, position) order, so the claim order below matches serial
        resolution order); every sampled occurrence runs, since sampling
        bypasses history and seeds by turn. Results are keyed by the
        occurrence expected to consume them; termination may strand a few
        (discarded) or shift execution to a later occurrence (which then
        executes inline during replay).
        """
        optimizer = self.optimizer
        if optimizer.enable_history:
            with optimizer._lock:
                answered = set(optimizer.history)
        else:
            answered = set()
        claimed: set[str] = set()
        units: list[tuple[int, int]] = []
        for state in run.states:
            for position, decision in enumerate(state.decisions):
                if decision.action != "execute" or decision.query.plan is None:
                    continue
                if decision.sample_rate >= 1.0 and optimizer.enable_history:
                    strict = fingerprints(decision.query.plan).strict
                    if strict in answered or strict in claimed:
                        continue  # replay answers this one from history
                    claimed.add(strict)
                units.append((state.index, position))
        return units

    def _speculate_threads(self, run: _BatchRun, units: list[tuple[int, int]]) -> None:
        """Thread substrate: shared catalog and cache, per-batch pool.

        A pool per batch: threads never outlive the work they served
        (schedulers are as numerous as systems; leaked idle workers
        would pile up), and spawn cost is noise next to engine runs.
        """
        optimizer = self.optimizer

        def run_unit(decision, turn, span):
            # Pool threads inherit no trace context: re-anchor the ambient
            # span to the unit span pre-created on the coordinator thread
            # (so only this thread ever appends inside the unit's subtree).
            if span is None:
                return optimizer.speculative_execute(decision, turn)
            token = obs_trace.set_current(span)
            try:
                return optimizer.speculative_execute(decision, turn)
            finally:
                obs_trace.reset_current(token)
                span.finish()

        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(units)),
            thread_name_prefix="probe-sched",
        ) as pool:
            futures = []
            for index, position in units:
                parent = run.spans.get(index)
                span = (
                    parent.child("speculate:unit", backend="thread", position=position)
                    if parent is not None
                    else None
                )
                futures.append(
                    (
                        (index, position),
                        pool.submit(
                            run_unit,
                            run.states[index].decisions[position],
                            run.states[index].turn,
                            span,
                        ),
                    )
                )
            for key, future in futures:
                run.precomputed[key] = future.result()
        self.speculative_executions += len(units)

    def _speculate_process(self, run: _BatchRun, units: list[tuple[int, int]]) -> bool:
        """Process substrate: versioned snapshots, GIL-free engine runs.

        Returns False on any pool-level failure, in which case the caller
        falls back to the thread path for this batch (the pool is retired
        so the next batch re-ships a fresh snapshot). Shared-cache
        interplay: units whose whole-unit materialisation is already in
        the in-process cache are not shipped — the serial replay executes
        them inline and takes the cache hit — and returned
        materialisations are installed into that cache, so later batches
        (and termination-shifted inline executions) keep sharing work.
        Distinct units that merely *overlap* execute on workers with
        independent caches and may recompute shared subtrees (answers
        identical; work accounting higher than the thread backend's).
        """
        optimizer = self.optimizer
        cache = optimizer.cache
        to_ship: list[tuple[tuple[int, int], object, tuple | None]] = []
        for index, position in units:
            decision = run.states[index].decisions[position]
            payload = optimizer.speculation_payload(decision, run.states[index].turn)
            if (index in run.spans) and not payload.trace:
                # Traced probe: have the worker record its engine-node
                # spans and ship them back for re-parenting during replay.
                payload = replace(payload, trace=True)
            key = subplan_cache_key(
                payload.plan, payload.sample_rate, payload.sample_seed
            )
            if cache is not None and cache.contains(key):
                continue  # replay answers it inline from the cache
            to_ship.append(((index, position), payload, key))
        if not to_ship:
            return True
        try:
            results = self._dispatcher.run(
                optimizer.db.catalog,
                [payload for _, payload, _ in to_ship],
                use_cache=cache is not None,
            )
        except Exception:
            # Broken pool, unpicklable payload, wedged worker: retire the
            # pool and let the thread path serve this batch. Engine runs
            # are pure, so the fallback cannot change any answer.
            self._dispatcher.retire()
            return False
        for ((key_pos, _payload, cache_key), outcome) in zip(to_ship, results):
            run.precomputed[key_pos] = outcome
            if cache is not None and cache_key is not None and outcome.result is not None:
                cache.put(cache_key, outcome.result.rows)
        self.speculative_executions += len(to_ship)
        return True

    # -- dispatch ----------------------------------------------------------------

    def _dispatch_next(self, run: _BatchRun, state: ScheduledProbe) -> None:
        position = state.next_position
        state.next_position += 1
        decision = state.decisions[position]
        query = decision.query
        executable = decision.action == "execute" and query.plan is not None
        was_terminated = state.terminated

        if executable and not was_terminated:
            self._resolve_providers(run, state, position)

        if executable and state.terminated:
            outcome = QueryOutcome(
                sql=query.sql,
                status="terminated",
                query_index=query.index,
                reason="termination criterion satisfied by earlier results",
                estimated_cost=query.estimated_cost,
            )
        else:
            parent = run.spans.get(state.index)
            precomputed = run.precomputed.pop((state.index, position), None)
            if parent is None:
                outcome = self.optimizer.run_decision(
                    state.interpreted, decision, state.turn, precomputed=precomputed
                )
            else:
                span = parent.child(
                    f"decision:q{query.index}",
                    action=decision.action,
                    sample_rate=decision.sample_rate,
                )
                token = obs_trace.set_current(span)
                try:
                    outcome = self.optimizer.run_decision(
                        state.interpreted, decision, state.turn, precomputed=precomputed
                    )
                finally:
                    obs_trace.reset_current(token)
                    span.finish()
                span.attrs["status"] = outcome.status
        state.outcomes[position] = outcome
        self.queries_dispatched += 1

        if outcome.result is not None:
            state.results_so_far.append(outcome.result)
        if outcome.executed:
            state.spent_cost += query.estimated_cost
        # The criterion is user code: call it exactly when a serial submit
        # would — after a dispatched execute decision, never again once it
        # has fired (stateful/time-based criteria observe the call count).
        if executable and not was_terminated and not state.terminated:
            state.terminated = self.optimizer.check_termination(
                state.interpreted, state.results_so_far
            )

    def _resolve_providers(
        self, run: _BatchRun, state: ScheduledProbe, position: int
    ) -> None:
        """Advance every serially-earlier equivalent of this query first.

        This is the pull-forward that keeps batch responses identical to
        serial submission: the serially-first duplicate must be the one
        that executes (and lands in history), and a merely-equivalent
        earlier query must land in lenient history before this one reads
        it — no matter which agent's dispatch slot demanded work first.
        """
        me = (state.index, position)
        lenient = run.lenient_fingerprints.get(me)
        if lenient is None:
            return
        for member in run.groups.get(lenient, ()):
            if member >= me:
                break  # members are serially sorted; the rest come after us
            provider = run.states[member[0]]
            while provider.next_position <= member[1]:
                self._dispatch_next(run, provider)

    # -- accounting + steering ----------------------------------------------------

    def _build_report(
        self,
        run: _BatchRun,
        counters_before: tuple[int, int, int],
        counters_after: tuple[int, int, int],
    ) -> SharingReport:
        plans = []
        agent_ids = []
        for state in run.states:
            for decision in state.decisions:
                if decision.action == "execute" and decision.query.plan is not None:
                    plans.append(decision.query.plan)
                    agent_ids.append(state.probe.agent_id)
        census = subplan_census(plans, agent_ids)
        rows_processed = sum(
            outcome.result.stats.rows_processed
            for state in run.states
            for outcome in state.outcomes
            if outcome is not None and outcome.executed and outcome.result is not None
        )
        return SharingReport(
            # All submitted queries, matching BatchExecutor's semantics for
            # the same field; the census below covers the plannable ones.
            queries=sum(len(state.interpreted.queries) for state in run.states),
            probes=len(run.states),
            agents=census.agents,
            total_subplans=census.total,
            distinct_subplans=census.distinct,
            cross_agent_subplans=census.cross_agent,
            rows_processed_shared=rows_processed,
            cache_hits=counters_after[0] - counters_before[0],
            cache_misses=counters_after[1] - counters_before[1],
        )

    def _attach_hints(self, run: _BatchRun) -> None:
        """Cross-agent equivalence + budget hints, per probe."""
        asked_by: dict[str, set[str]] = {}
        for state in run.states:
            for position in range(len(state.decisions)):
                lenient = run.lenient_fingerprints.get((state.index, position))
                if lenient is not None:
                    asked_by.setdefault(lenient, set()).add(state.probe.agent_id)
        shared = (
            "; the work was computed once and shared batch-wide"
            if self.optimizer.cache is not None
            else ""  # MQO off: equivalent asks happened, nothing was shared
        )
        for state in run.states:
            for position, decision in enumerate(state.decisions):
                lenient = run.lenient_fingerprints.get((state.index, position))
                if lenient is None:
                    continue
                others = asked_by[lenient] - {state.probe.agent_id}
                if others:
                    state.hints.append(
                        f"{len(others)} other agent(s) asked a query equivalent"
                        f" to {decision.query.sql[:50]!r} this turn{shared}"
                    )
        for state in run.states:
            if state.over_budget():
                state.hints.append(
                    f"batch budget: estimated cost {state.spent_cost:.0f}"
                    f" exceeded the brief's max_cost"
                    f" {state.probe.brief.max_cost:.0f}; this agent's queries"
                    " were deprioritised in later dispatch rounds"
                )
