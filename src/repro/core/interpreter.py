"""The probe interpreter: the in-database "agent" that reads briefs.

Takes a raw :class:`~repro.core.probe.Probe` and produces an
:class:`InterpretedProbe`: parsed plans, per-query priorities, the inferred
phase, and the accuracy contract each query must meet. This is the
deterministic stand-in for the paper's LLM probe-interpreter component —
the interface (NL brief in, execution guidance out) is the paper's; the
implementation is keyword rules plus the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.brief import Brief, Phase
from repro.core.probe import Probe
from repro.db import Database
from repro.errors import ReproError
from repro.plan.cost import estimate_cost
from repro.plan.logical import PlanNode

#: Default sampling rates by phase: exploration tolerates coarse answers,
#: solution formulation needs exact ones (paper Sec. 5.2.1 "return coarse
#: grain approximations during exploration").
PHASE_SAMPLE_RATES = {
    Phase.METADATA_EXPLORATION: 0.25,
    Phase.SOLUTION_FORMULATION: 1.0,
    Phase.VALIDATION: 1.0,
}

#: Queries cheaper than this (estimated work units) always run exactly:
#: sampling tiny queries saves nothing and costs accuracy.
EXACT_THRESHOLD = 512.0


@dataclass
class PlannedQuery:
    """One query of a probe, parsed, planned, and annotated."""

    index: int
    sql: str
    plan: PlanNode | None
    priority: float
    estimated_rows: float
    estimated_cost: float
    sample_rate: float
    parse_error: str | None = None


@dataclass
class InterpretedProbe:
    """The interpreter's reading of a probe."""

    probe: Probe
    phase: Phase
    queries: list[PlannedQuery] = field(default_factory=list)

    def executable(self) -> list[PlannedQuery]:
        return [q for q in self.queries if q.plan is not None]


class ProbeInterpreter:
    """Parses briefs and plans queries for the probe optimizer."""

    def __init__(self, db: Database) -> None:
        self._db = db

    def interpret(self, probe: Probe) -> InterpretedProbe:
        phase = probe.brief.infer_phase()
        interpreted = InterpretedProbe(probe=probe, phase=phase)
        for index, sql in enumerate(probe.queries):
            interpreted.queries.append(self._plan_query(index, sql, probe.brief, phase))
        return interpreted

    def _plan_query(
        self, index: int, sql: str, brief: Brief, phase: Phase
    ) -> PlannedQuery:
        try:
            plan = self._db.plan_select(sql)
        except ReproError as exc:
            return PlannedQuery(
                index=index,
                sql=sql,
                plan=None,
                priority=brief.priority_of(index),
                estimated_rows=0.0,
                estimated_cost=0.0,
                sample_rate=1.0,
                parse_error=str(exc),
            )
        estimate = estimate_cost(plan, self._db.catalog)
        return PlannedQuery(
            index=index,
            sql=sql,
            plan=plan,
            priority=brief.priority_of(index),
            estimated_rows=estimate.rows,
            estimated_cost=estimate.cost,
            sample_rate=self._sample_rate(brief, phase, estimate.cost),
        )

    def _sample_rate(self, brief: Brief, phase: Phase, cost: float) -> float:
        """Accuracy contract -> sampling rate.

        Explicit accuracy wins; otherwise phase defaults apply. Cheap
        queries run exactly regardless — approximation only pays when
        there is real work to skip.
        """
        if brief.accuracy is not None:
            rate = max(min(brief.accuracy, 1.0), 0.05)
        else:
            rate = PHASE_SAMPLE_RATES[phase]
        if cost <= EXACT_THRESHOLD:
            return 1.0
        if brief.max_cost is not None and cost > brief.max_cost:
            # Over budget: push approximation harder (never below 5%).
            squeeze = max(brief.max_cost / cost, 0.05)
            rate = min(rate, squeeze)
        return rate
