"""Multi-query optimization: shared execution across redundant probes.

Figure 2 shows 80-90% of sub-plans across parallel attempts are duplicates.
The shared-work machinery here exploits that: a batch executor runs many
plans against one :class:`~repro.engine.executor.SubplanCache`, so every
distinct (strict-fingerprint) subtree materialises once. The
:class:`SharingReport` quantifies the saving — the unit the A1 ablation
bench reports.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.db import Database
from repro.engine.columnar import make_executor
from repro.engine.executor import ExecContext, SubplanCache
from repro.engine.result import QueryResult
from repro.plan.fingerprint import fingerprints, subexpressions
from repro.plan.logical import PlanNode


@dataclass
class SharingReport:
    """Work accounting for a batch executed with and without sharing.

    Batches come in two shapes: a list of plans from one caller (the
    original :class:`BatchExecutor` surface) and an admission batch of
    probes from many concurrent agents (the scheduler's surface). The
    agent-level fields quantify the paper's cross-agent claim directly:
    how many distinct agents contributed, and how many distinct subplans
    were demanded by more than one of them.
    """

    queries: int = 0
    #: Number of probes in the batch (equals ``queries`` for plain plan
    #: batches, where each plan stands alone).
    probes: int = 0
    #: Distinct agents that contributed at least one executable plan.
    agents: int = 0
    total_subplans: int = 0
    distinct_subplans: int = 0
    #: Distinct subplans demanded by two or more *different* agents — the
    #: work that cross-agent scheduling (vs per-agent caching) saves.
    cross_agent_subplans: int = 0
    rows_processed_shared: int = 0
    rows_processed_unshared: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def duplicate_fraction(self) -> float:
        if self.total_subplans == 0:
            return 0.0
        return 1.0 - self.distinct_subplans / self.total_subplans

    @property
    def work_saved_fraction(self) -> float:
        if self.rows_processed_unshared == 0:
            return 0.0
        return 1.0 - self.rows_processed_shared / self.rows_processed_unshared


@dataclass
class BatchOutcome:
    results: list[QueryResult] = field(default_factory=list)
    report: SharingReport = field(default_factory=SharingReport)


class BatchExecutor:
    """Executes plan batches with cross-query subplan sharing."""

    def __init__(
        self,
        db: Database,
        cache: SubplanCache | None = None,
        engine: str | None = None,
    ) -> None:
        self._db = db
        self.cache = cache or SubplanCache()
        self.engine = engine

    def execute_plans(
        self,
        plans: list[PlanNode],
        measure_unshared: bool = False,
        agent_ids: list[str] | None = None,
    ) -> BatchOutcome:
        outcome = BatchOutcome()
        report = outcome.report
        report.queries = len(plans)
        report.probes = len(plans)

        census = subplan_census(plans, agent_ids)
        report.total_subplans = census.total
        report.distinct_subplans = census.distinct
        report.agents = census.agents
        report.cross_agent_subplans = census.cross_agent

        for plan in plans:
            context = ExecContext(cache=self.cache)
            executor = make_executor(self._db.catalog, context, self.engine)
            result = executor.run(plan)
            outcome.results.append(result)
            report.rows_processed_shared += context.stats.rows_processed
            report.cache_hits += context.stats.cache_hits
            report.cache_misses += context.stats.cache_misses

        if measure_unshared:
            for plan in plans:
                context = ExecContext(cache=None)
                make_executor(self._db.catalog, context, self.engine).run(plan)
                report.rows_processed_unshared += context.stats.rows_processed
        return outcome

    def execute_sql(
        self,
        queries: list[str],
        measure_unshared: bool = False,
        agent_ids: list[str] | None = None,
    ) -> BatchOutcome:
        plans = [self._db.plan_select(sql) for sql in queries]
        return self.execute_plans(
            plans, measure_unshared=measure_unshared, agent_ids=agent_ids
        )


@dataclass
class SubplanCensus:
    """Counts of (lenient-fingerprint) subplans across a batch of plans."""

    total: int = 0
    distinct: int = 0
    agents: int = 0
    cross_agent: int = 0


def subplan_census(
    plans: list[PlanNode], agent_ids: list[str] | None = None
) -> SubplanCensus:
    """Fingerprint every subtree of every plan; count duplication.

    With ``agent_ids`` (parallel to ``plans``), also counts how many
    distinct subplans were demanded by two or more different agents —
    Figure 2's cross-agent redundancy, measured on a live batch.
    """
    fingerprints: Counter[str] = Counter()
    agents_by_fingerprint: dict[str, set[str]] = {}
    for index, plan in enumerate(plans):
        agent = agent_ids[index] if agent_ids is not None else str(index)
        for sub in subexpressions(plan):
            fingerprints[sub.fingerprint] += 1
            agents_by_fingerprint.setdefault(sub.fingerprint, set()).add(agent)
    census = SubplanCensus(
        total=sum(fingerprints.values()),
        distinct=len(fingerprints),
        agents=len(set(agent_ids)) if agent_ids else len(plans),
        cross_agent=sum(
            1 for agents in agents_by_fingerprint.values() if len(agents) > 1
        ),
    )
    return census


class MaterializationSuggestion(NamedTuple):
    """One deduplicated, ranked materialization suggestion.

    Supersedes the old raw ``(fingerprint, count, description)`` tuples:
    indexes 0 and 1 are unchanged, but ``description`` moved from [2] to
    [3] to make room for the subtree ``size``, and ``materialized`` says
    whether the sleeper-agent runtime has already built this subplan as a
    view — prefer the named fields over positional unpacking.
    """

    fingerprint: str
    count: int
    size: int
    description: str
    materialized: bool


@dataclass(frozen=True)
class MaterializationCandidate:
    """An advisor candidate with enough context to actually build the view."""

    fingerprint: str  # lenient digest — the dedupe key
    strict_fingerprint: str  # of the representative plan below
    count: int
    size: int
    description: str
    plan: PlanNode  # first-observed representative subtree


class MaterializationAdvisor:
    """Observes plan history; suggests materializing hot subplans.

    Implements the paper's inter-probe "decide to materialize the join"
    idea (Sec. 5.2.2): subplans (of meaningful size) that recur across
    probes/turns become materialization candidates. Beyond the counters,
    the advisor retains the *first-observed representative plan* per
    lenient fingerprint, which is what lets the sleeper-agent maintenance
    runtime execute the subplan and register a materialized view instead
    of merely describing it.

    Thread-safe: ``observe`` is on the probe optimizer's execution path,
    which concurrent callers (and the scheduler's worker pool) may share,
    so the counters sit behind a lock.
    """

    def __init__(self, min_occurrences: int = 3, min_size: int = 2) -> None:
        self._min_occurrences = min_occurrences
        self._min_size = min_size
        self._counts: Counter[str] = Counter()
        self._descriptions: dict[str, str] = {}
        #: lenient fingerprint -> (representative plan, its strict digest,
        #: subtree size); plans are immutable, so holding them is safe.
        self._plans: dict[str, tuple[PlanNode, str, int]] = {}
        self._lock = threading.Lock()
        #: WAL journals (see :meth:`enable_wal_journal`): occurrence deltas
        #: and newly-seen representatives since the last drain. Advice
        #: tracks logical demand, which writes never erase, so — unlike
        #: the optimizer's history journal — these are never invalidated.
        self._wal_counts: Counter[str] | None = None
        self._wal_reps: dict[str, tuple[PlanNode, str, int, str]] | None = None

    @property
    def min_occurrences(self) -> int:
        return self._min_occurrences

    def observe(self, plan: PlanNode) -> None:
        seen_this_plan: set[str] = set()
        with self._lock:
            for node in plan.walk():
                digests = fingerprints(node)
                if digests.size < self._min_size:
                    continue
                fingerprint = digests.lenient
                if fingerprint in seen_this_plan:
                    continue
                seen_this_plan.add(fingerprint)
                self._counts[fingerprint] += 1
                if self._wal_counts is not None:
                    self._wal_counts[fingerprint] += 1
                if fingerprint not in self._descriptions:
                    description = node.describe().splitlines()[0]
                    self._descriptions[fingerprint] = description
                    self._plans[fingerprint] = (node, digests.strict, digests.size)
                    if self._wal_reps is not None:
                        self._wal_reps[fingerprint] = (
                            node, digests.strict, digests.size, description
                        )

    def suggestions(self) -> list[tuple[str, int, str]]:
        """(fingerprint, occurrences, description) above the threshold."""
        with self._lock:
            out = [
                (fingerprint, count, self._descriptions[fingerprint])
                for fingerprint, count in self._counts.items()
                if count >= self._min_occurrences
            ]
        out.sort(key=lambda item: (-item[1], item[0]))
        return out

    def candidates(
        self, min_occurrences: int | None = None
    ) -> list[MaterializationCandidate]:
        """Buildable candidates, deduplicated by lenient fingerprint and
        ranked by (occurrences, subtree size) descending."""
        threshold = (
            self._min_occurrences if min_occurrences is None else min_occurrences
        )
        with self._lock:
            out = [
                MaterializationCandidate(
                    fingerprint=fingerprint,
                    strict_fingerprint=self._plans[fingerprint][1],
                    count=count,
                    size=self._plans[fingerprint][2],
                    description=self._descriptions[fingerprint],
                    plan=self._plans[fingerprint][0],
                )
                for fingerprint, count in self._counts.items()
                if count >= threshold and fingerprint in self._plans
            ]
        out.sort(key=lambda c: (-c.count, -c.size, c.fingerprint))
        return out

    # -- durability (serve-state journaling) ----------------------------------

    def enable_wal_journal(self) -> None:
        """Start journaling observation deltas for WAL serve-state records."""
        with self._lock:
            if self._wal_counts is None:
                self._wal_counts = Counter()
                self._wal_reps = {}

    def drain_wal_delta(self) -> dict:
        """The advisor delta since the last drain: occurrence counts plus
        newly-seen representatives (``{fingerprint: (plan, strict, size,
        description)}``)."""
        with self._lock:
            counts = dict(self._wal_counts or {})
            reps = dict(self._wal_reps or {})
            if self._wal_counts is not None:
                self._wal_counts.clear()
                self._wal_reps.clear()
        return {"counts": counts, "reps": reps}

    def export_state(self) -> dict:
        """The *full* advisor state, for checkpoints (absolute counts)."""
        with self._lock:
            return {
                "counts": dict(self._counts),
                "reps": {
                    fingerprint: (plan, strict, size, self._descriptions[fingerprint])
                    for fingerprint, (plan, strict, size) in self._plans.items()
                },
            }

    def load_state(self, state: dict | None) -> None:
        """Fold recovered advisor state in (additive; first-seen reps win)."""
        if not state:
            return
        with self._lock:
            for fingerprint, count in (state.get("counts") or {}).items():
                self._counts[fingerprint] += count
            for fingerprint, rep in (state.get("reps") or {}).items():
                plan, strict, size, description = rep
                if fingerprint not in self._descriptions:
                    self._descriptions[fingerprint] = description
                    self._plans[fingerprint] = (plan, strict, size)
