"""Branches and the branch manager.

A :class:`Branch` is a full read-write database view backed by
chunk-shared copy-on-write storage:

* **fork** copies only the per-table chunk reference lists — O(#tables),
  independent of row count ("forking possibly thousands of near-identical
  snapshots");
* **writes** rewrite only the affected 256-row chunk, privately to the
  branch (multi-world isolation: logically separate, physically
  overlapping);
* **rollback** drops the branch — O(1), "ultra-fast aborts for failed
  branches";
* **merge** detects row-level write-write conflicts against the target's
  post-fork history and replays the source's write log.
"""

from __future__ import annotations

import logging

from repro.db.database import ChangeEvent, Database
from repro.errors import BranchNotFound, TransactionError
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.storage.table import Table, TableSnapshot
from repro.storage.types import Value
from repro.txn.merge import MergeResult, detect_conflicts, ensure_mergeable, replay
from repro.txn.write_log import WriteLog, WriteOp


class Branch:
    """One isolated world: a database plus its write history."""

    def __init__(self, name: str, database: Database, parent: str | None) -> None:
        self.name = name
        self.parent = parent
        self.db = database
        self.log = WriteLog()
        #: Position in the *parent's* log at the moment this branch forked.
        self.fork_point = 0
        self.alive = True
        database.on_change(self._record)

    # -- SQL surface -----------------------------------------------------------

    def execute(self, sql: str, **kwargs):
        self._check_alive()
        return self.db.execute(sql, **kwargs)

    # -- row-level surface (used by merge replay) ---------------------------------

    def insert_row(self, table: str, values: tuple[Value, ...]) -> int:
        self._check_alive()
        self.db.insert_rows(table, [values])
        stored = self.db.catalog.table(table)
        return stored.next_row_id - 1

    def update_row(self, table: str, row_id: int, values: tuple[Value, ...]) -> None:
        self._check_alive()
        self.db.catalog.update_row(table, row_id, values)
        self.log.append(WriteOp("update", table, row_id, tuple(values)))

    def delete_row(self, table: str, row_id: int) -> None:
        self._check_alive()
        self.db.catalog.delete_row(table, row_id)
        self.log.append(WriteOp("delete", table, row_id, None))

    def has_row(self, table: str, row_id: int) -> bool:
        try:
            self.db.catalog.table(table).get(row_id)
            return True
        except Exception:
            return False

    # -- snapshots -----------------------------------------------------------------

    def snapshot(self) -> dict[str, TableSnapshot]:
        versions: dict[str, TableSnapshot] = {}
        for name in self.db.table_names():
            versions[name.lower()] = self.db.catalog.table(name).snapshot_state()
        return versions

    def writes_since_fork(self) -> set[tuple[str, int]]:
        return self.log.keys_since(0)

    # -- internals --------------------------------------------------------------------

    def _record(self, event: ChangeEvent) -> None:
        if event.kind == "insert":
            for row_id, values in event.details:
                self.log.append(WriteOp("insert", event.table, row_id, values))
        elif event.kind == "update":
            for row_id, values in event.details:
                self.log.append(WriteOp("update", event.table, row_id, values))
        elif event.kind == "delete":
            for row_id, _ in event.details:
                self.log.append(WriteOp("delete", event.table, row_id, None))

    def _check_alive(self) -> None:
        if not self.alive:
            raise TransactionError(f"branch {self.name!r} has been rolled back")


_LOG = logging.getLogger(__name__)


class BranchManager:
    """Creates, forks, merges, and discards branches over a main database.

    Lifetime counters live in a metrics registry behind
    :class:`~repro.obs.metrics.MetricAttr` shims; ``stats()`` keys and
    attribute reads are unchanged.
    """

    forks_created = MetricAttr("_m_forks_created")
    rollbacks = MetricAttr("_m_rollbacks")
    merges = MetricAttr("_m_merges")

    def __init__(
        self,
        main_db: Database | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._branches: dict[str, Branch] = {}
        main = Branch("main", main_db or Database("main"), parent=None)
        self._branches["main"] = main
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        self._m_forks_created = registry.counter(
            "repro_txn_forks_created_total", "Branch forks created."
        ).bind()
        self._m_rollbacks = registry.counter(
            "repro_txn_rollbacks_total", "Branches rolled back."
        ).bind()
        self._m_merges = registry.counter(
            "repro_txn_merges_total", "Branch merges completed."
        ).bind()
        self.forks_created = 0
        self.rollbacks = 0
        self.merges = 0

    # -- lookup ------------------------------------------------------------------

    @property
    def main(self) -> Branch:
        return self._branches["main"]

    def branch(self, name: str) -> Branch:
        branch = self._branches.get(name.lower())
        if branch is None or not branch.alive:
            raise BranchNotFound(f"no live branch named {name!r}")
        return branch

    def branch_names(self) -> list[str]:
        return [b.name for b in self._branches.values() if b.alive]

    def live_branch_count(self) -> int:
        return sum(1 for b in self._branches.values() if b.alive)

    # -- fork / rollback -----------------------------------------------------------

    def fork(self, source: str, new_name: str) -> Branch:
        """Create a copy-on-write fork of ``source`` named ``new_name``."""
        key = new_name.lower()
        if key in self._branches and self._branches[key].alive:
            raise TransactionError(f"branch {new_name!r} already exists")
        parent = self.branch(source)
        child_db = Database(new_name)
        for name in parent.db.table_names():
            table = parent.db.catalog.table(name)
            # Chunk-shared restore: the clone references the parent's
            # immutable chunks until either side rewrites one (COW). All
            # branch write paths go through the catalog DML helpers, so
            # they bump the child catalog's data_epoch/version — which is
            # what invalidates any process-pool worker snapshots shipped
            # from a branch's database.
            child_db.catalog.register_table(Table.restore(table.snapshot_state()))
        child = Branch(new_name, child_db, parent=parent.name)
        child.fork_point = len(parent.log)
        self._branches[key] = child
        self.forks_created += 1
        return child

    def rollback(self, name: str) -> None:
        """Discard a branch. O(1): the shared chunks stay with survivors."""
        if name.lower() == "main":
            raise TransactionError("cannot roll back the main branch")
        branch = self.branch(name)
        branch.alive = False
        del self._branches[name.lower()]
        self.rollbacks += 1

    # -- merge ------------------------------------------------------------------------

    def merge(self, source: str, into: str | None = None) -> MergeResult:
        """Merge ``source`` into its parent (or an explicit target).

        Raises :class:`~repro.errors.MergeConflict` when both sides wrote
        the same row since the fork; on success the source branch is
        consumed (dropped).
        """
        branch = self.branch(source)
        target_name = into or branch.parent
        if target_name is None:
            raise TransactionError(f"branch {source!r} has no parent to merge into")
        target = self.branch(target_name)

        source_keys = branch.writes_since_fork()
        if target.name == branch.parent:
            target_keys = target.log.keys_since(branch.fork_point)
        else:
            # Merging into a non-parent: conservatively compare full histories.
            target_keys = target.log.keys_since(0)
        ensure_mergeable(detect_conflicts(source_keys, target_keys))

        result = MergeResult(source=branch.name, target=target.name)
        replay(branch.log.since(0), target, result)
        branch.alive = False
        del self._branches[source.lower()]
        self.merges += 1
        return result

    # -- storage sharing metrics ---------------------------------------------------------

    def shared_chunk_fraction(self, branch_a: str, branch_b: str) -> float:
        """Fraction of ``branch_a``'s chunks physically shared with ``branch_b``.

        Shared means *the same Python object* — the measurable signature of
        copy-on-write (identical content copied would not count).
        """
        a = self.branch(branch_a)
        b = self.branch(branch_b)
        b_chunk_ids = {
            id(chunk)
            for name in b.db.table_names()
            for chunk in b.db.catalog.table(name).snapshot()
        }
        a_chunks = [
            chunk
            for name in a.db.table_names()
            for chunk in a.db.catalog.table(name).snapshot()
        ]
        if not a_chunks:
            return 1.0
        shared = sum(1 for chunk in a_chunks if id(chunk) in b_chunk_ids)
        return shared / len(a_chunks)

    def stats(self) -> dict[str, int]:
        return {
            "live_branches": self.live_branch_count(),
            "forks_created": self.forks_created,
            "rollbacks": self.rollbacks,
            "merges": self.merges,
        }
