"""Merge machinery: conflict detection and log replay."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MergeConflict
from repro.storage.types import Value
from repro.txn.write_log import WriteOp


@dataclass
class MergeResult:
    """Summary of a completed merge."""

    source: str
    target: str
    replayed: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    skipped: int = 0
    remapped_row_ids: dict[tuple[str, int], int] = field(default_factory=dict)


def detect_conflicts(
    source_keys: set[tuple[str, int]], target_keys: set[tuple[str, int]]
) -> list[tuple[str, int]]:
    """Write-write conflicts between two branches' post-fork write keys."""
    return sorted(source_keys & target_keys)


def replay(ops: list[WriteOp], target_branch, result: MergeResult) -> None:
    """Replay ``ops`` onto ``target_branch`` (a :class:`~repro.txn.branches.Branch`).

    Inserted rows receive fresh row ids in the target (branch-local ids may
    collide with target inserts performed since the fork); subsequent ops on
    a remapped row follow the new id.
    """
    remap: dict[tuple[str, int], int] = {}
    for op in ops:
        # op.key is normalized at WriteOp construction — the one identity
        # conflict detection also uses; never recompute it independently.
        key = op.key
        if op.kind == "insert":
            assert op.values is not None
            new_id = target_branch.insert_row(op.table, op.values)
            remap[key] = new_id
            result.remapped_row_ids[key] = new_id
            result.inserts += 1
        elif op.kind == "update":
            assert op.values is not None
            row_id = remap.get(key, op.row_id)
            if target_branch.has_row(op.table, row_id):
                target_branch.update_row(op.table, row_id, op.values)
                result.updates += 1
            else:
                result.skipped += 1
        elif op.kind == "delete":
            row_id = remap.get(key, op.row_id)
            if target_branch.has_row(op.table, row_id):
                target_branch.delete_row(op.table, row_id)
                result.deletes += 1
            else:
                result.skipped += 1
        result.replayed += 1


def ensure_mergeable(
    conflicts: list[tuple[str, int]],
) -> None:
    if conflicts:
        raise MergeConflict(conflicts)
