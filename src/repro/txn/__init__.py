"""Branched transactions: copy-on-write forks, multi-world isolation, merge.

Implements the paper's Sec. 6.2: agents exploring "what-if" hypotheses fork
near-identical database branches, run speculative updates in logical
isolation, roll back all but the winner, and eventually reconcile surviving
branches — with forks and rollbacks cheap enough for thousands of branches.
"""

from repro.txn.branches import Branch, BranchManager
from repro.txn.merge import MergeResult
from repro.txn.write_log import WriteOp

__all__ = ["Branch", "BranchManager", "MergeResult", "WriteOp"]
