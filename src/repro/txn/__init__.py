"""Branched transactions: copy-on-write forks, multi-world isolation, merge.

Implements the paper's Sec. 6.2: agents exploring "what-if" hypotheses fork
near-identical database branches, run speculative updates in logical
isolation, roll back all but the winner, and eventually reconcile surviving
branches — with forks and rollbacks cheap enough for thousands of branches.

The durability layer lives here too (:mod:`repro.txn.wal`,
:mod:`repro.txn.replica`): a segmented on-disk write-ahead log every
catalog write appends to before mutating, checkpoints, exact crash
recovery, and log-fed read replicas with bounded-staleness serving.
"""

from repro.txn.branches import Branch, BranchManager
from repro.txn.merge import MergeResult
from repro.txn.replica import ReadReplica, ReplicaPool
from repro.txn.wal import Checkpoint, ServeState, WalRecord, WriteAheadLog, recover
from repro.txn.write_log import WriteOp

__all__ = [
    "Branch",
    "BranchManager",
    "Checkpoint",
    "MergeResult",
    "ReadReplica",
    "ReplicaPool",
    "ServeState",
    "WalRecord",
    "WriteAheadLog",
    "WriteOp",
    "recover",
]
