"""Durable write-ahead logging, checkpoints, and crash recovery.

:class:`~repro.txn.write_log.WriteLog` records row-level ops in process
memory for branch merges; this module extends the idea to a *persistent*
segmented on-disk log that makes committed state survive a crash
(ROADMAP: "Durability and read replicas").

Every catalog write path appends a :class:`WalRecord` **before** mutating
state (see ``Catalog._wal_log``), so the log is always at least as new as
the catalog. Records are framed as ``[u32 length][u32 crc32][pickled
body]`` inside numbered segment files; a torn final frame (crash mid
``write``) fails the CRC and recovery truncates back to the last
committed point instead of erroring.

Record taxonomy
---------------

* **catalog records** (:data:`CATALOG_KINDS`) — one per catalog write
  call, carrying the call's arguments verbatim. Replaying them in order
  through :func:`apply_record` reproduces the catalog *exactly*: row ids,
  per-table ``data_version`` counters, ``schema_version``/``data_epoch``,
  even ``aux_index_version`` — recovery lands on the same
  ``data_version_tuple()`` the crashed process had.
* **serve-state records** — the serving system brackets each admission
  window with ``window_begin`` / a ``serve_state`` commit record carrying
  the window's surviving history additions, advisor deltas, and the turn
  counter. ``invalidate`` records mark the points where writes cleared
  the answered-before history. Replaying these alongside the catalog
  records lets history *attribution* ("identical query answered at turn
  3 (agent a1)") survive recovery byte-identically.
* **window atomicity** — a trailing ``window_begin`` without its
  ``serve_state`` commit marks a window that was being served at the
  crash; recovery truncates it (its responses never reached callers), so
  the recovered system resumes at the last served-window boundary.

Checkpoints reuse :meth:`Catalog.snapshot` (chunk-shared, picklable):
``ckpt-<lsn>.pkl`` holds the snapshot, the serve state, and the absolute
record counters; segments the checkpoint covers are pruned. Recovery =
latest checkpoint + committed tail replay.

The same log doubles as the replication stream: in-process
:class:`~repro.txn.replica.ReadReplica` followers consume
:meth:`WriteAheadLog.records_since` (served from a bounded in-memory tail
when possible, the disk otherwise) and measure their staleness as the
number of catalog records not yet applied.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import threading
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WalError
from repro.storage.catalog import Catalog
from repro.storage.table import Table

_LOG = logging.getLogger(__name__)

#: Frame header: payload length, crc32 of the payload.
_HEADER = struct.Struct(">II")

#: Record kinds that mutate the catalog (everything else is serve-state
#: bookkeeping). These are what replicas apply and what staleness counts.
CATALOG_KINDS = frozenset(
    {
        "create_table",
        "register_table",
        "drop_table",
        "replace_table",
        "insert",
        "update",
        "delete",
        "hash_index",
        "sorted_index",
        "aux_hash_index",
        "aux_sorted_index",
    }
)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"
_CKPT_PREFIX = "ckpt-"
_CKPT_SUFFIX = ".pkl"


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry: a monotone LSN, a kind, and the call args."""

    lsn: int
    kind: str
    payload: tuple


@dataclass(frozen=True)
class Checkpoint:
    """A durable base image: catalog snapshot + serve state + counters.

    ``last_lsn``/``data_seq`` position the checkpoint in the log: replay
    starts after ``last_lsn``, and absolute staleness counters continue
    from ``data_seq``. ``serve`` is the serving system's state payload
    (turn, history, advisor) or ``None`` for a bare database; ``extra``
    carries facade-level oddments (the information-schema freshness
    marker).
    """

    last_lsn: int
    data_seq: int
    snapshot: object  # CatalogSnapshot; typed loosely to keep pickling simple
    serve: dict | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class ServeState:
    """The serving system's recoverable state, folded from the log.

    Recovery replays ``serve_state`` commits (merge the window's
    surviving history additions, advance the turn) and ``invalidate``
    records (writes cleared the answered-before history) in LSN order, so
    the recovered history is exactly what an uninterrupted run would hold
    at the same point — including the turn/agent attribution inside each
    :class:`~repro.core.optimizer.HistoryEntry`.
    """

    turn: int = 0
    history: dict = field(default_factory=dict)
    lenient_history: dict = field(default_factory=dict)
    #: Accumulated advisor state: {"counts": {fp: n}, "reps": {fp: (plan,
    #: strict, size, description)}}. Never cleared — materialization
    #: advice tracks logical demand, which writes do not erase.
    advisor: dict = field(
        default_factory=lambda: {"counts": {}, "reps": {}}
    )

    @classmethod
    def from_payload(cls, payload: dict | None) -> "ServeState":
        state = cls()
        if payload:
            state.merge(payload)
        return state

    def clear_history(self) -> None:
        self.history.clear()
        self.lenient_history.clear()

    def merge(self, delta: dict) -> None:
        self.turn = max(self.turn, int(delta.get("turn", 0)))
        self.history.update(delta.get("history") or {})
        self.lenient_history.update(delta.get("lenient") or {})
        advisor = delta.get("advisor")
        if advisor:
            counts = self.advisor["counts"]
            for fingerprint, count in (advisor.get("counts") or {}).items():
                counts[fingerprint] = counts.get(fingerprint, 0) + count
            reps = self.advisor["reps"]
            for fingerprint, rep in (advisor.get("reps") or {}).items():
                reps.setdefault(fingerprint, rep)

    @property
    def empty(self) -> bool:
        return (
            self.turn == 0
            and not self.history
            and not self.lenient_history
            and not self.advisor["counts"]
        )


@dataclass(frozen=True)
class _AppendToken:
    """Handle for the append-before-mutate guard (see :meth:`abort`)."""

    record: WalRecord
    offset: int
    length: int


def _encode(record: WalRecord) -> bytes:
    body = pickle.dumps(
        (record.lsn, record.kind, record.payload), protocol=pickle.HIGHEST_PROTOCOL
    )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_frames(data: bytes):
    """Yield ``(start_offset, end_offset, record)`` for each intact frame.

    Stops silently at the first torn or corrupt frame — that is the
    crash point; everything before it is trustworthy (CRC-checked).
    """
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > total:
            return  # torn: the final write did not complete
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            return  # corrupt tail
        try:
            lsn, kind, payload = pickle.loads(body)
        except Exception:
            return
        yield offset, body_end, WalRecord(lsn, kind, payload)
        offset = body_end


def apply_record(catalog: Catalog, record: WalRecord) -> None:
    """Re-invoke the catalog write call a catalog record describes.

    Replay goes through the same public methods that produced the record,
    so every version counter, row-id assignment, and index rebuild
    happens exactly as it did live.
    """
    kind, p = record.kind, record.payload
    if kind == "create_table":
        catalog.create_table(p[0])
    elif kind == "register_table":
        catalog.register_table(Table.restore(p[0]))
    elif kind == "drop_table":
        catalog.drop_table(p[0])
    elif kind == "replace_table":
        catalog.replace_table(Table.restore(p[0]))
    elif kind == "insert":
        catalog.insert_rows(p[0], p[1])
    elif kind == "update":
        catalog.update_row(p[0], p[1], p[2])
    elif kind == "delete":
        catalog.delete_row(p[0], p[1])
    elif kind == "hash_index":
        catalog.create_hash_index(p[0], p[1])
    elif kind == "sorted_index":
        catalog.create_sorted_index(p[0], p[1])
    elif kind == "aux_hash_index":
        catalog.create_auxiliary_hash_index(p[0], p[1])
    elif kind == "aux_sorted_index":
        catalog.create_auxiliary_sorted_index(p[0], p[1])
    else:  # pragma: no cover - caller filters on CATALOG_KINDS
        raise WalError(f"cannot apply record kind {kind!r}")


class WriteAheadLog:
    """A segmented on-disk write-ahead log with checkpoints.

    Opening a directory repairs it first: a torn final frame and any
    trailing uncommitted admission window are truncated, then appending
    resumes after the last committed record. One instance serializes all
    appends behind a lock; readers (replicas) share the same lock for
    consistent tails.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 1_000_000,
        checkpoint_every: int = 512,
        tail_records: int = 4096,
        fsync: bool | None = None,
    ) -> None:
        self.directory = directory
        self.segment_bytes = max(4096, int(segment_bytes))
        self.checkpoint_every = max(1, int(checkpoint_every))
        if fsync is None:
            fsync = os.environ.get("REPRO_WAL_FSYNC", "0") not in ("", "0")
        self.fsync = fsync
        #: Serving-system hook: returns the serve-state payload embedded
        #: in checkpoints (``None`` for a bare database).
        self.state_provider: Callable[[], dict | None] | None = None
        self.lock = threading.RLock()
        self._tail: deque[WalRecord] = deque(maxlen=max(16, int(tail_records)))
        self._closed = False
        self._window_open = False
        self._records_since_checkpoint = 0
        os.makedirs(directory, exist_ok=True)
        self.base_checkpoint = self._load_latest_checkpoint()
        self.latest_checkpoint = self.base_checkpoint
        self._replay_records: list[WalRecord] = []
        self._open_and_repair()

    # -- opening / repair ------------------------------------------------------

    def _segment_paths(self) -> list[str]:
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
        ]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    def _checkpoint_paths(self) -> list[str]:
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_CKPT_PREFIX) and name.endswith(_CKPT_SUFFIX)
        ]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    def _load_latest_checkpoint(self) -> Checkpoint | None:
        # Newest first; an unreadable checkpoint (crash mid-rename never
        # happens with os.replace, but disks lie) falls back to its elder.
        for path in reversed(self._checkpoint_paths()):
            try:
                with open(path, "rb") as handle:
                    checkpoint = pickle.load(handle)
                if isinstance(checkpoint, Checkpoint):
                    return checkpoint
            except Exception:
                continue
        return None

    def _open_and_repair(self) -> None:
        base_lsn = self.base_checkpoint.last_lsn if self.base_checkpoint else 0
        base_seq = self.base_checkpoint.data_seq if self.base_checkpoint else 0
        scanned: list[tuple[int, int, int, WalRecord]] = []  # (seg_idx, start, end, rec)
        segments = self._segment_paths()
        torn = False
        for seg_index, path in enumerate(segments):
            with open(path, "rb") as handle:
                data = handle.read()
            consumed = 0
            for start, end, record in _decode_frames(data):
                scanned.append((seg_index, start, end, record))
                consumed = end
            if consumed < len(data):
                torn = True
                break  # later segments postdate the crash point
        # Commit horizon: records inside an admission window commit only
        # when the window's serve_state lands.
        last_commit = -1
        in_window = False
        for i, (_, _, _, record) in enumerate(scanned):
            if record.kind == "window_begin":
                in_window = True
            elif record.kind == "serve_state":
                in_window = False
                last_commit = i
            elif not in_window:
                last_commit = i
        committed = scanned[: last_commit + 1]
        discarded = torn or last_commit + 1 < len(scanned)

        last_lsn = committed[-1][3].lsn if committed else base_lsn
        if last_lsn < base_lsn:
            # The checkpoint postdates every surviving record (its
            # segments were pruned): start a fresh tail after it.
            committed = []
            discarded = True
            last_lsn = base_lsn
        self.next_lsn = last_lsn + 1
        self.data_seq = base_seq + sum(
            1
            for (_, _, _, record) in committed
            if record.lsn > base_lsn and record.kind in CATALOG_KINDS
        )
        self._replay_records = [
            record for (_, _, _, record) in committed if record.lsn > base_lsn
        ]
        for record in self._replay_records:
            self._tail.append(record)

        if discarded:
            _LOG.warning(
                "wal: truncating uncommitted tail past the commit horizon"
            )
            # Physically roll the log back to the commit horizon so no
            # future open resurrects the orphaned tail.
            if committed:
                keep_index, _, keep_end, _ = committed[-1]
                for path in segments[keep_index + 1 :]:
                    os.remove(path)
                with open(segments[keep_index], "r+b") as handle:
                    handle.truncate(keep_end)
            else:
                for path in segments:
                    os.remove(path)
            segments = self._segment_paths()

        if segments:
            self._segment_path = segments[-1]
            self._file = open(self._segment_path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self._segment_size = self._file.tell()
        else:
            self._start_segment(self.next_lsn)

    def _start_segment(self, first_lsn: int) -> None:
        self._segment_path = os.path.join(
            self.directory, f"{_SEGMENT_PREFIX}{first_lsn:016d}{_SEGMENT_SUFFIX}"
        )
        self._file = open(self._segment_path, "w+b")
        self._segment_size = 0

    def replay_records(self) -> list[WalRecord]:
        """The committed records after the base checkpoint, for recovery."""
        return list(self._replay_records)

    # -- properties ------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        with self.lock:
            return self.next_lsn - 1

    @property
    def window_open(self) -> bool:
        with self.lock:
            return self._window_open

    # -- appending -------------------------------------------------------------

    def append(self, kind: str, payload: tuple = ()) -> _AppendToken:
        """Durably append one record; returns a token for :meth:`abort`.

        The write is flushed (and optionally fsynced) before returning,
        so callers may mutate in-memory state afterwards knowing the log
        already covers the change.
        """
        with self.lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            record = WalRecord(self.next_lsn, kind, payload)
            data = _encode(record)
            if (
                self._segment_size > 0
                and self._segment_size + len(data) > self.segment_bytes
            ):
                self._file.close()
                self._start_segment(record.lsn)
            offset = self._segment_size
            self._file.write(data)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._segment_size += len(data)
            self.next_lsn += 1
            self._tail.append(record)
            self._records_since_checkpoint += 1
            if kind in CATALOG_KINDS:
                self.data_seq += 1
            elif kind == "window_begin":
                self._window_open = True
            elif kind == "serve_state":
                self._window_open = False
            return _AppendToken(record, offset, len(data))

    def abort(self, token: _AppendToken) -> None:
        """Undo the most recent append (the mutation it covered failed).

        Appends are serialized and the guard runs in the same critical
        path, so the aborted record is always the last one; the segment
        is truncated back and the LSN reused.
        """
        with self.lock:
            if self._closed or token.record.lsn != self.next_lsn - 1:
                raise WalError("can only abort the most recent append")
            self._file.truncate(token.offset)
            self._file.seek(token.offset)
            self._segment_size = token.offset
            self.next_lsn -= 1
            popped = self._tail.pop()
            assert popped.lsn == token.record.lsn
            self._records_since_checkpoint = max(
                0, self._records_since_checkpoint - 1
            )
            if token.record.kind in CATALOG_KINDS:
                self.data_seq -= 1

    # -- admission-window bracketing -------------------------------------------

    def begin_window(self) -> None:
        """Mark the start of an admission window; writes logged until the
        matching :meth:`commit_window` are discarded by recovery if the
        process dies mid-window (their responses never reached callers)."""
        self.append("window_begin")

    def commit_window(self, serve_payload: dict) -> None:
        """Commit the window: its writes plus the serve-state delta."""
        self.append("serve_state", (serve_payload,))

    def log_invalidation(self) -> None:
        """Record that the serving system cleared its answered-before
        history (the recovery replay must clear its shadow at the same
        point)."""
        self.append("invalidate")

    # -- checkpoints -----------------------------------------------------------

    def checkpoint_due(self) -> bool:
        with self.lock:
            return (
                not self._window_open
                and not self._closed
                and self._records_since_checkpoint >= self.checkpoint_every
            )

    def write_checkpoint(self, catalog: Catalog, **extra) -> str | None:
        """Write a durable base image and prune the segments it covers.

        Returns the checkpoint path, or ``None`` when a window is open
        (checkpointing mid-window would resurrect a half-served window at
        recovery; the serving system checkpoints at window boundaries).
        """
        with self.lock:
            if self._closed or self._window_open:
                return None
            serve = self.state_provider() if self.state_provider is not None else None
            checkpoint = Checkpoint(
                last_lsn=self.next_lsn - 1,
                data_seq=self.data_seq,
                snapshot=catalog.snapshot(),
                serve=serve,
                extra=dict(extra),
            )
            path = os.path.join(
                self.directory,
                f"{_CKPT_PREFIX}{checkpoint.last_lsn:016d}{_CKPT_SUFFIX}",
            )
            tmp_path = path + ".tmp"
            with open(tmp_path, "wb") as handle:
                pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
            # Rotate, then drop everything the checkpoint covers: older
            # segments and older checkpoints.
            self._file.close()
            self._start_segment(self.next_lsn)
            for segment_path in self._segment_paths():
                if segment_path != self._segment_path:
                    os.remove(segment_path)
            for ckpt_path in self._checkpoint_paths():
                if ckpt_path != path:
                    os.remove(ckpt_path)
            self.latest_checkpoint = checkpoint
            self._records_since_checkpoint = 0
            return path

    # -- reading (replication stream) ------------------------------------------

    def records_since(self, lsn: int) -> list[WalRecord] | None:
        """All records with ``record.lsn > lsn``, oldest first.

        Served from the in-memory tail when it reaches back far enough,
        from the disk segments otherwise. Returns ``None`` when the
        requested horizon has been pruned by a checkpoint — the caller
        (a lagging replica) must reseed from :attr:`latest_checkpoint`.
        """
        with self.lock:
            if lsn >= self.next_lsn - 1:
                return []
            if self._tail and self._tail[0].lsn <= lsn + 1:
                return [record for record in self._tail if record.lsn > lsn]
            records: list[WalRecord] = []
            earliest: int | None = None
            for path in self._segment_paths():
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                for _, _, record in _decode_frames(data):
                    if earliest is None:
                        earliest = record.lsn
                    if record.lsn > lsn:
                        records.append(record)
            if earliest is not None and earliest > lsn + 1:
                return None  # pruned horizon: records below earliest are gone
            if earliest is None and lsn + 1 < self.next_lsn:
                return None
            return records

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self.lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class RecoveredState:
    """What :func:`recover` hands back: the rebuilt catalog, the serving
    system's state, the reopened (appendable) log, and facade extras."""

    catalog: Catalog
    serve: ServeState
    wal: WriteAheadLog
    extra: dict = field(default_factory=dict)


def recover(directory: str, **wal_kwargs) -> RecoveredState:
    """Rebuild exact state from a WAL directory: checkpoint + tail replay.

    Opening the log repairs torn/uncommitted tails first; replay then
    re-invokes every committed catalog write in LSN order and folds the
    serve-state records into a :class:`ServeState`. The returned catalog
    sits at the exact ``data_version_tuple()`` (and full ``version()``)
    the crashed process had at its last committed point, with the WAL
    attached and ready for further appends.
    """
    wal = WriteAheadLog(directory, **wal_kwargs)
    checkpoint = wal.base_checkpoint
    if checkpoint is not None:
        catalog = Catalog.restore_exact(checkpoint.snapshot)
        serve = ServeState.from_payload(checkpoint.serve)
        extra = dict(checkpoint.extra)
    else:
        catalog = Catalog()
        serve = ServeState()
        extra = {}
    for record in wal.replay_records():
        if record.kind in CATALOG_KINDS:
            apply_record(catalog, record)
        elif record.kind == "invalidate":
            serve.clear_history()
        elif record.kind == "serve_state":
            serve.merge(record.payload[0])
        elif record.kind == "info_schema_marker":
            extra["info_schema_marker"] = record.payload[0]
    catalog.wal = wal
    return RecoveredState(catalog=catalog, serve=serve, wal=wal, extra=extra)
