"""Write logs: the row-level history each branch accumulates.

A branch's write log serves two purposes:

* **conflict detection** — two branches conflict iff their logs touch the
  same ``(table, row_id)`` key since their fork point (write-write
  conflicts; reads are not tracked, matching snapshot-isolation-style
  "first committer wins");
* **merge replay** — a clean merge replays the source branch's log onto the
  target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.types import Value
from repro.util.text import normalize_identifier


@dataclass(frozen=True)
class WriteOp:
    """One row-level write: insert, update or delete.

    The table name is normalized once, at construction, through the same
    :func:`normalize_identifier` the catalog uses — so conflict detection
    and merge replay always agree on identity. (Before this, ``key``
    lowercased while replay used the raw name: a branch writing
    ``"Accounts"`` — quoted — and another writing ``accounts`` could
    dodge conflict detection yet replay into the same table.)
    """

    kind: str  # 'insert' | 'update' | 'delete'
    table: str
    row_id: int
    values: tuple[Value, ...] | None  # None for deletes

    def __post_init__(self) -> None:
        object.__setattr__(self, "table", normalize_identifier(self.table))

    @property
    def key(self) -> tuple[str, int]:
        return (self.table, self.row_id)


class WriteLog:
    """Append-only sequence of :class:`WriteOp` with positional fork points."""

    def __init__(self) -> None:
        self._ops: list[WriteOp] = []

    def append(self, op: WriteOp) -> None:
        self._ops.append(op)

    def __len__(self) -> int:
        return len(self._ops)

    def since(self, position: int) -> list[WriteOp]:
        return self._ops[position:]

    def keys_since(self, position: int) -> set[tuple[str, int]]:
        """Distinct (table, row_id) keys written at or after ``position``.

        Inserted-then-modified rows are excluded: a row that did not exist
        at the fork point cannot conflict with the other side.
        """
        inserted: set[tuple[str, int]] = set()
        keys: set[tuple[str, int]] = set()
        for op in self._ops[position:]:
            if op.kind == "insert":
                inserted.add(op.key)
            elif op.key not in inserted:
                keys.add(op.key)
        return keys
