"""In-process read replicas fed from the write-ahead log.

A :class:`ReadReplica` is a follower catalog: it seeds from the log's
latest checkpoint and applies committed catalog records in LSN order, so
at every point it holds a state the primary actually passed through. Its
**staleness** is the number of catalog write records the primary has
logged that the replica has not yet applied — the same unit
``Catalog.data_epoch`` counts in, surfaced to agents in the steering
hint.

Replicas serve only the easy-but-common case: read-only *exact* probes
whose brief declares a ``max_staleness`` tolerance (paper Sec. 4 — the
brief is where agents state what quality they need; a bounded-staleness
read is a quality statement like any sampling tolerance). Everything else
— DML-adjacent machinery, semantic search, memory recall, termination
criteria, information-schema reads — falls through to the primary.
Responses are tagged with an explicit staleness hint rather than
pretending to be fresh, following the agent-interface principle that
degraded service must be legible to the caller.

Execution deliberately bypasses the :class:`~repro.db.Database` facade:
a facade would refresh information-schema tables *into the replica's
catalog* (local mutations that would then collide with replayed primary
records). The replica plans and executes directly against its catalog,
which is also what guarantees serving never writes.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Callable

from repro.core.probe import Probe, ProbeResponse, QueryOutcome
from repro.engine.columnar import make_executor
from repro.engine.executor import ExecContext
from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.plan.builder import build_plan
from repro.plan.rules import optimize_plan
from repro.sql import nodes
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog
from repro.txn.wal import CATALOG_KINDS, WriteAheadLog, apply_record

_LOG = logging.getLogger(__name__)


def resolve_replica_count(count: int | None) -> int:
    """Explicit config wins; else the ``REPRO_REPLICAS`` env override; else 0."""
    if count is not None:
        return max(0, int(count))
    env = os.environ.get("REPRO_REPLICAS", "")
    try:
        return max(0, int(env)) if env else 0
    except ValueError:
        return 0


class ReadReplica:
    """One follower catalog consuming the primary's log."""

    def __init__(
        self,
        wal: WriteAheadLog,
        name: str = "replica-0",
        engine: str | None = None,
    ) -> None:
        self.wal = wal
        self.name = name
        self.engine = engine
        self._lock = threading.Lock()
        self.records_applied = 0
        self.probes_served = 0
        self._seed()

    def _seed(self) -> None:
        """(Re)build from the log's latest checkpoint — a consistent image
        by construction, unlike snapshotting a live concurrently-written
        catalog."""
        checkpoint = self.wal.latest_checkpoint
        if checkpoint is not None:
            self.catalog = Catalog.restore_exact(checkpoint.snapshot)
            self.applied_lsn = checkpoint.last_lsn
            self.data_seq = checkpoint.data_seq
        else:
            self.catalog = Catalog()
            self.applied_lsn = 0
            self.data_seq = 0

    def catch_up(self) -> int:
        """Apply every committed record the primary has logged; returns the
        number of catalog records applied. Reseeds from the latest
        checkpoint when the replica's horizon has been pruned."""
        with self._lock:
            records = self.wal.records_since(self.applied_lsn)
            if records is None:
                self._seed()
                records = self.wal.records_since(self.applied_lsn) or []
            applied = 0
            for record in records:
                if record.kind in CATALOG_KINDS:
                    apply_record(self.catalog, record)
                    self.data_seq += 1
                    applied += 1
                self.applied_lsn = record.lsn
            self.records_applied += applied
            return applied

    def staleness(self) -> int:
        """Catalog write records logged by the primary but not yet applied."""
        return max(0, self.wal.data_seq - self.data_seq)

    def serve(
        self,
        probe: Probe,
        tolerance: int,
        turn_source: Callable[[], int],
        catch_up: bool = True,
    ) -> ProbeResponse | None:
        """Answer a read-only exact probe, or ``None`` to defer to the
        primary (too stale, unparseable here, or any execution trouble —
        the primary owns error reporting).

        The staleness bound is checked *after* catching up, and the hint
        reports the residual lag (writes that landed on the primary while
        this replica was applying). The turn number is drawn from the
        primary's counter only once the response is certain, so deferrals
        never burn a turn.
        """
        if catch_up:
            self.catch_up()
        lag = self.staleness()
        if lag > tolerance:
            return None
        trace = obs_trace.probe_trace(probe)
        if trace is None or trace.finished:
            return self._serve_inner(probe, tolerance, turn_source, lag)
        # Traced probe: the serve span is made ambient so the engine's
        # per-node spans nest under it, exactly like the primary path.
        span = trace.root.child("replica:serve", replica=self.name, staleness=lag)
        token = obs_trace.set_current(span)
        try:
            response = self._serve_inner(probe, tolerance, turn_source, lag)
            span.attrs["deferred"] = response is None
            return response
        finally:
            obs_trace.reset_current(token)
            span.finish()

    def _serve_inner(
        self,
        probe: Probe,
        tolerance: int,
        turn_source: Callable[[], int],
        lag: int,
    ) -> ProbeResponse | None:
        try:
            plans = []
            for sql in probe.queries:
                statement = parse_statement(sql)
                if not isinstance(statement, nodes.Select):
                    return None
                if _references_information_schema(statement):
                    # The virtual tables are facade-maintained; serving
                    # them here would require mutating this catalog.
                    return None
                plan = build_plan(statement, self.catalog)
                plans.append(optimize_plan(plan, self.catalog))
            outcomes = []
            rows_processed = 0
            for index, (sql, plan) in enumerate(zip(probe.queries, plans)):
                context = ExecContext()
                result = make_executor(self.catalog, context, self.engine).run(plan)
                rows_processed += context.stats.rows_processed
                outcomes.append(
                    QueryOutcome(
                        sql=sql, status="ok", query_index=index, result=result
                    )
                )
        except ReproError:
            return None
        self.probes_served += 1
        response = ProbeResponse(
            outcomes=outcomes,
            turn=turn_source(),
            rows_processed=rows_processed,
        )
        response.steering.append(
            f"served by read replica {self.name!r}:"
            f" staleness {lag} ≤ {tolerance} versions"
        )
        return response


class ReplicaPool:
    """Round-robin pool of read replicas behind one primary log.

    Pool counters live in the shared metrics registry behind
    :class:`~repro.obs.metrics.MetricAttr` shims; ``stats()`` keys and
    attribute reads are unchanged.
    """

    probes_served = MetricAttr("_m_probes_served")
    probes_declined = MetricAttr("_m_probes_declined")

    def __init__(
        self,
        wal: WriteAheadLog,
        count: int,
        turn_source: Callable[[], int],
        engine: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.replicas = [
            ReadReplica(wal, name=f"replica-{i}", engine=engine)
            for i in range(max(1, count))
        ]
        self._turn_source = turn_source
        self._next = 0
        self._lock = threading.Lock()
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        self._m_probes_served = registry.counter(
            "repro_replica_probes_served_total",
            "Probes answered by a read replica.",
        ).bind()
        self._m_probes_declined = registry.counter(
            "repro_replica_probes_declined_total",
            "Probes a replica deferred back to the primary.",
        ).bind()
        registry.add_collector(self._collect_staleness)
        self.probes_served = 0
        self.probes_declined = 0

    def _collect_staleness(self) -> None:
        """Snapshot-time staleness gauge per replica (no hot-path cost)."""
        gauge = self.metrics_registry.gauge(
            "repro_replica_staleness",
            "Unapplied primary write records per replica.",
            labelnames=("replica",),
        )
        for replica in self.replicas:
            gauge.set(replica.staleness(), replica=replica.name)

    def __len__(self) -> int:
        return len(self.replicas)

    def eligible(self, probe: Probe, assume_staleness: bool = False) -> bool:
        """Only read-only exact SQL with a declared staleness tolerance:
        no beyond-SQL requests (they need primary-side state) and no
        termination criteria (partial-result semantics live with the
        scheduler). ``assume_staleness`` waives the declared-tolerance
        requirement — the QoS layer's overload shedding imposes its own
        bound (and says so in steering) on probes that declared none.
        """
        return (
            (probe.brief.max_staleness is not None or assume_staleness)
            and bool(probe.queries)
            and not probe.semantic_search
            and not probe.memory_queries
            and probe.termination is None
        )

    def try_serve(
        self,
        probe: Probe,
        staleness_override: int | None = None,
        load_note: str | None = None,
    ) -> ProbeResponse | None:
        """Serve from the next replica if the probe qualifies, else ``None``
        (the caller keeps it on the primary path).

        ``staleness_override`` is the QoS layer's imposed tolerance for
        load shedding: it lets a probe with no declared ``max_staleness``
        qualify, but never *loosens* a declared tolerance — the agent's
        own bound stays authoritative. ``load_note`` (the shedding
        verdict's steering line) is appended to the served response so
        the degradation is legible.
        """
        if not self.eligible(probe, assume_staleness=staleness_override is not None):
            return None
        tolerance = probe.brief.max_staleness
        if tolerance is None:
            tolerance = staleness_override
        with self._lock:
            replica = self.replicas[self._next % len(self.replicas)]
            self._next += 1
        response = replica.serve(probe, tolerance, self._turn_source)
        if response is None:
            self.probes_declined += 1
        else:
            self.probes_served += 1
            if load_note:
                response.steering.append(load_note)
        return response

    def stats(self) -> dict:
        return {
            "replicas": len(self.replicas),
            "probes_served": self.probes_served,
            "probes_declined": self.probes_declined,
            "staleness": [replica.staleness() for replica in self.replicas],
        }


def _references_information_schema(statement: nodes.Select) -> bool:
    from repro.db.database import (
        _references_information_schema as facade_check,
    )

    return facade_check(statement)
