"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers (in particular the simulated agents, which must *recover* from their
own malformed queries the way an LLM agent recovers from a backend error
message) can catch one base class and inspect a structured, human-readable
message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlError(ReproError):
    """Base class for errors in the SQL front-end."""


class TokenizeError(SqlError):
    """Raised when the lexer encounters an unrecognised character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class PlanError(ReproError):
    """Raised when a valid AST cannot be turned into an executable plan.

    This covers semantic errors: unknown tables or columns, ambiguous
    references, mis-typed expressions, aggregates in illegal positions.
    """


class CatalogError(ReproError):
    """Raised for catalog violations (missing/duplicate tables, bad DDL)."""


class ExecutionError(ReproError):
    """Raised when a plan fails at runtime (type errors, division by zero)."""


class WalError(ReproError):
    """Raised for write-ahead-log violations (bad directory, misuse of the
    append/abort protocol). Torn or corrupt log tails are *not* errors —
    recovery truncates them to the last committed point."""


class TransactionError(ReproError):
    """Base class for errors from the branched transaction manager."""


class BranchNotFound(TransactionError):
    """Raised when an operation names a branch that does not exist."""


class MergeConflict(TransactionError):
    """Raised when merging a branch whose write set conflicts with the target.

    Carries the list of conflicting ``(table, row_id)`` pairs so agents can
    inspect exactly which rows collided and retry on a fresh fork.
    """

    def __init__(self, conflicts: list[tuple[str, int]]) -> None:
        preview = ", ".join(f"{t}#{r}" for t, r in conflicts[:5])
        more = "" if len(conflicts) <= 5 else f" (+{len(conflicts) - 5} more)"
        super().__init__(f"merge conflicts on {preview}{more}")
        self.conflicts = conflicts


class MemoryStoreError(ReproError):
    """Raised for agentic-memory-store violations (bad artifact, ACL denial)."""


class AccessDenied(MemoryStoreError):
    """Raised when a principal reads an artifact outside its namespace."""


class ProbeError(ReproError):
    """Raised when a probe is malformed or cannot be interpreted."""


class BackendError(ReproError):
    """Raised by the federated backends for dialect-specific failures."""


class OverloadError(ReproError):
    """Raised when the admission queue is past its hard rejection cap.

    Ordinary overload never raises: the QoS layer degrades low-priority
    probes (sampling, replica serving) and keeps answering. This error
    only fires when a ``queue_reject`` cap is explicitly configured and
    exceeded; the message is steering-shaped so an agent can parse the
    depth, the cap, and the recommended action.
    """

    def __init__(self, queue_depth: int, limit: int) -> None:
        super().__init__(
            f"system overloaded: admission queue at {queue_depth} probes"
            f" >= hard cap {limit}; back off and resubmit, or lower the"
            " probe's priority lane (Brief(lane='bulk')) so it can be"
            " degraded instead of rejected"
        )
        self.queue_depth = queue_depth
        self.limit = limit


class BackendUnavailable(BackendError):
    """A federated backend's circuit breaker is open.

    Carries which backend tripped and how long until the breaker next
    admits a recovery probe, so agents can re-plan around the member (or
    schedule a retry) instead of hammering a failing service.
    """

    def __init__(self, backend: str, cooldown_remaining: float) -> None:
        super().__init__(
            f"backend {backend!r} unavailable: circuit breaker open,"
            f" next recovery probe in {max(0.0, cooldown_remaining):.1f}s;"
            " retry later or re-plan without this backend"
        )
        self.backend = backend
        self.cooldown_remaining = cooldown_remaining


class GatewayClosed(ReproError, RuntimeError):
    """The streaming gateway is shut down and cannot admit this probe.

    Raised by ``submit`` on a closed gateway; probes already queued when
    ``close()`` ran resolve with a structured error *response* carrying
    the same message, so ``ticket.result()`` never blocks on shutdown.
    (Also a ``RuntimeError``: callers who guarded the pre-QoS ``submit``
    with ``except RuntimeError`` keep working.)
    """

    def __init__(self, detail: str = "") -> None:
        message = (
            "gateway is closed: the admission loop has shut down;"
            " resubmit on a live system (synchronous submit/submit_many"
            " keep working after close)"
        )
        if detail:
            message = f"{message} [{detail}]"
        super().__init__(message)
