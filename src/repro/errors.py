"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers (in particular the simulated agents, which must *recover* from their
own malformed queries the way an LLM agent recovers from a backend error
message) can catch one base class and inspect a structured, human-readable
message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlError(ReproError):
    """Base class for errors in the SQL front-end."""


class TokenizeError(SqlError):
    """Raised when the lexer encounters an unrecognised character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class PlanError(ReproError):
    """Raised when a valid AST cannot be turned into an executable plan.

    This covers semantic errors: unknown tables or columns, ambiguous
    references, mis-typed expressions, aggregates in illegal positions.
    """


class CatalogError(ReproError):
    """Raised for catalog violations (missing/duplicate tables, bad DDL)."""


class ExecutionError(ReproError):
    """Raised when a plan fails at runtime (type errors, division by zero)."""


class WalError(ReproError):
    """Raised for write-ahead-log violations (bad directory, misuse of the
    append/abort protocol). Torn or corrupt log tails are *not* errors —
    recovery truncates them to the last committed point."""


class TransactionError(ReproError):
    """Base class for errors from the branched transaction manager."""


class BranchNotFound(TransactionError):
    """Raised when an operation names a branch that does not exist."""


class MergeConflict(TransactionError):
    """Raised when merging a branch whose write set conflicts with the target.

    Carries the list of conflicting ``(table, row_id)`` pairs so agents can
    inspect exactly which rows collided and retry on a fresh fork.
    """

    def __init__(self, conflicts: list[tuple[str, int]]) -> None:
        preview = ", ".join(f"{t}#{r}" for t, r in conflicts[:5])
        more = "" if len(conflicts) <= 5 else f" (+{len(conflicts) - 5} more)"
        super().__init__(f"merge conflicts on {preview}{more}")
        self.conflicts = conflicts


class MemoryStoreError(ReproError):
    """Raised for agentic-memory-store violations (bad artifact, ACL denial)."""


class AccessDenied(MemoryStoreError):
    """Raised when a principal reads an artifact outside its namespace."""


class ProbeError(ReproError):
    """Raised when a probe is malformed or cannot be interpreted."""


class BackendError(ReproError):
    """Raised by the federated backends for dialect-specific failures."""
