"""Experiment runners.

Each function regenerates one of the paper's tables/figures (or one of the
DESIGN.md ablations) and returns a structured result with a ``render()``
string that prints the same rows/series the paper reports. Benchmarks call
these; EXPERIMENTS.md records their output.

All runners are deterministic in (seed, sizes).
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.agents.attempts import AttemptGenerator
from repro.agents.federated import CrossBackendAgent, HintSet
from repro.agents.grounding import Grounding
from repro.agents.model import GPT_4O_MINI_SIM, QWEN_CODER_SIM, ModelProfile
from repro.agents.parallel import Supervisor, run_parallel_attempts
from repro.agents.sequential import SequentialAgent
from repro.agents.trace import ACTIVITY_ORDER, Activity, AgentTrace
from repro.core import AgentFirstDataSystem, Probe, SystemConfig
from repro.core.mqo import BatchExecutor
from repro.plan.builder import build_plan
from repro.plan.fingerprint import subexpressions
from repro.sql.parser import parse_statement
from repro.util.rng import RngStream
from repro.util.tabulate import format_series, format_table
from repro.workloads.bird import BirdTask, BirdTaskPool
from repro.workloads.multibackend import build_cross_backend_tasks
from repro.workloads.updates import (
    fresh_accounts_manager,
    simulate_agent_update_session,
    simulate_human_update_session,
)

DEFAULT_MODELS = (GPT_4O_MINI_SIM, QWEN_CODER_SIM)


# ---------------------------------------------------------------------------
# Figure 1a — success @ K (parallel attempts + supervisor pick)
# ---------------------------------------------------------------------------


@dataclass
class Fig1aResult:
    k_values: list[int]
    series: dict[str, dict[int, float]]  # model -> {k -> success rate}

    def render(self) -> str:
        return format_series(
            "K",
            self.series,
            title="Figure 1a — Success @ K (parallel attempts, supervisor vote)",
        )


def run_fig1a(
    seed: int = 0,
    n_tasks: int = 60,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 30, 40, 50),
    models: tuple[ModelProfile, ...] = DEFAULT_MODELS,
) -> Fig1aResult:
    pool = BirdTaskPool(seed=seed)
    tasks = pool.generate(n_tasks)
    supervisor = Supervisor()
    max_k = max(k_values)
    series: dict[str, dict[int, float]] = {}
    for model in models:
        outcomes = [
            run_parallel_attempts(task, model, max_k, seed=seed + 11)
            for task in tasks
        ]
        series[model.name] = {
            k: statistics.mean(
                outcome.success_at(k, supervisor, task)
                for outcome, task in zip(outcomes, tasks)
            )
            for k in k_values
        }
    return Fig1aResult(k_values=list(k_values), series=series)


# ---------------------------------------------------------------------------
# Figure 1b — success vs. sequential turn budget
# ---------------------------------------------------------------------------


@dataclass
class Fig1bResult:
    turn_budgets: list[int]
    series: dict[str, dict[int, float]]

    def render(self) -> str:
        return format_series(
            "turns",
            self.series,
            title="Figure 1b — Success vs. number of turns (sequential agent)",
        )


def run_fig1b(
    seed: int = 0,
    n_tasks: int = 60,
    turn_budgets: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    repetitions: int = 3,
    models: tuple[ModelProfile, ...] = DEFAULT_MODELS,
) -> Fig1bResult:
    pool = BirdTaskPool(seed=seed)
    tasks = pool.generate(n_tasks)
    series: dict[str, dict[int, float]] = {}
    for model in models:
        per_budget: dict[int, float] = {}
        for budget in turn_budgets:
            successes: list[bool] = []
            for repetition in range(repetitions):
                for task in tasks:
                    agent = SequentialAgent(
                        task,
                        model,
                        RngStream(seed, "fig1b", repetition, task.task_id, model.name, budget),
                    )
                    successes.append(agent.run(max_turns=budget).success)
            per_budget[budget] = statistics.mean(successes)
        series[model.name] = per_budget
    return Fig1bResult(turn_budgets=list(turn_budgets), series=series)


# ---------------------------------------------------------------------------
# Figure 2 — total vs. unique sub-expressions across 50 attempts
# ---------------------------------------------------------------------------


@dataclass
class Fig2Result:
    by_size: list[tuple[int, int, int, float]]  # (size, total, unique, proportion)
    by_operator: list[tuple[str, int, int, float]]  # (code, total, unique, proportion)

    def render(self) -> str:
        size_table = format_table(
            ["subexpr size", "total", "unique", "prop. unique"],
            [(s, t, u, round(p, 3)) for s, t, u, p in self.by_size],
            title="Figure 2a — sub-expressions by size (50 attempts/task)",
        )
        op_table = format_table(
            ["root op", "total", "unique", "prop. unique"],
            [(c, t, u, round(p, 3)) for c, t, u, p in self.by_operator],
            title="Figure 2b — sub-expressions by root operator",
        )
        return size_table + "\n\n" + op_table


def run_fig2(
    seed: int = 0,
    n_tasks: int = 24,
    attempts_per_task: int = 50,
    model: ModelProfile = GPT_4O_MINI_SIM,
) -> Fig2Result:
    pool = BirdTaskPool(seed=seed)
    tasks = pool.generate(n_tasks)
    total_by_size: Counter = Counter()
    unique_by_size: dict[tuple[str, int], set] = defaultdict(set)
    total_by_op: Counter = Counter()
    unique_by_op: dict[tuple[str, str], set] = defaultdict(set)

    for task in tasks:
        generator = AttemptGenerator(task, model)
        rng = RngStream(seed, "fig2", task.task_id)
        for attempt_index in range(attempts_per_task):
            grounding = Grounding()
            for table in task.spec.tables():
                if rng.bernoulli(0.85):
                    grounding.learn_table(table)
            attempt = generator.full_attempt(grounding, rng.child("a", attempt_index))
            try:
                plan = build_plan(parse_statement(attempt.sql), task.db.catalog)
            except Exception:
                continue
            for sub in subexpressions(plan):
                size = min(sub.size, 7)
                total_by_size[(task.task_id, size)] += 1
                unique_by_size[(task.task_id, size)].add(sub.fingerprint)
                total_by_op[(task.task_id, sub.root_code)] += 1
                unique_by_op[(task.task_id, sub.root_code)].add(sub.fingerprint)

    size_rows = []
    for size in range(1, 8):
        total = sum(v for (t, s), v in total_by_size.items() if s == size)
        unique = sum(
            len(fps) for (t, s), fps in unique_by_size.items() if s == size
        )
        if total:
            size_rows.append((size, total, unique, unique / total))
    op_rows = []
    for code in ["PR", "TS", "FI", "HJ", "UA", "OT"]:
        total = sum(v for (t, c), v in total_by_op.items() if c == code)
        unique = sum(len(fps) for (t, c), fps in unique_by_op.items() if c == code)
        if total:
            op_rows.append((code, total, unique, unique / total))
    return Fig2Result(by_size=size_rows, by_operator=op_rows)


# ---------------------------------------------------------------------------
# Figure 3 — activity x normalized-position heatmap
# ---------------------------------------------------------------------------

#: Number of position bins along the normalised trace axis.
FIG3_BINS = 10


@dataclass
class Fig3Result:
    #: activity -> per-bin relative frequency (each row normalised to max 1).
    heatmap: dict[str, list[float]]
    traces: int = 0
    success_rate: float = 0.0

    def render(self) -> str:
        lines = [
            "Figure 3 — labeled agent activities vs. normalized trace position",
            f"({self.traces} traces, success rate {self.success_rate:.0%};"
            " each row normalised independently)",
        ]
        edges = [f"{i / FIG3_BINS:.1f}" for i in range(FIG3_BINS)]
        header = ["activity \\ position", *edges]
        rows = []
        for activity, bins in self.heatmap.items():
            rows.append([activity, *(f"{v:.2f}" for v in bins)])
        lines.append(format_table(header, rows))
        return "\n".join(lines)


def run_fig3(
    seed: int = 0,
    n_tasks: int = 22,
    repetitions: int = 2,
    model: ModelProfile = GPT_4O_MINI_SIM,
) -> Fig3Result:
    traces = _collect_federated_traces(seed, n_tasks, repetitions, model, hints=None)
    bins = {activity: [0.0] * FIG3_BINS for activity in ACTIVITY_ORDER}
    for trace in traces:
        for position, activity in trace.normalized_positions():
            index = min(int(position * FIG3_BINS), FIG3_BINS - 1)
            if activity in bins:
                bins[activity][index] += 1
    heatmap: dict[str, list[float]] = {}
    for activity, counts in bins.items():
        peak = max(counts) or 1.0
        heatmap[activity.value] = [count / peak for count in counts]
    success = statistics.mean(t.success for t in traces) if traces else 0.0
    return Fig3Result(heatmap=heatmap, traces=len(traces), success_rate=success)


def _collect_federated_traces(
    seed: int,
    n_tasks: int,
    repetitions: int,
    model: ModelProfile,
    hints: HintSet | None,
) -> list[AgentTrace]:
    traces: list[AgentTrace] = []
    for repetition in range(repetitions):
        tasks = build_cross_backend_tasks(seed=seed + 5, n_tasks=n_tasks)
        for task in tasks:
            agent = CrossBackendAgent(
                task,
                model,
                RngStream(seed, "fed", repetition, task.task_id, model.name),
                hints=hints,
            )
            outcome = agent.run()
            traces.append(outcome.trace)
    return traces


# ---------------------------------------------------------------------------
# Table 1 — activity counts with and without hints
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    rows: list[tuple[str, float, float, float]]  # activity, no-hints, hints, reduction%

    def render(self) -> str:
        return format_table(
            ["Activity", "Avg (No Hints)", "Avg (w/ Hints)", "Reduction (%)"],
            [(a, round(n, 2), round(h, 2), round(r, 1)) for a, n, h, r in self.rows],
            title="Table 1 — mean activity counts per agent trace",
        )


def run_table1(
    seed: int = 0,
    n_tasks: int = 22,
    repetitions: int = 2,
    model: ModelProfile = GPT_4O_MINI_SIM,
) -> Table1Result:
    def mean_counts(hints: HintSet | None) -> dict[str, float]:
        traces = _collect_federated_traces(seed, n_tasks, repetitions, model, hints)
        out: dict[str, list[int]] = defaultdict(list)
        for trace in traces:
            counts = trace.activity_counts()
            for activity in ACTIVITY_ORDER:
                out[activity.value].append(counts[activity])
            out["all SQL queries"].append(trace.sql_query_count())
        return {key: statistics.mean(values) for key, values in out.items()}

    without = mean_counts(None)
    with_hints = mean_counts(HintSet())
    rows = []
    for key in [*(a.value for a in ACTIVITY_ORDER), "all SQL queries"]:
        no_hint_value = without[key]
        hint_value = with_hints[key]
        reduction = 100.0 * (1.0 - hint_value / no_hint_value) if no_hint_value else 0.0
        rows.append((key, no_hint_value, hint_value, -reduction))
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Sec. 6.2 — agents vs. humans: branches and rollbacks (+ fork cost)
# ---------------------------------------------------------------------------


@dataclass
class BranchingResult:
    human_branches: float
    agent_branches: float
    human_rollbacks: float
    agent_rollbacks: float
    branch_ratio: float
    rollback_ratio: float
    cow_shared_fraction: float

    def render(self) -> str:
        table = format_table(
            ["actor", "branches/session", "rollbacks/session"],
            [
                ("human", round(self.human_branches, 2), round(self.human_rollbacks, 2)),
                ("agent", round(self.agent_branches, 2), round(self.agent_rollbacks, 2)),
            ],
            title="Sec 6.2 — branch/rollback activity (per session of 10 tasks)",
        )
        return (
            table
            + f"\nagent/human branch ratio:   {self.branch_ratio:.1f}x (paper: ~20x)"
            + f"\nagent/human rollback ratio: {self.rollback_ratio:.1f}x (paper: ~50x)"
            + f"\nCoW fork storage sharing:   {self.cow_shared_fraction:.0%} of chunks shared"
        )


def run_branching_experiment(seed: int = 0, sessions: int = 12) -> BranchingResult:
    human_branches: list[int] = []
    human_rollbacks: list[int] = []
    agent_branches: list[int] = []
    agent_rollbacks: list[int] = []
    for session in range(sessions):
        manager = fresh_accounts_manager()
        human = simulate_human_update_session(
            manager, RngStream(seed, "human", session), n_tasks=10
        )
        human_branches.append(human.branches_created)
        human_rollbacks.append(human.rollbacks)
        manager = fresh_accounts_manager()
        agent = simulate_agent_update_session(
            manager, RngStream(seed, "agent", session), n_tasks=10
        )
        agent_branches.append(agent.branches_created)
        agent_rollbacks.append(agent.rollbacks)

    # Storage sharing after a single-row write on a multi-chunk table.
    manager = fresh_accounts_manager(n_accounts=2048)
    fork = manager.fork("main", "probe")
    fork.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
    shared = manager.shared_chunk_fraction("probe", "main")

    mean_hb = statistics.mean(human_branches)
    mean_ab = statistics.mean(agent_branches)
    mean_hr = statistics.mean(human_rollbacks)
    mean_ar = statistics.mean(agent_rollbacks)
    return BranchingResult(
        human_branches=mean_hb,
        agent_branches=mean_ab,
        human_rollbacks=mean_hr,
        agent_rollbacks=mean_ar,
        branch_ratio=mean_ab / max(mean_hb, 0.01),
        rollback_ratio=mean_ar / max(mean_hr, 0.01),
        cow_shared_fraction=shared,
    )


# ---------------------------------------------------------------------------
# Ablation A1 — MQO sharing across 50 redundant attempts
# ---------------------------------------------------------------------------


@dataclass
class MqoAblationResult:
    queries: int
    duplicate_fraction: float
    rows_shared: int
    rows_unshared: int
    work_saved: float

    def render(self) -> str:
        return (
            "Ablation A1 — shared vs. independent execution of parallel attempts\n"
            + format_table(
                ["metric", "value"],
                [
                    ("attempt queries executed", self.queries),
                    ("duplicate subplan fraction", f"{self.duplicate_fraction:.1%}"),
                    ("rows processed (shared)", self.rows_shared),
                    ("rows processed (independent)", self.rows_unshared),
                    ("work saved by sharing", f"{self.work_saved:.1%}"),
                ],
            )
        )


def run_mqo_ablation(
    seed: int = 0,
    n_tasks: int = 8,
    attempts_per_task: int = 50,
    model: ModelProfile = GPT_4O_MINI_SIM,
) -> MqoAblationResult:
    pool = BirdTaskPool(seed=seed)
    tasks = pool.generate(n_tasks)
    total_queries = 0
    duplicate_fractions: list[float] = []
    rows_shared = 0
    rows_unshared = 0
    for task in tasks:
        generator = AttemptGenerator(task, model)
        rng = RngStream(seed, "mqo", task.task_id)
        sqls: list[str] = []
        for attempt_index in range(attempts_per_task):
            grounding = Grounding()
            for table in task.spec.tables():
                grounding.learn_table(table)
            attempt = generator.full_attempt(grounding, rng.child("a", attempt_index))
            sqls.append(attempt.sql)
        valid = []
        for sql in sqls:
            try:
                task.db.plan_select(sql)
                valid.append(sql)
            except Exception:
                continue
        executor = BatchExecutor(task.db)
        outcome = executor.execute_sql(valid, measure_unshared=True)
        total_queries += outcome.report.queries
        duplicate_fractions.append(outcome.report.duplicate_fraction)
        rows_shared += outcome.report.rows_processed_shared
        rows_unshared += outcome.report.rows_processed_unshared
    saved = 1.0 - rows_shared / rows_unshared if rows_unshared else 0.0
    return MqoAblationResult(
        queries=total_queries,
        duplicate_fraction=statistics.mean(duplicate_fractions),
        rows_shared=rows_shared,
        rows_unshared=rows_unshared,
        work_saved=saved,
    )


# ---------------------------------------------------------------------------
# Ablation A2 — agentic memory on repeated task streams
# ---------------------------------------------------------------------------


@dataclass
class MemoryAblationResult:
    rows_with_memory: int
    rows_without_memory: int
    history_answers: int
    work_saved: float

    def render(self) -> str:
        return (
            "Ablation A2 — agentic memory/history over a repetitive probe stream\n"
            + format_table(
                ["metric", "value"],
                [
                    ("rows processed (memory+history on)", self.rows_with_memory),
                    ("rows processed (off)", self.rows_without_memory),
                    ("probes answered from history", self.history_answers),
                    ("work saved", f"{self.work_saved:.1%}"),
                ],
            )
        )


def run_memory_ablation(seed: int = 0, n_tasks: int = 6, repeats: int = 4) -> MemoryAblationResult:
    def build_stream() -> tuple[AgentFirstDataSystem, AgentFirstDataSystem, list]:
        pool = BirdTaskPool(seed=seed)
        tasks = pool.generate(n_tasks)
        return tasks

    tasks = build_stream()
    # Identical probe stream: each task's gold query asked `repeats` times by
    # different agents (the repetitive cross-agent workload of Sec. 6.1),
    # streamed through per-agent sessions — the gateway forms the admission
    # windows; nobody pre-batches.
    def run(config: SystemConfig) -> tuple[int, int]:
        rows = 0
        history_hits = 0
        # All tasks share one database only when they come from the same
        # domain db; group tasks by their db object.
        by_db: dict[int, list] = defaultdict(list)
        for task in tasks:
            by_db[id(task.db)].append(task)
        for group in by_db.values():
            system = AgentFirstDataSystem(group[0].db, config=config)
            for repeat in range(repeats):
                session = system.session(agent_id=f"agent{repeat}")
                tickets = [
                    session.submit(Probe(queries=(task.gold_sql,)))
                    for task in group
                ]
                system.gateway.flush()
                for ticket in tickets:
                    response = ticket.result(timeout=120.0)
                    rows += response.rows_processed
                    history_hits += sum(
                        1 for o in response.outcomes if o.status == "from_history"
                    )
            system.gateway.close()
        return rows, history_hits

    rows_on, hits_on = run(SystemConfig())
    rows_off, _ = run(
        SystemConfig(enable_history=False, enable_mqo=False, enable_memory=False)
    )
    saved = 1.0 - rows_on / rows_off if rows_off else 0.0
    return MemoryAblationResult(
        rows_with_memory=rows_on,
        rows_without_memory=rows_off,
        history_answers=hits_on,
        work_saved=saved,
    )


# ---------------------------------------------------------------------------
# Ablation A3 — satisficing (phase-aware approximation) vs exact execution
# ---------------------------------------------------------------------------


@dataclass
class SatisficingAblationResult:
    rows_satisficed: int
    rows_exact: int
    mean_relative_error: float
    work_saved: float

    def render(self) -> str:
        return (
            "Ablation A3 — satisficed (sampled) vs exact exploration probes\n"
            + format_table(
                ["metric", "value"],
                [
                    ("rows processed (satisficed)", self.rows_satisficed),
                    ("rows processed (exact)", self.rows_exact),
                    ("mean relative error of estimates", f"{self.mean_relative_error:.2%}"),
                    ("work saved", f"{self.work_saved:.1%}"),
                ],
            )
        )


def run_satisficing_ablation(seed: int = 0, scale: int = 30) -> SatisficingAblationResult:
    from repro.db import Database

    db = Database("satisfice")
    db.execute(
        "CREATE TABLE events (id INT, region TEXT, amount FLOAT, year INT)"
    )
    rng = RngStream(seed, "satisfice-data")
    regions = ["North", "South", "East", "West"]
    rows = []
    for i in range(2000 * max(scale // 10, 1)):
        rows.append(
            (
                i,
                rng.choice(regions),
                round(rng.uniform(1, 100), 2),
                rng.randint(2021, 2024),
            )
        )
    db.insert_rows("events", rows)

    exploration_queries = [
        "SELECT region, COUNT(*) FROM events GROUP BY region",
        "SELECT year, SUM(amount) FROM events GROUP BY year",
        "SELECT COUNT(*) FROM events WHERE amount > 50",
        "SELECT AVG(amount) FROM events WHERE region = 'North'",
    ]

    system = AgentFirstDataSystem(db)
    rows_satisficed = 0
    errors: list[float] = []
    exact_results = {}
    for sql in exploration_queries:
        exact_results[sql] = db.execute(sql)

    response = system.submit(
        Probe(
            queries=tuple(exploration_queries),
            brief=__import__("repro.core.brief", fromlist=["Brief"]).Brief(
                goal="explore rough statistics of events", accuracy=0.2
            ),
        )
    )
    rows_satisficed = response.rows_processed
    for outcome, sql in zip(response.outcomes, exploration_queries):
        if outcome.result is None or not outcome.result.rows:
            continue
        exact = exact_results[sql]
        approx_value = outcome.result.rows[0][-1]
        exact_value = exact.rows[0][-1]
        if isinstance(approx_value, (int, float)) and isinstance(
            exact_value, (int, float)
        ) and exact_value:
            errors.append(abs(approx_value - exact_value) / abs(exact_value))

    exact_system = AgentFirstDataSystem(db, config=SystemConfig(enable_mqo=False))
    exact_response = exact_system.submit(
        Probe(queries=tuple(exploration_queries))
    )
    rows_exact = exact_response.rows_processed

    saved = 1.0 - rows_satisficed / rows_exact if rows_exact else 0.0
    return SatisficingAblationResult(
        rows_satisficed=rows_satisficed,
        rows_exact=rows_exact,
        mean_relative_error=statistics.mean(errors) if errors else 0.0,
        work_saved=saved,
    )


# ---------------------------------------------------------------------------
# Ablation A4 — steering (why-not feedback) closes grounding gaps faster
# ---------------------------------------------------------------------------


@dataclass
class SteeringAblationResult:
    probes_with_steering: float
    probes_without_steering: float
    reduction: float

    def render(self) -> str:
        return (
            "Ablation A4 — probes-to-correct-literal with/without why-not steering\n"
            + format_table(
                ["metric", "value"],
                [
                    ("mean probes (steering on)", round(self.probes_with_steering, 2)),
                    ("mean probes (steering off)", round(self.probes_without_steering, 2)),
                    ("reduction", f"{self.reduction:.1%}"),
                ],
            )
        )


def run_steering_ablation(seed: int = 0, n_tasks: int = 16) -> SteeringAblationResult:
    """A focused loop: an agent keeps filtering with a wrong literal until
    it finds the right one — with steering it reads the why-not feedback,
    without it must stumble on the answer by exploring distinct values."""
    pool = BirdTaskPool(seed=seed)
    tasks = [
        task
        for task in pool.generate(n_tasks * 3)
        if any(f.wrong_value is not None for f in task.spec.filters)
    ][:n_tasks]

    def probes_needed(task: BirdTask, steering: bool) -> int:
        filter_spec = next(f for f in task.spec.filters if f.wrong_value is not None)
        system = AgentFirstDataSystem(
            task.db, config=SystemConfig(enable_steering=steering)
        )
        wrong = filter_spec.wrong_value
        probes = 0
        literal = wrong
        for _ in range(6):
            probes += 1
            sql = (
                f"SELECT * FROM {filter_spec.table}"
                f" WHERE {filter_spec.column} = "
                + (f"'{literal}'" if isinstance(literal, str) else str(literal))
                + " LIMIT 5"
            )
            response = system.submit(Probe.sql(sql, goal="find matching rows"))
            result = response.outcomes[0].result
            if result is not None and result.rows:
                return probes
            if steering and any("stored like" in h or "did you mean" in h for h in response.steering):
                # The why-not hint names the correct encoding.
                literal = filter_spec.value
                continue
            # Without steering: issue an exploration probe (counted) and
            # learn the value from DISTINCT output.
            probes += 1
            system.submit(
                Probe.sql(
                    f"SELECT DISTINCT {filter_spec.column} FROM {filter_spec.table}"
                    " LIMIT 20",
                    goal="explore distinct values",
                )
            )
            literal = filter_spec.value
        return probes

    with_steering = statistics.mean(probes_needed(t, True) for t in tasks)
    without_steering = statistics.mean(probes_needed(t, False) for t in tasks)
    return SteeringAblationResult(
        probes_with_steering=with_steering,
        probes_without_steering=without_steering,
        reduction=1.0 - with_steering / without_steering,
    )
