"""Experiment harness: one runner per paper figure/table, plus ablations."""

from repro.harness.experiments import (
    run_branching_experiment,
    run_fig1a,
    run_fig1b,
    run_fig2,
    run_fig3,
    run_memory_ablation,
    run_mqo_ablation,
    run_satisficing_ablation,
    run_steering_ablation,
    run_table1,
)

__all__ = [
    "run_branching_experiment",
    "run_fig1a",
    "run_fig1b",
    "run_fig2",
    "run_fig3",
    "run_memory_ablation",
    "run_mqo_ablation",
    "run_satisficing_ablation",
    "run_steering_ablation",
    "run_table1",
]
