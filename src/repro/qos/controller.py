"""QoS controller: the action half driven by the gateway's admission loop.

Policies (:mod:`repro.qos.policy`) look at observations and emit
verdicts; this controller holds the mutable state those verdicts need —
per-principal token buckets, overload/shedding counters — and turns
verdicts into the three concrete actions the gateway can take:

1. **classify** a probe at submission (lane + bucket state, and the
   hard-cap rejection check);
2. **order** an overloaded backlog (lane-major, arrival-order-minor,
   bucket-starved probes last);
3. **plan degradations** for an overloaded window (sample caps and
   replica offloads, each carrying its steering explanation).

Everything is watermark-gated: until a watermark trips, classification
is bookkeeping only and ordering/shedding are never invoked, which is
what makes QoS-on byte-identical to QoS-off on an unloaded system.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable

from repro.errors import OverloadError
from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.qos.policy import (
    STARVED_OFFSET,
    AdmissionPolicy,
    Degradation,
    QosConfig,
    SheddingPolicy,
    TokenBucket,
    lane_name,
    lane_of,
)


_LOG = logging.getLogger(__name__)


class QosController:
    """Mutable QoS state + the gateway-facing action surface.

    Lifetime counters live in the shared metrics registry (attribute
    access is shimmed through :class:`~repro.obs.metrics.MetricAttr`, so
    ``stats()`` keys and ``controller.probes_rejected`` reads are
    unchanged); read-modify-write atomicity still comes from ``_lock``,
    which guards every mutation.
    """

    probes_rejected = MetricAttr("_m_probes_rejected")
    starved_submissions = MetricAttr("_m_starved_submissions")

    def __init__(
        self,
        config: QosConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or QosConfig()
        self.admission = AdmissionPolicy(self.config)
        self.shedding = SheddingPolicy(self.config)
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        #: Lifetime counters (monotone; surfaced through gateway stats).
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        self._m_probes_rejected = registry.counter(
            "repro_qos_probes_rejected_total",
            "Submissions refused past the hard-cap watermark.",
        ).bind()
        self._m_starved_submissions = registry.counter(
            "repro_qos_starved_submissions_total",
            "Submissions whose principal's token bucket ran dry.",
        ).bind()
        self._m_lane_submissions = registry.counter(
            "repro_qos_lane_submissions_total",
            "Submissions classified per priority lane.",
            labelnames=("lane",),
        )
        registry.gauge(
            "repro_qos_principals_tracked",
            "Principals with a live token bucket.",
        )
        registry.add_collector(
            lambda: registry.gauge(
                "repro_qos_principals_tracked",
                "Principals with a live token bucket.",
            ).set(len(self._buckets))
        )
        self.probes_rejected = 0
        self.starved_submissions = 0
        self.lane_counts = {0: 0, 1: 0, 2: 0}

    # -- submission-time actions ----------------------------------------------

    def classify(self, probe, queue_depth: int) -> tuple[int, bool]:
        """Lane + bucket verdict for one submission; raises
        :class:`OverloadError` past the hard cap (when configured).

        Token spend happens here, at admission, so a principal's burst
        budget is consumed in arrival order whatever lane it claims.
        """
        limit = self.admission.rejection(queue_depth)
        if limit is not None:
            with self._lock:
                self.probes_rejected += 1
            _LOG.warning(
                "qos: rejecting submission at queue depth %d (hard cap %d)",
                queue_depth,
                limit,
            )
            raise OverloadError(queue_depth, limit)
        lane = lane_of(probe.brief)
        with self._lock:
            bucket = self._buckets.get(probe.principal)
            if bucket is None:
                bucket = TokenBucket(
                    self.config.bucket_capacity, self.config.bucket_refill
                )
                self._buckets[probe.principal] = bucket
            starved = not bucket.take(1.0)
            if starved:
                self.starved_submissions += 1
            self.lane_counts[lane] = self.lane_counts.get(lane, 0) + 1
            self._m_lane_submissions.inc(lane=lane_name(lane))
        return lane, starved

    def window_served(self) -> None:
        """One window closed: refill every principal's bucket."""
        with self._lock:
            for bucket in self._buckets.values():
                bucket.refill()

    # -- window-formation actions ----------------------------------------------

    def overload_cause(self, queue_depth: int, window_wait_ms: float = 0.0) -> str | None:
        return self.admission.overload_cause(queue_depth, window_wait_ms)

    @staticmethod
    def effective_lane(lane: int, starved: bool) -> int:
        """Sort lane: bucket-starved probes yield to every in-budget lane
        but keep their relative order among themselves."""
        return lane + STARVED_OFFSET if starved else lane

    def plan_degradations(
        self,
        tickets,
        cause: str,
        replica_eligible: "Callable[[object], bool] | None" = None,
    ) -> list[Degradation | None]:
        """Shedding verdicts for one overloaded window, ticket-aligned.

        A ticket degrades when its *effective* lane is bulk — either the
        brief put it there or its principal's bucket ran dry (a starved
        interactive probe still gets served this window; it just gets
        served degraded, which is the degrade-don't-drop contract).
        """
        verdicts: list[Degradation | None] = []
        for ticket in tickets:
            lane = self.effective_lane(ticket.lane, ticket.starved)
            replica_ok = bool(replica_eligible and replica_eligible(ticket.probe))
            verdicts.append(
                self.shedding.degradation_for(ticket.probe, lane, cause, replica_ok)
            )
        return verdicts

    # -- reporting --------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "probes_rejected": self.probes_rejected,
                "starved_submissions": self.starved_submissions,
                "lane_counts": {
                    lane_name(lane): count
                    for lane, count in sorted(self.lane_counts.items())
                },
                "principals_tracked": len(self._buckets),
            }
