"""Deterministic fault injection: make overload and failure testable.

Breakers and shedding paths are worthless if they only ever run in
production. This module injects the three failure shapes the QoS layer
exists to absorb — backend errors, latency spikes, slow consumers — from
one seeded RNG, so a failing run replays exactly under the same seed
(``REPRO_CHAOS=<seed>`` in CI; any truthy value enables, its integer
value — or a stable hash of the text — is the seed).

Two injection surfaces, deliberately different in blast radius:

* **Timing chaos** (process-wide under ``REPRO_CHAOS``): the gateway
  draws per-window admission delays from :meth:`ChaosEngine.admission_delay_s`.
  Timing is the one axis the equivalence contract already proves answers
  are independent of (the jitter differential leg), so the whole tier-1
  suite runs green under timing chaos while exercising every
  backpressure path with perturbed window geometry.
* **Outcome chaos** (opt-in, per wrapped object): :class:`ChaosBackend`
  wraps a federation member and injects error envelopes and latency
  spikes into its responses — errors are *data* in the backend protocol
  (`BackendResponse.error`), so injection exercises breakers without
  ever violating an answer contract the differential suites rely on.
  :class:`SlowConsumer` drains gateway tickets with seeded stalls, the
  client-side failure shape (a slow reader must never wedge admission).
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.backends.base import Backend, BackendResponse
from repro.util.hashing import stable_hash_int

CHAOS_ENV_VAR = "REPRO_CHAOS"

_FALSY = ("", "0", "false", "no", "off")


def resolve_chaos_seed(seed: int | None = None) -> int | None:
    """Explicit seed wins; else ``REPRO_CHAOS`` (its int value, or a
    stable hash of non-numeric text); ``None`` when chaos is off."""
    if seed is not None:
        return int(seed)
    raw = os.environ.get(CHAOS_ENV_VAR, "").strip().lower()
    if raw in _FALSY:
        return None
    try:
        return int(raw)
    except ValueError:
        return stable_hash_int(raw, 8)


class ChaosEngine:
    """One seeded source of faults; every draw is lock-serialised so a
    fixed seed yields a reproducible fault sequence even when multiple
    threads consult the engine (the sequence depends on draw *order*,
    which concurrent tests pin by construction)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.faults_injected = 0
        self.delays_injected = 0

    def chance(self, probability: float) -> bool:
        with self._lock:
            return self._rng.random() < probability

    def uniform(self, low: float, high: float) -> float:
        with self._lock:
            return self._rng.uniform(low, high)

    def admission_delay_s(
        self, probability: float = 0.15, max_delay_s: float = 0.008
    ) -> float:
        """A per-window latency spike for the gateway's admission loop
        (0 most of the time). Small by design: chaos perturbs timing,
        the suite's timeouts must survive it."""
        with self._lock:
            if self._rng.random() >= probability:
                return 0.0
            self.delays_injected += 1
            return self._rng.uniform(0.001, max_delay_s)

    def backend_fault(self, backend: str, operation: str, probability: float) -> str | None:
        """An injected error message for one backend call, or ``None``."""
        with self._lock:
            if self._rng.random() >= probability:
                return None
            self.faults_injected += 1
            return (
                f"chaos: injected {operation} failure on backend"
                f" {backend!r} (seed {self.seed})"
            )


class ChaosBackend(Backend):
    """A federation member wrapped in seeded faults.

    Injected failures come back as ordinary ``BackendResponse`` error
    envelopes — exactly what a real flaky service produces — so breakers,
    scatter exclusion, and agent error-recovery all exercise their real
    paths. ``fault_rate=1.0`` makes a hard-down backend; ``latency_s``
    with ``latency_rate`` makes a slow one (for latency-trip tests).
    """

    def __init__(
        self,
        inner: Backend,
        engine: ChaosEngine,
        fault_rate: float = 0.25,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
    ) -> None:
        self.inner = inner
        self.engine = engine
        self.fault_rate = fault_rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.name = inner.name
        self.kind = inner.kind
        self.faults_served = 0

    def _guard(self, operation: str, call) -> BackendResponse:
        if self.latency_s and self.engine.chance(self.latency_rate):
            time.sleep(self.latency_s)
        fault = self.engine.backend_fault(self.name, operation, self.fault_rate)
        if fault is not None:
            self.faults_served += 1
            return BackendResponse.failure(fault)
        return call()

    def list_tables(self) -> BackendResponse:
        return self._guard("list_tables", self.inner.list_tables)

    def describe(self, table: str) -> BackendResponse:
        return self._guard("describe", lambda: self.inner.describe(table))

    def sample(self, table: str, limit: int = 5) -> BackendResponse:
        return self._guard("sample", lambda: self.inner.sample(table, limit))

    def query(self, request: str) -> BackendResponse:
        return self._guard("query", lambda: self.inner.query(request))


class SlowConsumer:
    """Drains gateway tickets with seeded stalls between reads.

    The client-side fault shape: a consumer that reads responses slowly
    must never block the admission loop (tickets buffer their responses;
    delivery is push, not pull). Tests drain a flood through this and
    assert the gateway's windows kept closing on time.
    """

    def __init__(
        self,
        engine: ChaosEngine,
        stall_rate: float = 0.3,
        max_stall_s: float = 0.01,
    ) -> None:
        self.engine = engine
        self.stall_rate = stall_rate
        self.max_stall_s = max_stall_s
        self.stalls = 0

    def drain(self, tickets, timeout: float = 60.0):
        """``ticket.result()`` for each ticket, stalling along the way."""
        responses = []
        for ticket in tickets:
            if self.engine.chance(self.stall_rate):
                self.stalls += 1
                time.sleep(self.engine.uniform(0.0005, self.max_stall_s))
            responses.append(ticket.result(timeout=timeout))
        return responses
