"""QoS policy: pure decisions about lanes, budgets, and load shedding.

This is the *policy* half of the overload-control layer (the split is
modeled on DIRAC's ResourceStatusSystem/PolicySystem: policies look at
observations and emit verdicts; the enforcement lives elsewhere — here in
:mod:`repro.qos.controller`, which the gateway drives). Everything in
this module is a pure function of its inputs plus explicitly-threaded
state, which is what keeps the QoS layer differential-testable: under no
overload the verdict is always "admit unchanged, FIFO order", so a
QoS-on system is byte-identical to a QoS-off system.

Three policy families live here:

* **Priority lanes** — every probe lands in one of three lanes derived
  from its :class:`~repro.core.brief.Brief` (``lane_of``): *interactive*
  (validation-phase probes, explicitly high-priority work), *standard*
  (solution formulation), *bulk* (metadata exploration, relaxed-accuracy
  scans, self-declared background work). Under overload, windows admit
  interactive before standard before bulk; within a lane, arrival order
  is preserved exactly.
* **Token buckets** — per-principal budgets refilled per served window
  (not wall-clock: window count is deterministic under test, wall-clock
  is not). A principal that floods the gateway exhausts its bucket and
  its surplus probes sort *behind every in-budget probe of any lane*, so
  no principal can starve the window for everyone else.
* **Watermarks** — overload is declared from observable queue state
  (pending depth, window-formation wait), never guessed. Below the
  watermarks the policy's verdict is the identity; above them,
  bulk-lane probes receive a :class:`Degradation` verdict (sample cap or
  bounded-staleness replica serving) that the controller enforces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # repro.core imports this package; stay cycle-free
    from repro.core.brief import Brief

#: ``REPRO_QOS`` turns the QoS layer on for every system in the process
#: (CI's differential leg); explicit ``SystemConfig.enable_qos`` wins.
QOS_ENV_VAR = "REPRO_QOS"

_TRUTHY = ("1", "true", "yes", "on")


def resolve_qos_enabled(enabled: bool | None) -> bool:
    """Explicit config wins; else the ``REPRO_QOS`` env override; else off."""
    if enabled is not None:
        return bool(enabled)
    return os.environ.get(QOS_ENV_VAR, "").strip().lower() in _TRUTHY


# -- priority lanes ----------------------------------------------------------

LANE_INTERACTIVE = 0
LANE_STANDARD = 1
LANE_BULK = 2

LANE_NAMES = ("interactive", "standard", "bulk")

#: Sort offset for probes whose principal has exhausted its token bucket:
#: they keep their relative lane order but yield to every in-budget probe.
STARVED_OFFSET = len(LANE_NAMES)


def lane_of(brief: "Brief") -> int:
    """Derive a probe's priority lane from its brief.

    An explicit ``Brief(lane=...)`` always wins. Otherwise: validation
    probes are interactive (an agent double-checking an answer is at the
    end of its arc — latency matters most); metadata exploration and
    relaxed-accuracy probes are bulk (the brief already said approximate
    is fine); everything else is standard. A stated per-query priority
    weight >= 2 promotes one lane: the brief's own emphasis is the
    paper's channel for "this one matters".
    """
    # Local import: repro.core imports this package at module load, so a
    # module-level import here would close the cycle through repro.core's
    # package __init__ (same pattern as txn/replica.py).
    from repro.core.brief import Phase

    if brief.lane is not None:
        name = brief.lane.strip().lower()
        if name in LANE_NAMES:
            return LANE_NAMES.index(name)
    phase = brief.infer_phase()
    if phase is Phase.VALIDATION:
        lane = LANE_INTERACTIVE
    elif phase is Phase.METADATA_EXPLORATION:
        lane = LANE_BULK
    elif brief.accuracy is not None and brief.accuracy < 1.0:
        lane = LANE_BULK
    else:
        lane = LANE_STANDARD
    if brief.priorities and max(brief.priorities.values()) >= 2.0:
        lane = max(LANE_INTERACTIVE, lane - 1)
    return lane


def lane_name(lane: int) -> str:
    return LANE_NAMES[min(lane, len(LANE_NAMES) - 1)]


# -- token buckets -----------------------------------------------------------


class TokenBucket:
    """A per-principal admission budget, refilled per served window.

    Deliberately clockless: refills are driven by the gateway's own
    window cadence (``refill()`` once per window served), so bucket state
    is a deterministic function of the submission/serving sequence and
    the differential suites can reason about it.
    """

    def __init__(self, capacity: float, refill: float) -> None:
        self.capacity = max(1.0, float(capacity))
        self.refill_amount = max(0.0, float(refill))
        self.tokens = self.capacity

    def take(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens; False (and no spend) when short."""
        if self.tokens < cost:
            return False
        self.tokens -= cost
        return True

    def refill(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.refill_amount)


# -- configuration -----------------------------------------------------------


@dataclass
class QosConfig:
    """Knobs for the overload-control layer (all watermark-gated:
    an unloaded system never sees any of them act)."""

    #: Pending-probe depth at which the gateway declares overload and
    #: lane ordering + shedding activate. Deliberately an absolute count,
    #: not a multiple of ``max_batch``: overload is a statement about the
    #: backlog agents experience, not about window geometry.
    queue_high: int = 128
    #: Window-formation wait (ms) that also declares overload; ``None``
    #: disables the wait watermark (the default — formation wait includes
    #: the configured ``max_wait``, so a low bar would false-positive).
    wait_high_ms: float | None = None
    #: Hard admission cap: ``submit`` raises ``OverloadError`` beyond
    #: this queue depth. ``None`` (default) never rejects — the layer's
    #: whole point is degrade-don't-drop.
    queue_reject: int | None = None
    #: Sample-rate ceiling imposed on bulk-lane probes while shedding.
    shed_sample_rate: float = 0.1
    #: Staleness tolerance (catalog versions) imposed on bulk-lane
    #: read probes offloaded to replicas while shedding; ``None``
    #: restricts offload to probes that declared their own tolerance.
    shed_max_staleness: int | None = 8
    #: Per-principal token bucket: burst capacity and per-window refill.
    bucket_capacity: float = 64.0
    bucket_refill: float = 16.0
    #: Circuit breakers (see :mod:`repro.qos.breaker`): trip when the
    #: failure rate over the last ``breaker_window`` calls reaches
    #: ``breaker_failure_rate`` (with at least ``breaker_min_calls``
    #: observed), or when mean latency crosses ``breaker_latency_ms``.
    breaker_window: int = 16
    breaker_min_calls: int = 4
    breaker_failure_rate: float = 0.5
    breaker_latency_ms: float | None = None
    breaker_cooldown_s: float = 30.0
    breaker_half_open_probes: int = 1


# -- load shedding -----------------------------------------------------------


@dataclass(frozen=True)
class Degradation:
    """One probe's shedding verdict: *how* it degrades, and why.

    ``kind`` is ``"sample"`` (route through the satisficer's approximate
    path at ``sample_cap``) or ``"replica"`` (serve from a bounded-
    staleness read replica at ``staleness`` versions of tolerance). The
    ``cause`` names the watermark that tripped; every degraded response
    carries a steering line built from it — degradation must be legible
    to the agent (the paper's agent-first contract), never silent.
    """

    kind: str
    cause: str
    sample_cap: float | None = None
    staleness: int | None = None

    def steering(self) -> str:
        if self.kind == "sample":
            return (
                f"system under load ({self.cause}): answer sampled at"
                f" {self.sample_cap:.0%} to protect higher-priority lanes;"
                " resubmit with Brief(lane='interactive') if this probe"
                " needs an exact answer now"
            )
        return (
            f"system under load ({self.cause}): served from a read replica"
            f" at staleness <= {self.staleness} versions instead of the"
            " primary"
        )


@dataclass
class LoadState:
    """One observation of gateway pressure (policy input, action output)."""

    queue_depth: int
    window_wait_ms: float = 0.0
    cause: str | None = None


class AdmissionPolicy:
    """Watermark policy: maps queue observations to overload verdicts."""

    def __init__(self, config: QosConfig) -> None:
        self.config = config

    def overload_cause(self, queue_depth: int, window_wait_ms: float = 0.0) -> str | None:
        """The tripped watermark's description, or ``None`` when healthy."""
        if queue_depth > self.config.queue_high:
            return (
                f"admission queue depth {queue_depth} >"
                f" watermark {self.config.queue_high}"
            )
        wait_high = self.config.wait_high_ms
        if wait_high is not None and window_wait_ms > wait_high:
            return (
                f"window formation wait {window_wait_ms:.0f}ms >"
                f" watermark {wait_high:.0f}ms"
            )
        return None

    def rejection(self, queue_depth: int) -> int | None:
        """The hard cap to report in an ``OverloadError``, or ``None``."""
        limit = self.config.queue_reject
        if limit is not None and queue_depth >= limit:
            return limit
        return None


class SheddingPolicy:
    """Per-probe shedding verdicts for one overloaded window."""

    def __init__(self, config: QosConfig) -> None:
        self.config = config

    def degradation_for(self, probe, lane: int, cause: str, replica_ok: bool) -> Degradation | None:
        """The verdict for one admitted probe under a tripped watermark.

        Only bulk-lane (or bucket-starved) probes degrade — the
        interactive and standard lanes are what shedding protects.
        Replica serving wins when available (an exact answer at bounded
        staleness beats a fresh sample); the sampled path is the
        fallback for everything with executable SQL.
        """
        if lane < LANE_BULK:
            return None
        if replica_ok:
            staleness = probe.brief.max_staleness
            if staleness is None:
                staleness = self.config.shed_max_staleness
            if staleness is not None:
                return Degradation(
                    kind="replica", cause=cause, staleness=staleness
                )
        if probe.queries:
            return Degradation(
                kind="sample", cause=cause, sample_cap=self.config.shed_sample_rate
            )
        return None
