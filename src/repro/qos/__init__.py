"""Overload control and agent QoS (policy/action split).

The layer between session submission and window admission: priority
lanes and per-principal token buckets (:mod:`repro.qos.policy`), the
gateway-facing controller that enforces them (:mod:`repro.qos.controller`),
per-backend circuit breakers for federation members
(:mod:`repro.qos.breaker`), and the seeded fault-injection harness that
makes all of it testable (:mod:`repro.qos.chaos`). Enable with
``SystemConfig(enable_qos=True)`` or ``REPRO_QOS=1``; under no overload
a QoS-on system is byte-identical to a QoS-off system.
"""

from repro.qos.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BackendHealth,
    CircuitBreaker,
)
from repro.qos.chaos import (
    CHAOS_ENV_VAR,
    ChaosBackend,
    ChaosEngine,
    SlowConsumer,
    resolve_chaos_seed,
)
from repro.qos.controller import QosController
from repro.qos.policy import (
    LANE_BULK,
    LANE_INTERACTIVE,
    LANE_NAMES,
    LANE_STANDARD,
    QOS_ENV_VAR,
    AdmissionPolicy,
    Degradation,
    QosConfig,
    SheddingPolicy,
    TokenBucket,
    lane_name,
    lane_of,
    resolve_qos_enabled,
)

__all__ = [
    "AdmissionPolicy",
    "BackendHealth",
    "CHAOS_ENV_VAR",
    "ChaosBackend",
    "ChaosEngine",
    "CircuitBreaker",
    "Degradation",
    "LANE_BULK",
    "LANE_INTERACTIVE",
    "LANE_NAMES",
    "LANE_STANDARD",
    "QOS_ENV_VAR",
    "QosConfig",
    "QosController",
    "SheddingPolicy",
    "SlowConsumer",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "TokenBucket",
    "lane_name",
    "lane_of",
    "resolve_chaos_seed",
    "resolve_qos_enabled",
]
