"""Per-backend health tracking: circuit breakers for federation members.

A federated scatter plan is only as healthy as its sickest member; the
paper's agent-first contract says a failing backend should be *tripped
out of the plan and reported*, not retried into timeout by every agent
in the swarm. Each backend gets a :class:`CircuitBreaker` with the
classic three states:

* **closed** — calls flow; outcomes land in a sliding window. The
  breaker trips open when the window's failure rate reaches the
  configured threshold (with a minimum call count, so one early error
  cannot trip it) or when the window's mean latency crosses the latency
  watermark (a backend that answers correctly but pathologically slowly
  is unavailable in every way that matters under load).
* **open** — calls are refused locally (a :class:`BackendUnavailable`
  envelope, never an exception into the agent loop) until the cooldown
  elapses.
* **half-open** — after the cooldown, a bounded number of probe calls
  are admitted; one success closes the breaker (window reset), one
  failure re-opens it with a fresh cooldown.

The clock is injectable so tests (and the deterministic chaos harness)
can walk a breaker through its whole lifecycle without sleeping.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Callable

from repro.obs.metrics import MetricAttr, MetricsRegistry
from repro.qos.policy import QosConfig

_LOG = logging.getLogger(__name__)

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate + latency circuit breaker for one named backend.

    Lifetime counters live in a metrics registry (labeled by backend)
    behind :class:`~repro.obs.metrics.MetricAttr` shims; ``stats()``
    keys and attribute reads are unchanged, and every mutation still
    happens under ``_lock``.
    """

    trips = MetricAttr("_m_trips")
    refusals = MetricAttr("_m_refusals")

    def __init__(
        self,
        name: str,
        config: QosConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.name = name
        self.config = config or QosConfig()
        self.clock = clock
        self.state = STATE_CLOSED
        self._lock = threading.Lock()
        #: Sliding outcome window: (ok, latency_ms) per recorded call.
        self._window: deque[tuple[bool, float]] = deque(
            maxlen=max(1, self.config.breaker_window)
        )
        self._opened_at = 0.0
        self._half_open_in_flight = 0
        #: Lifetime counters (observability; stats() reports them).
        registry = registry or MetricsRegistry()
        self.metrics_registry = registry
        self._m_trips = registry.counter(
            "repro_qos_breaker_trips_total",
            "Circuit-breaker trips per backend.",
            labelnames=("backend",),
        ).bind(backend=name)
        self._m_refusals = registry.counter(
            "repro_qos_breaker_refusals_total",
            "Calls refused by an open or saturated breaker, per backend.",
            labelnames=("backend",),
        ).bind(backend=name)
        self.trips = 0
        self.refusals = 0

    # -- admission -------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now? (Open breakers admit nothing;
        half-open breakers admit a bounded number of recovery probes.)"""
        with self._lock:
            if self.state == STATE_CLOSED:
                return True
            if self.state == STATE_OPEN:
                if self.clock() - self._opened_at >= self.config.breaker_cooldown_s:
                    self.state = STATE_HALF_OPEN
                    self._half_open_in_flight = 0
                else:
                    self.refusals += 1
                    return False
            # Half-open: admit up to the configured number of probes.
            if self._half_open_in_flight < self.config.breaker_half_open_probes:
                self._half_open_in_flight += 1
                return True
            self.refusals += 1
            return False

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker next admits a recovery probe."""
        with self._lock:
            if self.state != STATE_OPEN:
                return 0.0
            elapsed = self.clock() - self._opened_at
            return max(0.0, self.config.breaker_cooldown_s - elapsed)

    # -- outcome recording -----------------------------------------------------

    def record(self, ok: bool, latency_ms: float = 0.0) -> None:
        """Feed one call outcome into the breaker's state machine."""
        with self._lock:
            if self.state == STATE_HALF_OPEN:
                self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
                if ok:
                    # Recovery probe succeeded: close and forget history.
                    self.state = STATE_CLOSED
                    self._window.clear()
                else:
                    self._trip()
                return
            self._window.append((ok, latency_ms))
            if self.state == STATE_CLOSED and self._should_trip():
                self._trip()

    def _should_trip(self) -> bool:
        calls = len(self._window)
        if calls < max(1, self.config.breaker_min_calls):
            return False
        failures = sum(1 for ok, _ in self._window if not ok)
        if failures / calls >= self.config.breaker_failure_rate:
            return True
        latency_high = self.config.breaker_latency_ms
        if latency_high is not None:
            mean_latency = sum(ms for _, ms in self._window) / calls
            if mean_latency > latency_high:
                return True
        return False

    def _trip(self) -> None:
        # Callers hold self._lock.
        self.state = STATE_OPEN
        self._opened_at = self.clock()
        self._window.clear()
        self.trips += 1
        _LOG.warning(
            "circuit breaker tripped for backend %r (cooldown %.1fs)",
            self.name,
            self.config.breaker_cooldown_s,
        )

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "trips": self.trips,
                "refusals": self.refusals,
                "recent_calls": len(self._window),
            }


class BackendHealth:
    """Breaker registry for a federation's members.

    The federation consults :meth:`allow` before dispatching to a member
    and feeds every outcome back through :meth:`record`; scatter plans
    ask :meth:`excluded` for the members to drop (and the steering lines
    that report each exclusion to the agent).
    """

    def __init__(
        self,
        config: QosConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or QosConfig()
        self.clock = clock
        self.metrics_registry = registry or MetricsRegistry()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, backend: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(backend)
            if breaker is None:
                breaker = CircuitBreaker(
                    backend, self.config, self.clock, registry=self.metrics_registry
                )
                self._breakers[backend] = breaker
            return breaker

    def allow(self, backend: str) -> bool:
        return self.breaker(backend).allow()

    def record(self, backend: str, ok: bool, latency_ms: float = 0.0) -> None:
        self.breaker(backend).record(ok, latency_ms)

    def cooldown_remaining(self, backend: str) -> float:
        return self.breaker(backend).cooldown_remaining()

    def excluded(self) -> list[tuple[str, float]]:
        """Members currently refusing calls: (name, cooldown_remaining)."""
        with self._lock:
            breakers = list(self._breakers.values())
        out = []
        for breaker in breakers:
            if breaker.state == STATE_OPEN and breaker.cooldown_remaining() > 0.0:
                out.append((breaker.name, breaker.cooldown_remaining()))
        return sorted(out)

    def stats(self) -> dict:
        with self._lock:
            return {
                name: breaker.stats() for name, breaker in sorted(self._breakers.items())
            }
