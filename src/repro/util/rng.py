"""Named, seeded random streams.

All stochastic behaviour in the library (data generation, simulated agent
policies, sampling-based approximate execution) draws from an
:class:`RngStream` derived from an experiment-level seed plus a stream name,
so that independent components never consume from a shared generator and
every experiment replays bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.util.hashing import stable_hash_int

T = TypeVar("T")


def derive_seed(*parts: object) -> int:
    """Derive a 64-bit child seed from any hashable-by-stable_hash parts."""
    return stable_hash_int(tuple(_normalize(p) for p in parts))


def _normalize(part: object) -> object:
    if isinstance(part, (str, int, float, bool, bytes, tuple)) or part is None:
        return part
    return repr(part)


class RngStream:
    """A named deterministic random stream.

    Thin wrapper over :class:`random.Random` that (1) derives its seed from
    ``(seed, *name_parts)`` stably and (2) can spawn independent child
    streams, mirroring the "named streams" discipline of larger simulation
    codebases.
    """

    def __init__(self, seed: int, *name_parts: object) -> None:
        self.seed = seed
        self.name_parts = name_parts
        self._random = random.Random(derive_seed(seed, *name_parts))

    def child(self, *name_parts: object) -> "RngStream":
        """Spawn an independent stream keyed by additional name parts."""
        return RngStream(self.seed, *self.name_parts, *name_parts)

    # -- passthrough primitives ------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int = 1) -> list[T]:
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        self._random.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def weighted_choice(self, options: dict[T, float]) -> T:
        """Choose a key of ``options`` with probability proportional to value."""
        keys = list(options.keys())
        weights = [options[k] for k in keys]
        return self._random.choices(keys, weights=weights, k=1)[0]

    def poisson(self, lam: float) -> int:
        """Sample a Poisson variate via inversion (adequate for small lambda)."""
        if lam <= 0:
            return 0
        # Knuth's algorithm; lambda in this codebase is always modest (< 100).
        limit = 2.718281828459045 ** (-lam)
        count, product = 0, 1.0
        while True:
            product *= self._random.random()
            if product <= limit:
                return count
            count += 1
