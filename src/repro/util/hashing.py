"""Stable, process-independent hashing.

Python's built-in ``hash`` is salted per process, so anything that must be
reproducible across runs (plan fingerprints, embeddings, RNG stream seeds)
goes through these helpers instead.
"""

from __future__ import annotations

import hashlib
from typing import Any


def stable_hash(value: Any) -> str:
    """Return a 40-char hex digest that is stable across processes.

    ``value`` may be any composition of str/bytes/int/float/bool/None,
    tuples, lists, dicts and frozensets; containers are serialised
    structurally so that e.g. ``("a", 1)`` and ``["a", 1]`` differ.
    """
    hasher = hashlib.sha1()
    _feed(hasher, value)
    return hasher.hexdigest()


def stable_hash_int(value: Any, bits: int = 64) -> int:
    """Return a non-negative integer hash with ``bits`` bits of entropy."""
    digest = stable_hash(value)
    return int(digest, 16) % (1 << bits)


def _feed(hasher: "hashlib._Hash", value: Any) -> None:
    """Recursively feed ``value`` into ``hasher`` with type tags.

    Type tags prevent cross-type collisions such as ``1`` vs ``"1"``.
    """
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        hasher.update(b"I" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"F" + repr(value).encode())
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        hasher.update(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(value, bytes):
        hasher.update(b"Y" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, tuple):
        hasher.update(b"T" + str(len(value)).encode() + b"[")
        for item in value:
            _feed(hasher, item)
        hasher.update(b"]")
    elif isinstance(value, list):
        hasher.update(b"L" + str(len(value)).encode() + b"[")
        for item in value:
            _feed(hasher, item)
        hasher.update(b"]")
    elif isinstance(value, frozenset):
        # Hash members independently and combine order-insensitively.
        member_digests = sorted(stable_hash(item) for item in value)
        hasher.update(b"E" + str(len(value)).encode() + b"[")
        for digest in member_digests:
            hasher.update(digest.encode())
        hasher.update(b"]")
    elif isinstance(value, dict):
        items = sorted((stable_hash(k), v) for k, v in value.items())
        hasher.update(b"D" + str(len(items)).encode() + b"{")
        for key_digest, item in items:
            hasher.update(key_digest.encode())
            _feed(hasher, item)
        hasher.update(b"}")
    else:
        raise TypeError(f"stable_hash cannot hash values of type {type(value).__name__}")
