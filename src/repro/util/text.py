"""Small text helpers shared by the SQL front-end and the semantic layer."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize_identifier(name: str) -> str:
    """Normalise a SQL identifier for case-insensitive comparison."""
    return name.strip('"').lower()


def tokenize_words(text: str) -> list[str]:
    """Lower-case word tokens of ``text`` (alphanumeric runs)."""
    return _WORD_RE.findall(text.lower())


def character_ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of the word-normalised text, with boundary markers.

    Used by the deterministic hashed embedder; boundary markers make short
    words distinguishable from infixes (``#ca#`` vs ``cat``).
    """
    grams: list[str] = []
    for word in tokenize_words(text):
        padded = f"#{word}#"
        if len(padded) <= n:
            grams.append(padded)
            continue
        grams.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
    return grams


def singularize(word: str) -> str:
    """Crude English singularisation, sufficient for schema-name matching."""
    lowered = word.lower()
    if lowered.endswith("ies") and len(lowered) > 4:
        return lowered[:-3] + "y"
    if lowered.endswith("ses") and len(lowered) > 4:
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 3:
        return lowered[:-1]
    return lowered


def jaccard(left: set[str], right: set[str]) -> float:
    """Jaccard similarity of two sets; 0.0 when both are empty."""
    if not left and not right:
        return 0.0
    return len(left & right) / len(left | right)
