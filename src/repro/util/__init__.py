"""Shared utilities: stable hashing, seeded RNG streams, text, tables."""

from repro.util.hashing import stable_hash, stable_hash_int
from repro.util.rng import RngStream, derive_seed
from repro.util.tabulate import format_table
from repro.util.text import normalize_identifier, tokenize_words

__all__ = [
    "RngStream",
    "derive_seed",
    "format_table",
    "normalize_identifier",
    "stable_hash",
    "stable_hash_int",
    "tokenize_words",
]
