"""Plain-text table formatting for benchmark and experiment reports.

The benchmark harness prints every reproduced table/figure as an aligned
ASCII table so ``EXPERIMENTS.md`` and the bench output read like the paper's
own tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered = [[_render_cell(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict[str, dict[Any, float]],
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render one-or-more named series sharing an x-axis as a table.

    ``series`` maps series name -> {x value -> y value}. The x axis is the
    sorted union of all x values; missing points render blank.
    """
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label, *series.keys()]
    rows: list[list[Any]] = []
    for x in xs:
        row: list[Any] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("" if value is None else format(value, float_fmt))
        rows.append(row)
    return format_table(headers, rows, title=title)
