"""Plan execution.

A straightforward materialising executor: each operator consumes its
children's row lists and produces its own. Two features matter to the
agent-first layers above:

* **Work accounting** — every row an operator touches increments
  ``ExecContext.stats.rows_processed``; the MQO ablation and the probe
  optimizer's cost feedback are denominated in this unit.
* **Shared-work cache** — when an :class:`ExecContext` carries a
  :class:`SubplanCache`, every materialised subplan is recorded under its
  canonical fingerprint, and later executions (by any agent, in any probe)
  reuse it. This implements the paper's "sharing computation across
  redundant probes" (Sec. 5.2.1).
* **Sampling mode** — ``sample_rate < 1`` makes scans Bernoulli-sample
  their input with a seeded RNG and aggregates scale up, implementing the
  approximate execution that satisficing relies on (Sec. 5.2).
* **Compiled-expression memo** — agent swarms re-ask the same plans for
  whole sessions; expressions compile once per ``(plan-node strict
  fingerprint, slot)`` into a process-wide bounded memo instead of once
  per execution. Only subquery-free expressions are memoized: their
  closures capture row positions and constants, never executor state, so
  sharing them across executors, threads, and catalogs is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine import aggregates as agg_lib
from repro.engine.expressions import Compiled, SubqueryRunner, compile_expr
from repro.engine.result import ExecStats, QueryResult
from repro.errors import ExecutionError
from repro.obs import trace as obs_trace
from repro.plan import logical
from repro.plan.fingerprint import fingerprints
from repro.sql import nodes
from repro.storage.catalog import Catalog
from repro.storage.types import Row, Value, compare_values
from repro.util.rng import RngStream

#: Subplans smaller than this are cheaper to recompute than to look up —
#: the default for :attr:`ExecContext.min_cacheable_size`, shared with the
#: scheduler's dispatch backends so both sides key the cache identically.
DEFAULT_MIN_CACHEABLE_SIZE = 2


def subplan_cache_key(
    node: logical.PlanNode,
    sample_rate: float,
    sample_seed: int,
    min_cacheable_size: int = DEFAULT_MIN_CACHEABLE_SIZE,
) -> tuple | None:
    """The shared-work cache key for one subplan, or None when uncacheable.

    Single source of truth for cache keying: the executor uses it per
    materialised node, and the process-pool dispatch backend uses it to
    probe for (and install) whole-unit materialisations. The key includes
    the sampling rate — and, for sampled runs, the seed — so approximate
    and exact executions never alias.
    """
    digests = fingerprints(node)
    if digests.size < min_cacheable_size:
        return None
    if sample_rate >= 1.0:
        return (digests.strict, sample_rate)
    return (digests.strict, sample_rate, sample_seed)


class SubplanCache:
    """Fingerprint-keyed LRU cache of materialised subplan results.

    Shared across probes and agents — including interleaved use by the
    probe scheduler, where many agents' executions hammer one cache inside
    a single admission batch; a lock keeps the counters and the recency
    list consistent under that interleaving. The cache key includes the
    sampling rate (and, for sampled runs, the seed) so approximate and
    exact runs never alias. Entries are lists of row tuples (immutable
    enough to share safely).

    Eviction is true LRU: a ``get`` refreshes the entry's recency, so a
    hot subplan survives pressure from a stream of cold inserts.

    Lock discipline: every accessor — including ``__len__`` and the
    counter snapshot — takes ``_lock`` before touching ``_entries`` or the
    hit/miss/eviction counters; nothing reads shared state unlocked. New
    accessors must follow suit, and must not call other locked methods
    while holding the lock (it is not reentrant).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: OrderedDict[tuple, list[Row]] = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> list[Row] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, rows: list[Row]) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = rows
                return
            if len(self._entries) >= self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = rows

    def contains(self, key: tuple | None) -> bool:
        """Presence probe that observes nothing: no counters, no recency.

        The process-pool dispatch backend uses this to skip shipping units
        whose materialisation is already cached in-process; the serial
        replay's own ``get`` then records the hit exactly once.
        """
        if key is None:
            return False
        with self._lock:
            return key in self._entries

    def counters(self) -> tuple[int, int, int]:
        """A consistent (hits, misses, evictions) snapshot.

        The scheduler differences two snapshots to attribute hit/miss
        traffic to one admission batch.
        """
        with self._lock:
            return (self.hits, self.misses, self.evictions)

    def invalidate(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class ExecContext:
    """Per-execution knobs and counters."""

    sample_rate: float = 1.0
    sample_seed: int = 0
    cache: SubplanCache | None = None
    #: Subplans smaller than this are cheaper to recompute than to look up.
    min_cacheable_size: int = DEFAULT_MIN_CACHEABLE_SIZE
    stats: ExecStats = field(default_factory=ExecStats)


@dataclass
class ExprMemoStats:
    """Observability counters for the compiled-expression memo.

    Advisory (updates are not synchronised): the regression suite resets
    them around single-threaded workloads to prove that repeated probes of
    the same plan stop recompiling identical expression trees.
    """

    compilations: int = 0
    hits: int = 0

    def reset(self) -> None:
        self.compilations = 0
        self.hits = 0


EXPR_MEMO_STATS = ExprMemoStats()

#: Process-wide bounded LRU of compiled expressions, keyed by
#: (plan-node strict fingerprint, slot). Equal strict fingerprints imply
#: structurally identical nodes (modulo alias naming, which compilation
#: erases into row positions), so a memoized closure is interchangeable
#: with a fresh compile — the same equivalence the subplan cache already
#: relies on for whole materialisations. Guarded by ``_EXPR_MEMO_LOCK``.
_EXPR_MEMO: OrderedDict[tuple, Compiled] = OrderedDict()
_EXPR_MEMO_LOCK = threading.Lock()
_EXPR_MEMO_MAX = 4096

_SUBQUERY_EXPRS = (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)


#: Caches layered on top of the expression memo (the columnar engine's
#: kernel memo) register a clear callback here so ``clear_expr_memo``
#: drops them too — a kernel holds compiled closures, so clearing only
#: the expression memo would leave stale compiles reachable.
_EXPR_MEMO_CLEAR_HOOKS: list = []


def clear_expr_memo() -> None:
    """Drop all memoized compiled expressions (test isolation hook)."""
    with _EXPR_MEMO_LOCK:
        _EXPR_MEMO.clear()
    for hook in _EXPR_MEMO_CLEAR_HOOKS:
        hook()


def expr_memo_occupancy() -> int:
    """Entries currently memoized (metrics-registry collector input)."""
    with _EXPR_MEMO_LOCK:
        return len(_EXPR_MEMO)


def has_subquery(expr: nodes.Expr) -> bool:
    """True when the expression tree contains any subquery node."""
    return any(isinstance(n, _SUBQUERY_EXPRS) for n in nodes.walk(expr))


def memoized_compile(
    node: logical.PlanNode,
    slot: tuple,
    expr: nodes.Expr,
    output: tuple[logical.OutputCol, ...],
) -> Compiled:
    """Compile a subquery-free ``expr`` (one slot of ``node``) via the
    process-wide memo. Shared by the row executor and the columnar
    engine's lifted row closures, so both engines hit one memo entry per
    (strict fingerprint, slot). The caller must have ruled out subqueries
    (:func:`has_subquery`) — subquery closures capture executor state and
    may never be shared.
    """
    key = (fingerprints(node).strict, slot)
    with _EXPR_MEMO_LOCK:
        memoized = _EXPR_MEMO.get(key)
        if memoized is not None:
            _EXPR_MEMO.move_to_end(key)
            EXPR_MEMO_STATS.hits += 1
            return memoized
    EXPR_MEMO_STATS.compilations += 1
    compiled = compile_expr(expr, output, None)
    with _EXPR_MEMO_LOCK:
        if key not in _EXPR_MEMO and len(_EXPR_MEMO) >= _EXPR_MEMO_MAX:
            _EXPR_MEMO.popitem(last=False)
        _EXPR_MEMO[key] = compiled
    return compiled


class Executor(SubqueryRunner):
    """Executes logical plans against a catalog."""

    def __init__(self, catalog: Catalog, context: ExecContext | None = None) -> None:
        self._catalog = catalog
        self.context = context or ExecContext()
        self._estimate_errors: dict[str, float] = {}

    # -- compiled-expression memo ---------------------------------------------

    def _compile(
        self,
        node: logical.PlanNode,
        slot: tuple,
        expr: nodes.Expr,
        output: tuple[logical.OutputCol, ...],
    ) -> Compiled:
        """Compile ``expr`` (one slot of ``node``) through the shared memo.

        Subquery-bearing expressions are compiled fresh every time: their
        closures capture this executor (as the subquery runner) and memoise
        subquery results per compile, neither of which may outlive one
        execution. Everything else closes over row positions and constants
        only, and is shared process-wide.
        """
        if has_subquery(expr):
            EXPR_MEMO_STATS.compilations += 1
            return compile_expr(expr, output, self)
        return memoized_compile(node, slot, expr, output)

    # -- public API ----------------------------------------------------------

    def run(self, plan: logical.PlanNode) -> QueryResult:
        rows = self._execute(plan)
        columns = [col.name for col in plan.output]
        result = QueryResult(
            columns=columns,
            rows=rows,
            stats=self.context.stats,
            sample_rate=self.context.sample_rate,
        )
        if self.context.sample_rate < 1.0:
            result.estimate_errors = dict(self._estimate_errors)
        return result

    def run_select(self, select: nodes.Select) -> list[Row]:
        """Execute a subquery AST (SubqueryRunner protocol)."""
        from repro.plan.builder import build_plan
        from repro.plan.rules import optimize_plan

        plan = optimize_plan(build_plan(select, self._catalog), self._catalog)
        return self._execute(plan)

    # -- dispatch ----------------------------------------------------------------

    def _execute(self, node: logical.PlanNode) -> list[Row]:
        # One ambient-contextvar read is the whole tracing-off cost per
        # plan node; with a trace active each node gets its own span
        # (rows out, cache verdict) and recursion nests via the context.
        parent_span = obs_trace.current_span()
        if parent_span is None:
            return self._execute_inner(node, None)
        span = parent_span.child(f"node:{type(node).__name__}", engine="row")
        token = obs_trace.set_current(span)
        try:
            rows = self._execute_inner(node, span)
            span.attrs["rows_out"] = len(rows)
            return rows
        finally:
            obs_trace.reset_current(token)
            span.finish()

    def _execute_inner(self, node: logical.PlanNode, span) -> list[Row]:
        self.context.stats.operators_executed += 1
        cache = self.context.cache
        cache_key: tuple | None = None
        if cache is not None:
            cache_key = subplan_cache_key(
                node,
                self.context.sample_rate,
                self.context.sample_seed,
                self.context.min_cacheable_size,
            )
            # Sub-threshold subplans (cache_key None) were never cacheable:
            # skip the lookup entirely — taking the lock and counting a
            # miss for them inflated the miss counter and serialised
            # concurrent executions for nothing.
            if cache_key is not None:
                cached = cache.get(cache_key)
                if cached is not None:
                    self.context.stats.cache_hits += 1
                    if span is not None:
                        span.attrs["cache"] = "hit"
                    return cached
                self.context.stats.cache_misses += 1
                if span is not None:
                    span.attrs["cache"] = "miss"

        rows = self._execute_uncached(node)

        if cache is not None and cache_key is not None:
            cache.put(cache_key, rows)
        return rows

    def _execute_uncached(self, node: logical.PlanNode) -> list[Row]:
        if isinstance(node, logical.Scan):
            return self._exec_scan(node)
        if isinstance(node, logical.IndexScan):
            return self._exec_index_scan(node)
        if isinstance(node, logical.ViewScan):
            return self._exec_view_scan(node)
        if isinstance(node, logical.OneRow):
            return [()]
        if isinstance(node, logical.SubqueryScan):
            return self._execute(node.child)
        if isinstance(node, logical.Filter):
            return self._exec_filter(node)
        if isinstance(node, logical.Project):
            return self._exec_project(node)
        if isinstance(node, logical.HashJoin):
            return self._exec_hash_join(node)
        if isinstance(node, logical.NestedLoopJoin):
            return self._exec_nested_loop(node)
        if isinstance(node, logical.Aggregate):
            return self._exec_aggregate(node)
        if isinstance(node, logical.Sort):
            return self._exec_sort(node)
        if isinstance(node, logical.Limit):
            return self._exec_limit(node)
        if isinstance(node, logical.Distinct):
            return self._exec_distinct(node)
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    # -- leaves -------------------------------------------------------------------

    def _exec_scan(self, node: logical.Scan) -> list[Row]:
        table = self._catalog.table(node.table)
        positions = [table.schema.position_of(c) for c in node.columns]
        sampler = self._make_sampler(node.table)
        # Every input row is scanned and processed whether or not the
        # sampler keeps it, so the counters batch to the table size.
        stats = self.context.stats
        stats.rows_scanned += table.num_rows
        stats.rows_processed += table.num_rows
        rows: list[Row] = []
        rate = self.context.sample_rate
        for row in table.scan():
            if sampler is not None and not sampler.bernoulli(rate):
                continue
            rows.append(tuple(row[p] for p in positions))
        return rows

    def _exec_index_scan(self, node: logical.IndexScan) -> list[Row]:
        table = self._catalog.table(node.table)
        positions = [table.schema.position_of(c) for c in node.columns]
        if node.is_equality:
            # lookup_hash_index also finds maintenance-built auxiliary
            # indexes, which the planner never sees but rewritten plans use.
            index = self._catalog.lookup_hash_index(node.table, node.index_column)
            if index is None:
                if node.row_id_order:
                    # Maintenance-emitted node whose auxiliary index went
                    # stale between rewrite and execution: degrade to the
                    # equivalent predicate scan — never to an error.
                    row_ids = self._index_scan_fallback_ids(node, table)
                else:
                    raise ExecutionError(
                        f"missing hash index on {node.table}.{node.index_column}"
                    )
            else:
                row_ids = sorted(index.lookup(node.equal_value))
        else:
            sorted_index = self._catalog.lookup_sorted_index(
                node.table, node.index_column
            )
            if sorted_index is None:
                if node.row_id_order:
                    row_ids = self._index_scan_fallback_ids(node, table)
                else:
                    raise ExecutionError(
                        f"missing sorted index on {node.table}.{node.index_column}"
                    )
            else:
                row_ids = sorted_index.lookup_range(
                    node.low, node.high, node.low_inclusive, node.high_inclusive
                )
                if node.row_id_order:
                    # Base-table scan order, so a rewritten Filter-over-Scan
                    # keeps byte-identical output order.
                    row_ids = sorted(row_ids)
        sampler = self._make_sampler(node.table)
        stats = self.context.stats
        stats.rows_scanned += len(row_ids)
        stats.rows_processed += len(row_ids)
        rows: list[Row] = []
        rate = self.context.sample_rate
        for row_id in row_ids:
            if sampler is not None and not sampler.bernoulli(rate):
                continue
            row = table.get(row_id)
            rows.append(tuple(row[p] for p in positions))
        return rows

    def _index_scan_fallback_ids(self, node: logical.IndexScan, table) -> list[int]:
        """Scan-order row ids matching the IndexScan's own condition.

        The degraded path for maintenance-emitted (row_id_order) index
        scans whose auxiliary index is gone or stale: the eq/range bound
        *is* the conjunct the rewrite lifted out of the Filter, and index
        lookups skip NULLs, so selecting the same rows in scan order is
        byte-identical to what the index would have served when fresh.
        """
        position = table.schema.position_of(node.index_column)
        out: list[int] = []
        for row_id, row in table.scan_with_ids():
            value = row[position]
            if value is None:
                continue
            if node.is_equality:
                if value == node.equal_value:
                    out.append(row_id)
                continue
            if node.low is not None:
                if node.low_inclusive:
                    if value < node.low:
                        continue
                elif value <= node.low:
                    continue
            if node.high is not None:
                if node.high_inclusive:
                    if value > node.high:
                        continue
                elif value >= node.high:
                    continue
            out.append(row_id)
        return out

    def _exec_view_scan(self, node: logical.ViewScan) -> list[Row]:
        """Serve a materialized view: the rows travel with the node.

        View rewrites are only applied to exact (sample_rate 1.0) runs, so
        no sampler is consulted; work accounting charges exactly the rows
        emitted — the saving the maintenance bench measures.
        """
        rows = node.materialized_rows()
        stats = self.context.stats
        stats.rows_scanned += len(rows)
        stats.rows_processed += len(rows)
        return rows

    def _make_sampler(self, table: str) -> RngStream | None:
        if self.context.sample_rate >= 1.0:
            return None
        return RngStream(self.context.sample_seed, "scan-sample", table)

    # -- row operators ---------------------------------------------------------------
    #
    # Each operator is split into a fetch half (`_exec_X`, which executes
    # the children) and a compute half (`_X_rows`, which consumes the
    # children's materialised rows and owns the work accounting). The
    # columnar executor reuses the compute halves verbatim as its per-node
    # fallback path: its children are already materialised as batches, so
    # falling back must not re-execute them (that would double-count cache
    # hits and operator executions).

    def _exec_filter(self, node: logical.Filter) -> list[Row]:
        return self._filter_rows(node, self._execute(node.child))

    def _filter_rows(self, node: logical.Filter, child_rows: list[Row]) -> list[Row]:
        predicate = self._compile(node, ("filter",), node.predicate, node.child.output)
        # The loop touches exactly len(child_rows) rows: batch the counter
        # once instead of chasing self.context.stats per row.
        self.context.stats.rows_processed += len(child_rows)
        out: list[Row] = []
        for row in child_rows:
            value = predicate(row)
            if value is not None and value is not False and value != 0:
                out.append(row)
        return out

    def _exec_project(self, node: logical.Project) -> list[Row]:
        return self._project_rows(node, self._execute(node.child))

    def _project_rows(self, node: logical.Project, child_rows: list[Row]) -> list[Row]:
        compiled = [
            self._compile(node, ("project", i), e, node.child.output)
            for i, e in enumerate(node.exprs)
        ]
        self.context.stats.rows_processed += len(child_rows)
        return [tuple(fn(row) for fn in compiled) for row in child_rows]

    def _exec_hash_join(self, node: logical.HashJoin) -> list[Row]:
        left_rows = self._execute(node.left)
        right_rows = self._execute(node.right)
        return self._hash_join_rows(node, left_rows, right_rows)

    def _hash_join_rows(
        self, node: logical.HashJoin, left_rows: list[Row], right_rows: list[Row]
    ) -> list[Row]:
        left_keys = [
            self._compile(node, ("hj-left", i), k, node.left.output)
            for i, k in enumerate(node.left_keys)
        ]
        right_keys = [
            self._compile(node, ("hj-right", i), k, node.right.output)
            for i, k in enumerate(node.right_keys)
        ]
        residual = (
            self._compile(node, ("hj-residual",), node.residual, node.output)
            if node.residual is not None
            else None
        )
        # Build touches every left row, probe every right row.
        self.context.stats.rows_processed += len(left_rows) + len(right_rows)

        build: dict[tuple, list[int]] = {}
        for position, row in enumerate(left_rows):
            key = tuple(fn(row) for fn in left_keys)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(position)

        matched_left: set[int] = set()
        out: list[Row] = []
        for row in right_rows:
            key = tuple(fn(row) for fn in right_keys)
            if any(part is None for part in key):
                continue
            for position in build.get(key, ()):
                combined = left_rows[position] + row
                if residual is not None:
                    verdict = residual(combined)
                    if verdict is None or verdict is False or verdict == 0:
                        continue
                matched_left.add(position)
                out.append(combined)

        if node.kind == "LEFT":
            null_pad = (None,) * len(node.right.output)
            unmatched = [
                left_rows[i] + null_pad
                for i in range(len(left_rows))
                if i not in matched_left
            ]
            # Preserve left-row order for null-extended output.
            out.extend(unmatched)
        return out

    def _exec_nested_loop(self, node: logical.NestedLoopJoin) -> list[Row]:
        left_rows = self._execute(node.left)
        right_rows = self._execute(node.right)
        return self._nested_loop_rows(node, left_rows, right_rows)

    def _nested_loop_rows(
        self,
        node: logical.NestedLoopJoin,
        left_rows: list[Row],
        right_rows: list[Row],
    ) -> list[Row]:
        condition = (
            self._compile(node, ("nl-cond",), node.condition, node.output)
            if node.condition is not None
            else None
        )
        out: list[Row] = []
        null_pad = (None,) * len(node.right.output)
        # The inner loop runs once per (left, right) pair unconditionally.
        self.context.stats.rows_processed += len(left_rows) * len(right_rows)
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is not None:
                    verdict = condition(combined)
                    if verdict is None or verdict is False or verdict == 0:
                        continue
                matched = True
                out.append(combined)
            if node.kind == "LEFT" and not matched:
                out.append(left_row + null_pad)
        return out

    def _exec_aggregate(self, node: logical.Aggregate) -> list[Row]:
        return self._aggregate_rows(node, self._execute(node.child))

    def _aggregate_rows(
        self, node: logical.Aggregate, child_rows: list[Row]
    ) -> list[Row]:
        group_fns = [
            self._compile(node, ("group", i), e, node.child.output)
            for i, e in enumerate(node.group_exprs)
        ]

        # Accumulator argument expressions route through the memo too:
        # they recompile per *group* today, so hot group-bys pay the most.
        arg_slots = {
            id(arg): ("agg-arg", call_index, arg_index)
            for call_index, call in enumerate(node.agg_calls)
            for arg_index, arg in enumerate(call.args)
        }

        def compile_arg(expr: nodes.Expr):
            slot = arg_slots.get(id(expr))
            if slot is None:  # not a declared argument: compile directly
                return compile_expr(expr, node.child.output, self)
            return self._compile(node, slot, expr, node.child.output)

        self.context.stats.rows_processed += len(child_rows)
        groups: dict[tuple, list[agg_lib.Accumulator]] = {}
        order: list[tuple] = []
        for row in child_rows:
            key = tuple(fn(row) for fn in group_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    agg_lib.make_accumulator(call, compile_arg)
                    for call in node.agg_calls
                ]
                groups[key] = accumulators
                order.append(key)
            for accumulator in accumulators:
                accumulator.add(row)

        if not groups and not node.group_exprs:
            # Global aggregate over empty input: one row of identity values.
            accumulators = [
                agg_lib.make_accumulator(call, compile_arg) for call in node.agg_calls
            ]
            groups[()] = accumulators
            order.append(())

        scale = 1.0 / self.context.sample_rate if self.context.sample_rate < 1.0 else 1.0
        self._estimate_errors = {}
        out: list[Row] = []
        for key in order:
            values: list[Value] = list(key)
            for name, accumulator in zip(node.agg_names, groups[key]):
                value, error = accumulator.result(scale)
                values.append(value)
                if error is not None:
                    self._estimate_errors[name] = max(
                        self._estimate_errors.get(name, 0.0), error
                    )
            out.append(tuple(values))
        return out

    def _exec_sort(self, node: logical.Sort) -> list[Row]:
        return self._sort_rows(node, self._execute(node.child))

    def _sort_rows(self, node: logical.Sort, child_rows: list[Row]) -> list[Row]:
        compiled = [
            (self._compile(node, ("sort", i), expr, node.child.output), ascending)
            for i, (expr, ascending) in enumerate(node.keys)
        ]
        self.context.stats.rows_processed += len(child_rows)

        def sort_key(row: Row) -> tuple:
            parts = []
            for fn, ascending in compiled:
                parts.append(_SortKey(fn(row), ascending))
            return tuple(parts)

        return sorted(child_rows, key=sort_key)

    def _exec_limit(self, node: logical.Limit) -> list[Row]:
        return self._limit_rows(node, self._execute(node.child))

    def _limit_rows(self, node: logical.Limit, child_rows: list[Row]) -> list[Row]:
        start = node.offset
        if node.limit is None:
            return child_rows[start:]
        return child_rows[start : start + node.limit]

    def _exec_distinct(self, node: logical.Distinct) -> list[Row]:
        return self._distinct_rows(node, self._execute(node.child))

    def _distinct_rows(self, node: logical.Distinct, child_rows: list[Row]) -> list[Row]:
        self.context.stats.rows_processed += len(child_rows)
        seen: set[Row] = set()
        out: list[Row] = []
        for row in child_rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out


class _SortKey:
    """Ordering wrapper: NULLs first ascending, last descending."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Value, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        left, right = self.value, other.value
        if left is None and right is None:
            return False
        if left is None:
            return self.ascending
        if right is None:
            return not self.ascending
        ordering = compare_values(left, right)
        if ordering is None or ordering == 0:
            return False
        return ordering < 0 if self.ascending else ordering > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        if self.value is None and other.value is None:
            return True
        if self.value is None or other.value is None:
            return False
        return compare_values(self.value, other.value) == 0
