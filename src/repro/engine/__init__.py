"""Execution engine: expression compiler, operators, results, AQP."""

from repro.engine.executor import ExecContext, Executor, SubplanCache
from repro.engine.result import ExecStats, QueryResult

__all__ = ["ExecContext", "ExecStats", "Executor", "QueryResult", "SubplanCache"]
