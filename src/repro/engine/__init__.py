"""Execution engine: expression compiler, operators, results, AQP.

Two engines share one semantics: the row-at-a-time :class:`Executor` and
the vectorized :class:`ColumnarExecutor` (batch-at-a-time kernels, proven
byte-identical node by node). :func:`make_executor` selects between them
from ``SystemConfig.engine`` / the ``REPRO_ENGINE`` env override.
"""

from repro.engine.executor import ExecContext, Executor, SubplanCache
from repro.engine.result import ExecStats, QueryResult

# columnar imports executor, so it must come after.
from repro.engine.columnar import (  # noqa: E402
    ENGINE_ENV_VAR,
    ColumnBatch,
    ColumnarExecutor,
    make_executor,
    resolve_engine,
)

__all__ = [
    "ENGINE_ENV_VAR",
    "ColumnBatch",
    "ColumnarExecutor",
    "ExecContext",
    "ExecStats",
    "Executor",
    "QueryResult",
    "SubplanCache",
    "make_executor",
    "resolve_engine",
]
