"""Query results and execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.types import Row
from repro.util.hashing import stable_hash
from repro.util.tabulate import format_table


@dataclass
class ExecStats:
    """Work counters accumulated during execution.

    ``rows_processed`` is the engine's abstract work unit (every row an
    operator touches); the MQO ablation reports savings in this unit.
    ``cache_hits`` counts subplans answered from the shared-work cache.
    """

    rows_scanned: int = 0
    rows_processed: int = 0
    operators_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def merge(self, other: "ExecStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_processed += other.rows_processed
        self.operators_executed += other.operators_executed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses


@dataclass
class QueryResult:
    """Rows plus metadata from executing one statement.

    ``sample_rate`` < 1.0 marks an approximate result produced by the
    sampling executor; scaled aggregates carry their standard error in
    ``estimate_errors`` keyed by output column name.
    """

    columns: list[str]
    rows: list[Row]
    stats: ExecStats = field(default_factory=ExecStats)
    sample_rate: float = 1.0
    estimate_errors: dict[str, float] = field(default_factory=dict)

    @property
    def is_approximate(self) -> bool:
        return self.sample_rate < 1.0

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def first_value(self):
        """The single value of a 1x1 result (raises otherwise)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column_values(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def signature(self) -> str:
        """Order-insensitive content hash; the supervisor's voting key.

        Two attempts that produce the same multiset of rows (in any order)
        vote for the same answer — mirroring result-based self-consistency.
        """
        normalized = sorted(stable_hash(row) for row in self.rows)
        return stable_hash((tuple(self.columns), tuple(normalized)))

    def to_text(self, limit: int = 20) -> str:
        shown = self.rows[:limit]
        suffix = "" if len(self.rows) <= limit else f"\n... ({len(self.rows)} rows total)"
        return format_table(self.columns, shown) + suffix
