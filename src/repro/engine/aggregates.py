"""Aggregate accumulators with optional sampling scale-up.

When the executor runs in sampling mode (approximate query processing,
paper Sec. 5.2), COUNT and SUM results are scaled by ``1 / sample_rate``
and each scaled aggregate reports a standard error so callers can reason
about answer quality. AVG/MIN/MAX are returned unscaled (AVG is already a
ratio estimator; MIN/MAX cannot be corrected by scaling).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ExecutionError
from repro.sql import nodes
from repro.storage.types import Row, Value, compare_values


class Accumulator:
    """One aggregate's running state over a group."""

    def add(self, row: Row) -> None:
        raise NotImplementedError

    def result(self, scale: float) -> tuple[Value, float | None]:
        """Final value and (if scaled) an estimated standard error."""
        raise NotImplementedError


class _CountStar(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, row: Row) -> None:
        self.count += 1

    def result(self, scale: float) -> tuple[Value, float | None]:
        if scale == 1.0:
            return self.count, None
        estimate = self.count * scale
        # Bernoulli sampling: Var(N_hat) = n * (1-p) / p^2 with p = 1/scale.
        p = 1.0 / scale
        error = math.sqrt(self.count * (1.0 - p)) / p if self.count else 0.0
        return round(estimate), error


class _CountExpr(Accumulator):
    def __init__(self, fn: Callable[[Row], Value], distinct: bool) -> None:
        self._fn = fn
        self._distinct = distinct
        self._seen: set[Value] = set()
        self.count = 0

    def add(self, row: Row) -> None:
        value = self._fn(row)
        if value is None:
            return
        if self._distinct:
            self._seen.add(value)
        else:
            self.count += 1

    def result(self, scale: float) -> tuple[Value, float | None]:
        count = len(self._seen) if self._distinct else self.count
        if scale == 1.0 or self._distinct:
            # Distinct counts are not scaled: sampling distorts NDV in ways
            # linear scale-up cannot correct.
            return count, None
        p = 1.0 / scale
        error = math.sqrt(count * (1.0 - p)) / p if count else 0.0
        return round(count * scale), error


class _Sum(Accumulator):
    def __init__(self, fn: Callable[[Row], Value]) -> None:
        self._fn = fn
        self.total: float = 0.0
        self.total_sq: float = 0.0
        self.count = 0
        self.any_float = False

    def add(self, row: Row) -> None:
        value = self._fn(row)
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM over non-numeric value {value!r}")
        self.total += value
        self.total_sq += float(value) * float(value)
        self.count += 1
        if isinstance(value, float):
            self.any_float = True

    def result(self, scale: float) -> tuple[Value, float | None]:
        if self.count == 0:
            return None, None
        total: Value = self.total if self.any_float else int(self.total)
        if scale == 1.0:
            return total, None
        p = 1.0 / scale
        variance = max(self.total_sq * (1.0 - p) / (p * p), 0.0)
        return self.total * scale, math.sqrt(variance)


class _Avg(Accumulator):
    def __init__(self, fn: Callable[[Row], Value]) -> None:
        self._fn = fn
        self.total = 0.0
        self.total_sq = 0.0
        self.count = 0

    def add(self, row: Row) -> None:
        value = self._fn(row)
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG over non-numeric value {value!r}")
        self.total += float(value)
        self.total_sq += float(value) ** 2
        self.count += 1

    def result(self, scale: float) -> tuple[Value, float | None]:
        if self.count == 0:
            return None, None
        mean = self.total / self.count
        if scale == 1.0:
            return mean, None
        variance = max(self.total_sq / self.count - mean * mean, 0.0)
        return mean, math.sqrt(variance / self.count)


class _MinMax(Accumulator):
    def __init__(self, fn: Callable[[Row], Value], is_min: bool) -> None:
        self._fn = fn
        self._is_min = is_min
        self.best: Value = None

    def add(self, row: Row) -> None:
        value = self._fn(row)
        if value is None:
            return
        if self.best is None:
            self.best = value
            return
        ordering = compare_values(value, self.best)
        if ordering is None:
            return
        if (self._is_min and ordering < 0) or (not self._is_min and ordering > 0):
            self.best = value

    def result(self, scale: float) -> tuple[Value, float | None]:
        return self.best, None


def make_accumulator(
    call: nodes.FuncCall, compile_arg: Callable[[nodes.Expr], Callable[[Row], Value]]
) -> Accumulator:
    """Build a fresh accumulator for one aggregate call."""
    name = call.name
    if name == "COUNT":
        if len(call.args) != 1:
            raise ExecutionError("COUNT expects exactly one argument")
        if isinstance(call.args[0], nodes.Star):
            return _CountStar()
        return _CountExpr(compile_arg(call.args[0]), call.distinct)
    if len(call.args) != 1 or isinstance(call.args[0], nodes.Star):
        raise ExecutionError(f"{name} expects exactly one column argument")
    fn = compile_arg(call.args[0])
    if name == "SUM":
        return _Sum(fn)
    if name == "AVG":
        return _Avg(fn)
    if name == "MIN":
        return _MinMax(fn, is_min=True)
    if name == "MAX":
        return _MinMax(fn, is_min=False)
    raise ExecutionError(f"unknown aggregate function {name!r}")
