"""Expression compilation.

Expressions compile once per operator into closures over row tuples. The
compiler resolves column references against the child operator's output
schema positionally, implements SQL three-valued logic, NULL propagation,
LIKE, and the scalar function library. Uncorrelated subqueries execute
lazily exactly once and memoise their result.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import ExecutionError, PlanError
from repro.plan.logical import OutputCol
from repro.sql import nodes
from repro.storage.types import Row, Value, compare_values

#: A compiled expression: row -> value.
Compiled = Callable[[Row], Value]


class SubqueryRunner:
    """Callback protocol for executing subquery plans (provided by Executor)."""

    def run_select(self, select: nodes.Select) -> list[Row]:
        raise NotImplementedError


def compile_expr(
    expr: nodes.Expr,
    output: tuple[OutputCol, ...],
    subqueries: SubqueryRunner | None = None,
) -> Compiled:
    """Compile ``expr`` against an operator output schema."""
    return _Compiler(output, subqueries).compile(expr)


def resolve_column(ref: nodes.ColumnRef, output: tuple[OutputCol, ...]) -> int:
    """Resolve a column reference to its position in ``output``.

    The same resolution (and the same missing/ambiguous errors) the row
    compiler applies; exported for the columnar engine's zero-copy
    column-reference kernels.
    """
    return _Compiler(output, None)._resolve(ref)


class _Compiler:
    def __init__(
        self, output: tuple[OutputCol, ...], subqueries: SubqueryRunner | None
    ) -> None:
        self._output = output
        self._subqueries = subqueries

    def compile(self, expr: nodes.Expr) -> Compiled:
        if isinstance(expr, nodes.Literal):
            value = expr.value
            return lambda row: value
        if isinstance(expr, nodes.ColumnRef):
            index = self._resolve(expr)
            return lambda row: row[index]
        if isinstance(expr, nodes.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, nodes.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, nodes.IsNull):
            operand = self.compile(expr.operand)
            if expr.negated:
                return lambda row: operand(row) is not None
            return lambda row: operand(row) is None
        if isinstance(expr, nodes.InList):
            return self._compile_in_list(expr)
        if isinstance(expr, nodes.Between):
            return self._compile_between(expr)
        if isinstance(expr, nodes.FuncCall):
            return self._compile_function(expr)
        if isinstance(expr, nodes.Case):
            return self._compile_case(expr)
        if isinstance(expr, nodes.Cast):
            return self._compile_cast(expr)
        if isinstance(expr, nodes.InSubquery):
            return self._compile_in_subquery(expr)
        if isinstance(expr, nodes.ScalarSubquery):
            return self._compile_scalar_subquery(expr)
        if isinstance(expr, nodes.Exists):
            return self._compile_exists(expr)
        if isinstance(expr, nodes.Star):
            raise ExecutionError("'*' cannot be evaluated as a scalar expression")
        raise ExecutionError(f"cannot compile expression {type(expr).__name__}")

    # -- resolution ---------------------------------------------------------

    def _resolve(self, ref: nodes.ColumnRef) -> int:
        matches = [
            position
            for position, col in enumerate(self._output)
            if col.matches(ref.column, ref.table)
        ]
        if not matches:
            raise PlanError(f"no such column at execution: {ref.sql()!r}")
        if ref.table is None and len(matches) > 1:
            raise PlanError(f"ambiguous column at execution: {ref.sql()!r}")
        return matches[0]

    # -- operators ------------------------------------------------------------

    def _compile_unary(self, expr: nodes.Unary) -> Compiled:
        operand = self.compile(expr.operand)
        if expr.op == "-":
            def negate(row: Row) -> Value:
                value = operand(row)
                if value is None:
                    return None
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return -value
                raise ExecutionError(f"cannot negate {value!r}")

            return negate
        if expr.op == "NOT":
            def negation(row: Row) -> Value:
                value = operand(row)
                if value is None:
                    return None
                return not _truthy(value)

            return negation
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _compile_binary(self, expr: nodes.Binary) -> Compiled:
        op = expr.op
        if op == "AND":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def and_(row: Row) -> Value:
                lval = left(row)
                if lval is not None and not _truthy(lval):
                    return False
                rval = right(row)
                if rval is not None and not _truthy(rval):
                    return False
                if lval is None or rval is None:
                    return None
                return True

            return and_
        if op == "OR":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def or_(row: Row) -> Value:
                lval = left(row)
                if lval is not None and _truthy(lval):
                    return True
                rval = right(row)
                if rval is not None and _truthy(rval):
                    return True
                if lval is None or rval is None:
                    return None
                return False

            return or_
        if op in ("=", "<>", "<", "<=", ">", ">="):
            left, right = self.compile(expr.left), self.compile(expr.right)

            def comparison(row: Row) -> Value:
                ordering = compare_values(left(row), right(row))
                if ordering is None:
                    return None
                return {
                    "=": ordering == 0,
                    "<>": ordering != 0,
                    "<": ordering < 0,
                    "<=": ordering <= 0,
                    ">": ordering > 0,
                    ">=": ordering >= 0,
                }[op]

            return comparison
        if op in ("+", "-", "*", "/", "%"):
            return self._compile_arithmetic(expr)
        if op == "||":
            left, right = self.compile(expr.left), self.compile(expr.right)

            def concat(row: Row) -> Value:
                lval, rval = left(row), right(row)
                if lval is None or rval is None:
                    return None
                return _to_text(lval) + _to_text(rval)

            return concat
        if op in ("LIKE", "NOT LIKE"):
            return self._compile_like(expr)
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _compile_arithmetic(self, expr: nodes.Binary) -> Compiled:
        left, right = self.compile(expr.left), self.compile(expr.right)
        op = expr.op

        def arithmetic(row: Row) -> Value:
            lval, rval = left(row), right(row)
            if lval is None or rval is None:
                return None
            if not _numeric(lval) or not _numeric(rval):
                raise ExecutionError(
                    f"arithmetic {op!r} on non-numeric operands"
                    f" ({type(lval).__name__}, {type(rval).__name__})"
                )
            if op == "+":
                return lval + rval
            if op == "-":
                return lval - rval
            if op == "*":
                return lval * rval
            if op == "/":
                if rval == 0:
                    raise ExecutionError("division by zero")
                return lval / rval
            if rval == 0:
                raise ExecutionError("modulo by zero")
            return lval % rval

        return arithmetic

    def _compile_like(self, expr: nodes.Binary) -> Compiled:
        operand = self.compile(expr.left)
        negated = expr.op == "NOT LIKE"
        if isinstance(expr.right, nodes.Literal) and isinstance(expr.right.value, str):
            pattern = _like_regex(expr.right.value)

            def like_static(row: Row) -> Value:
                value = operand(row)
                if value is None:
                    return None
                matched = pattern.match(_to_text(value)) is not None
                return (not matched) if negated else matched

            return like_static
        right = self.compile(expr.right)

        def like_dynamic(row: Row) -> Value:
            value, pattern_text = operand(row), right(row)
            if value is None or pattern_text is None:
                return None
            matched = _like_regex(_to_text(pattern_text)).match(_to_text(value))
            return (matched is None) if negated else (matched is not None)

        return like_dynamic

    def _compile_in_list(self, expr: nodes.InList) -> Compiled:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def in_list(row: Row) -> Value:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                    continue
                ordering = compare_values(value, candidate)
                if ordering == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list

    def _compile_between(self, expr: nodes.Between) -> Compiled:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def between(row: Row) -> Value:
            value = operand(row)
            low_value, high_value = low(row), high(row)
            lower = compare_values(value, low_value)
            upper = compare_values(value, high_value)
            if lower is None or upper is None:
                return None
            inside = lower >= 0 and upper <= 0
            return (not inside) if negated else inside

        return between

    def _compile_case(self, expr: nodes.Case) -> Compiled:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        else_fn = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )

        def case(row: Row) -> Value:
            for condition, result in whens:
                value = condition(row)
                if value is not None and _truthy(value):
                    return result(row)
            return else_fn(row) if else_fn is not None else None

        return case

    def _compile_cast(self, expr: nodes.Cast) -> Compiled:
        from repro.storage.types import DataType, coerce_value

        operand = self.compile(expr.operand)
        target = DataType.parse(expr.type_name)

        def cast(row: Row) -> Value:
            return coerce_value(operand(row), target)

        return cast

    # -- subqueries ---------------------------------------------------------------

    def _require_runner(self) -> SubqueryRunner:
        if self._subqueries is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self._subqueries

    def _compile_in_subquery(self, expr: nodes.InSubquery) -> Compiled:
        runner = self._require_runner()
        operand = self.compile(expr.operand)
        negated = expr.negated
        cache: dict[str, tuple[set, bool]] = {}

        def in_subquery(row: Row) -> Value:
            if "result" not in cache:
                rows = runner.run_select(expr.subquery)
                if rows and len(rows[0]) != 1:
                    raise ExecutionError("IN subquery must return a single column")
                values = {r[0] for r in rows if r[0] is not None}
                has_null = any(r[0] is None for r in rows)
                cache["result"] = (values, has_null)
            values, has_null = cache["result"]
            value = operand(row)
            if value is None:
                return None
            if value in values:
                return not negated
            if has_null:
                return None
            return negated

        return in_subquery

    def _compile_scalar_subquery(self, expr: nodes.ScalarSubquery) -> Compiled:
        runner = self._require_runner()
        cache: dict[str, Value] = {}

        def scalar(row: Row) -> Value:
            if "value" not in cache:
                rows = runner.run_select(expr.subquery)
                if len(rows) > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                if rows and len(rows[0]) != 1:
                    raise ExecutionError("scalar subquery must return a single column")
                cache["value"] = rows[0][0] if rows else None
            return cache["value"]

        return scalar

    def _compile_exists(self, expr: nodes.Exists) -> Compiled:
        runner = self._require_runner()
        negated = expr.negated
        cache: dict[str, bool] = {}

        def exists(row: Row) -> Value:
            if "value" not in cache:
                cache["value"] = bool(runner.run_select(expr.subquery))
            return (not cache["value"]) if negated else cache["value"]

        return exists

    # -- scalar functions -----------------------------------------------------------

    def _compile_function(self, expr: nodes.FuncCall) -> Compiled:
        name = expr.name
        if name in nodes.AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"aggregate function {name} used outside an aggregation context"
            )
        args = [self.compile(arg) for arg in expr.args]
        try:
            return _SCALAR_FUNCTIONS[name](args)
        except KeyError as exc:
            known = ", ".join(sorted(_SCALAR_FUNCTIONS))
            raise PlanError(f"unknown function {name!r}; known: {known}") from exc


# ---------------------------------------------------------------------------
# scalar function library
# ---------------------------------------------------------------------------


def _nullsafe1(fn: Callable[[Value], Value]) -> Callable[[list[Compiled]], Compiled]:
    def factory(args: list[Compiled]) -> Compiled:
        if len(args) != 1:
            raise PlanError("function expects exactly one argument")
        (arg,) = args

        def call(row: Row) -> Value:
            value = arg(row)
            return None if value is None else fn(value)

        return call

    return factory


def _fn_round(args: list[Compiled]) -> Compiled:
    if len(args) not in (1, 2):
        raise PlanError("ROUND expects one or two arguments")

    def call(row: Row) -> Value:
        value = args[0](row)
        if value is None:
            return None
        digits = 0
        if len(args) == 2:
            digits_value = args[1](row)
            if digits_value is None:
                return None
            digits = int(digits_value)
        return round(float(value), digits)

    return call


def _fn_coalesce(args: list[Compiled]) -> Compiled:
    if not args:
        raise PlanError("COALESCE expects at least one argument")

    def call(row: Row) -> Value:
        for arg in args:
            value = arg(row)
            if value is not None:
                return value
        return None

    return call


def _fn_nullif(args: list[Compiled]) -> Compiled:
    if len(args) != 2:
        raise PlanError("NULLIF expects two arguments")

    def call(row: Row) -> Value:
        first, second = args[0](row), args[1](row)
        if first is not None and second is not None and compare_values(first, second) == 0:
            return None
        return first

    return call


def _fn_substr(args: list[Compiled]) -> Compiled:
    if len(args) not in (2, 3):
        raise PlanError("SUBSTR expects two or three arguments")

    def call(row: Row) -> Value:
        text = args[0](row)
        start = args[1](row)
        if text is None or start is None:
            return None
        text = _to_text(text)
        begin = max(int(start) - 1, 0)
        if len(args) == 3:
            length = args[2](row)
            if length is None:
                return None
            return text[begin : begin + int(length)]
        return text[begin:]

    return call


def _fn_concat(args: list[Compiled]) -> Compiled:
    def call(row: Row) -> Value:
        pieces = []
        for arg in args:
            value = arg(row)
            if value is None:
                return None
            pieces.append(_to_text(value))
        return "".join(pieces)

    return call


def _fn_replace(args: list[Compiled]) -> Compiled:
    if len(args) != 3:
        raise PlanError("REPLACE expects three arguments")

    def call(row: Row) -> Value:
        text, old, new = args[0](row), args[1](row), args[2](row)
        if text is None or old is None or new is None:
            return None
        return _to_text(text).replace(_to_text(old), _to_text(new))

    return call


_SCALAR_FUNCTIONS: dict[str, Callable[[list[Compiled]], Compiled]] = {
    "LOWER": _nullsafe1(lambda v: _to_text(v).lower()),
    "UPPER": _nullsafe1(lambda v: _to_text(v).upper()),
    "LENGTH": _nullsafe1(lambda v: len(_to_text(v))),
    "TRIM": _nullsafe1(lambda v: _to_text(v).strip()),
    "ABS": _nullsafe1(lambda v: abs(v) if _numeric(v) else _raise_numeric("ABS", v)),
    "ROUND": _fn_round,
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "CONCAT": _fn_concat,
    "REPLACE": _fn_replace,
}


def _raise_numeric(name: str, value: Value) -> Value:
    raise ExecutionError(f"{name} expects a numeric argument, got {value!r}")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _truthy(value: Value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"expected a boolean, got {value!r}")


def _numeric(value: Value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _to_text(value: Value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


#: Public aliases for the value-semantics helpers. The columnar engine's
#: vectorized kernels must apply *exactly* these functions per element —
#: sharing one definition is what keeps the two engines byte-identical.
truthy = _truthy
numeric = _numeric
to_text = _to_text


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


like_regex = _like_regex
