"""Vectorized columnar execution.

The row executor is correct but touches every value through a per-row
closure call. This module executes the same logical plans batch-at-a-time:
each operator consumes and produces a :class:`ColumnBatch` (one Python
list per column, mirrored into numpy arrays for dtype-uniform numeric
columns), and expressions compile into **batch kernels** — functions from
a batch to a full value column — memoized per plan-node strict
fingerprint alongside the row engine's ``compile_expr`` LRU.

Byte-identity is the contract, not a goal: ``REPRO_ENGINE=columnar`` must
produce exactly the row engine's rows, ordering, statuses, steering, and
work accounting. Three mechanisms enforce it:

* **Shared semantics** — kernels apply the *same* helper functions
  (``compare_values``, ``truthy``, ``to_text``, the LIKE regex cache) per
  element that the row compiler's closures apply, and any expression shape
  without a specialized kernel is *lifted*: its row closure (from the same
  process-wide expression memo) is mapped over the batch's row view.
* **Per-node fallback** — any error raised while building or running a
  kernel restores the stats counters and recomputes that node through the
  row engine's compute half on the already-materialised child rows, so
  even error messages and evaluation-order corner cases (eager kernels
  evaluate a superset of what short-circuiting row closures evaluate)
  come out byte-identical. Subquery-bearing expressions and ``IndexScan``
  leaves take this path unconditionally.
* **One cache key** — batches enter and leave the shared
  :class:`~repro.engine.executor.SubplanCache` as plain row lists under
  the same :func:`~repro.engine.executor.subplan_cache_key`, so a
  columnar-produced materialisation serves row-engine consumers and vice
  versa.

Engine selection: ``SystemConfig.engine`` / an explicit ``engine=``
argument, overridden by the ``REPRO_ENGINE`` env var (``row`` |
``columnar`` | ``auto``); :func:`make_executor` is the factory every
serving path uses.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import compress
from typing import Callable

try:  # numpy is optional: kernels degrade to pure-Python loops without it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only on numpy-free installs
    _np = None

from repro.engine import executor as executor_module
from repro.engine import expressions as expr_lib
from repro.engine.executor import (
    EXPR_MEMO_STATS,
    ExecContext,
    Executor,
    _SortKey,
    has_subquery,
    memoized_compile,
    subplan_cache_key,
)
from repro.engine.expressions import (
    compile_expr,
    like_regex,
    resolve_column,
    to_text,
    truthy,
)
from repro.errors import ExecutionError
from repro.obs import trace as obs_trace
from repro.plan import logical
from repro.plan.fingerprint import fingerprints
from repro.sql import nodes
from repro.storage.catalog import Catalog
from repro.storage.types import Row, Value, compare_values

#: Engine-selection env override, mirroring REPRO_SCHEDULER_BACKEND et al.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Nested-loop pair expansions beyond this bail to the row engine, which
#: streams pairs instead of materialising the cross product.
_MAX_NESTED_PAIRS = 1_000_000

#: Integer literals beyond int64 range are excluded from the numpy
#: comparison fast path (kept well inside to dodge any dtype promotion).
_NUMPY_INT_LIMIT = 2**62

_MISSING = object()


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the execution engine: explicit config wins, else the
    ``REPRO_ENGINE`` env override, else ``"row"``. ``"auto"`` selects the
    columnar engine (its per-node fallback already degrades to row
    execution wherever vectorization does not apply); unrecognised values
    fall back to ``"row"``, matching the library's forgiving env idiom.
    """
    value = engine if engine is not None else os.environ.get(ENGINE_ENV_VAR)
    if not value:
        return "row"
    value = value.strip().lower()
    if value == "auto":
        return "columnar"
    return value if value in ("row", "columnar") else "row"


def make_executor(
    catalog: Catalog,
    context: ExecContext | None = None,
    engine: str | None = None,
) -> Executor:
    """Build the configured executor; the single engine-selection seam."""
    if resolve_engine(engine) == "columnar":
        return ColumnarExecutor(catalog, context)
    return Executor(catalog, context)


# ---------------------------------------------------------------------------
# the batch representation
# ---------------------------------------------------------------------------


class ColumnBatch:
    """A batch of rows stored column-major.

    ``columns`` holds one Python list per output column; ``length`` is
    explicit because zero-width batches (``OneRow``) still carry row
    counts. Columns are **immutable by convention**: kernels may return a
    batch's own column list zero-copy (a bare column reference projects
    for free), so nothing may mutate a column after construction.

    Two lazy caches ride along and are stripped from the pickle state —
    the same contract as ``PlanNode.__getstate__`` dropping its
    fingerprint memo, keeping process-pool payloads lean:

    * ``_rows`` — the row-major view (``to_rows`` result), built once and
      shared with the subplan cache and row-engine consumers;
    * ``_numpy`` — per-column numpy mirrors for dtype-uniform numeric
      columns (``None`` marks ineligible columns so the type sweep runs
      once).
    """

    __slots__ = ("columns", "length", "_rows", "_numpy")

    def __init__(self, columns: list[list[Value]], length: int) -> None:
        self.columns = columns
        self.length = length
        self._rows: list[Row] | None = None
        self._numpy: dict[int, object] = {}

    @classmethod
    def from_rows(cls, rows: list[Row], width: int) -> "ColumnBatch":
        if not rows or not width:
            return cls([[] for _ in range(width)], len(rows))
        return cls([list(column) for column in zip(*rows)], len(rows))

    def to_rows(self) -> list[Row]:
        """The row-major view, built once; callers share the list (the
        same sharing discipline the subplan cache already imposes)."""
        if self._rows is None:
            if not self.columns:
                self._rows = [()] * self.length
            elif not self.length:
                self._rows = []
            else:
                self._rows = list(zip(*self.columns))
        return self._rows

    def gather(self, indices: list[int]) -> "ColumnBatch":
        return ColumnBatch(
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    def numpy_column(self, index: int):
        """A numpy mirror of one column, or ``None`` when ineligible.

        Eligibility is a strict type sweep — every value ``int`` (bools
        excluded) fitting int64, or every value ``float`` — so mirror
        comparisons can never diverge from ``compare_values``.
        """
        cached = self._numpy.get(index, _MISSING)
        if cached is not _MISSING:
            return cached
        mirror = None
        if _np is not None and self.length:
            column = self.columns[index]
            if all(type(v) is int for v in column):
                try:
                    candidate = _np.asarray(column)
                    if candidate.dtype.kind == "i":
                        mirror = candidate
                except Exception:
                    mirror = None
            elif all(type(v) is float for v in column):
                mirror = _np.asarray(column, dtype=_np.float64)
        self._numpy[index] = mirror
        return mirror

    def __len__(self) -> int:
        return self.length

    def __getstate__(self) -> tuple:
        return (self.columns, self.length)

    def __setstate__(self, state: tuple) -> None:
        self.columns, self.length = state
        self._rows = None
        self._numpy = {}


# ---------------------------------------------------------------------------
# batch expression kernels
# ---------------------------------------------------------------------------

#: A batch-compiled expression: ColumnBatch -> one value per row.
BatchCompiled = Callable[[ColumnBatch], list]


class _NotVectorizable(Exception):
    """Raised at kernel-build time for expressions the columnar engine
    must not evaluate at all (subqueries capture executor state)."""


_TRUE_CHECKS = {
    "=": lambda o: o == 0,
    "<>": lambda o: o != 0,
    "<": lambda o: o < 0,
    "<=": lambda o: o <= 0,
    ">": lambda o: o > 0,
    ">=": lambda o: o >= 0,
}

_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class _BatchCompiler:
    """Compiles one expression slot of one plan node into a batch kernel.

    Specialized kernels exist for the shapes that dominate probe traffic
    (column/literal comparisons with a numpy mask path, boolean
    connectives, arithmetic, LIKE, IN-list, BETWEEN, CASE, the hot scalar
    functions). Everything else **lifts**: the row compiler's closure for
    the same slot — pulled from the same process-wide memo the row engine
    uses — is mapped over the batch's row view, which makes coverage total
    for subquery-free expressions without duplicating semantics.
    """

    def __init__(
        self,
        node: logical.PlanNode,
        slot: tuple,
        output: tuple[logical.OutputCol, ...],
    ) -> None:
        self._node = node
        self._slot = slot
        self._output = output

    def compile(self, expr: nodes.Expr) -> BatchCompiled:
        if has_subquery(expr):
            raise _NotVectorizable(type(expr).__name__)
        return self._compile(expr, top=True)

    def _compile(self, expr: nodes.Expr, top: bool = False) -> BatchCompiled:
        specialized = self._specialize(expr)
        if specialized is not None:
            return specialized
        return self._lift(expr, top)

    def _lift(self, expr: nodes.Expr, top: bool) -> BatchCompiled:
        """Map the row closure for ``expr`` over the batch's row view.

        Within one operator the row engine evaluates each compiled
        expression on every child row, so a lifted closure performs the
        identical per-row evaluations in the identical order.
        """
        if top:
            # Same memo entry the row engine would compile for this slot.
            row_fn = memoized_compile(self._node, self._slot, expr, self._output)
        else:
            row_fn = compile_expr(expr, self._output, None)

        def lifted(batch: ColumnBatch) -> list:
            return [row_fn(row) for row in batch.to_rows()]

        return lifted

    # -- specializations ----------------------------------------------------

    def _specialize(self, expr: nodes.Expr) -> BatchCompiled | None:
        if isinstance(expr, nodes.Literal):
            value = expr.value
            return lambda batch: [value] * batch.length
        if isinstance(expr, nodes.ColumnRef):
            index = resolve_column(expr, self._output)
            return lambda batch: batch.columns[index]
        if isinstance(expr, nodes.IsNull):
            operand = self._compile(expr.operand)
            if expr.negated:
                return lambda batch: [v is not None for v in operand(batch)]
            return lambda batch: [v is None for v in operand(batch)]
        if isinstance(expr, nodes.Unary):
            return self._specialize_unary(expr)
        if isinstance(expr, nodes.Binary):
            return self._specialize_binary(expr)
        if isinstance(expr, nodes.InList):
            return self._specialize_in_list(expr)
        if isinstance(expr, nodes.Between):
            return self._specialize_between(expr)
        if isinstance(expr, nodes.Case):
            return self._specialize_case(expr)
        if isinstance(expr, nodes.Cast):
            return self._specialize_cast(expr)
        if isinstance(expr, nodes.FuncCall):
            return self._specialize_function(expr)
        return None

    def _specialize_unary(self, expr: nodes.Unary) -> BatchCompiled | None:
        operand = self._compile(expr.operand)
        if expr.op == "-":

            def negate(batch: ColumnBatch) -> list:
                out = []
                for value in operand(batch):
                    if value is None:
                        out.append(None)
                    elif isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        out.append(-value)
                    else:
                        raise ExecutionError(f"cannot negate {value!r}")
                return out

            return negate
        if expr.op == "NOT":

            def negation(batch: ColumnBatch) -> list:
                return [
                    None if value is None else not truthy(value)
                    for value in operand(batch)
                ]

            return negation
        return None

    def _specialize_binary(self, expr: nodes.Binary) -> BatchCompiled | None:
        op = expr.op
        if op in ("AND", "OR"):
            return self._specialize_connective(expr)
        if op in _TRUE_CHECKS:
            return self._specialize_comparison(expr)
        if op in ("+", "-", "*", "/", "%"):
            return self._specialize_arithmetic(expr)
        if op == "||":
            left, right = self._compile(expr.left), self._compile(expr.right)

            def concat(batch: ColumnBatch) -> list:
                return [
                    None if lv is None or rv is None else to_text(lv) + to_text(rv)
                    for lv, rv in zip(left(batch), right(batch))
                ]

            return concat
        if op in ("LIKE", "NOT LIKE"):
            return self._specialize_like(expr)
        return None

    def _specialize_connective(self, expr: nodes.Binary) -> BatchCompiled:
        """Three-valued AND/OR, evaluated eagerly on both sides.

        The row closures short-circuit the right side's *evaluation*; the
        eager kernel evaluates a superset, so any error it surfaces that
        the row engine would have skipped is absorbed by the per-node
        fallback. The combination logic per row is exact.
        """
        left, right = self._compile(expr.left), self._compile(expr.right)
        conjunction = expr.op == "AND"

        def connective(batch: ColumnBatch) -> list:
            out = []
            if conjunction:
                for lv, rv in zip(left(batch), right(batch)):
                    if lv is not None and not truthy(lv):
                        out.append(False)
                    elif rv is not None and not truthy(rv):
                        out.append(False)
                    elif lv is None or rv is None:
                        out.append(None)
                    else:
                        out.append(True)
            else:
                for lv, rv in zip(left(batch), right(batch)):
                    if lv is not None and truthy(lv):
                        out.append(True)
                    elif rv is not None and truthy(rv):
                        out.append(True)
                    elif lv is None or rv is None:
                        out.append(None)
                    else:
                        out.append(False)
            return out

        return connective

    def _specialize_comparison(self, expr: nodes.Binary) -> BatchCompiled:
        op = expr.op
        fast = self._numpy_comparison(expr)
        left, right = self._compile(expr.left), self._compile(expr.right)
        check = _TRUE_CHECKS[op]

        def comparison(batch: ColumnBatch) -> list:
            if fast is not None:
                try:
                    mask = fast(batch)
                except Exception:
                    mask = None
                if mask is not None:
                    return mask
            out = []
            for lv, rv in zip(left(batch), right(batch)):
                ordering = compare_values(lv, rv)
                out.append(None if ordering is None else check(ordering))
            return out

        return comparison

    def _numpy_comparison(self, expr: nodes.Binary) -> Callable | None:
        """Mask kernel for ``column OP numeric-literal``, or ``None``.

        Derives every operator from a ``<``/``>`` mask pair so the result
        reproduces ``compare_values``'s three-way semantics exactly (NaN
        compares "equal" in both engines). Literal/column dtype pairings
        that numpy would resolve through lossy promotion (float literal
        vs int64 column, unrepresentable int vs float column) bail to the
        generic loop at call time.
        """
        if _np is None:
            return None
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, nodes.Literal) and isinstance(right, nodes.ColumnRef):
            left, right, op = right, left, _FLIPPED_OP[op]
        if not (
            isinstance(left, nodes.ColumnRef) and isinstance(right, nodes.Literal)
        ):
            return None
        literal = right.value
        if isinstance(literal, bool) or not isinstance(literal, (int, float)):
            return None
        if isinstance(literal, int) and abs(literal) > _NUMPY_INT_LIMIT:
            return None
        index = resolve_column(left, self._output)

        def fast(batch: ColumnBatch):
            mirror = batch.numpy_column(index)
            if mirror is None:
                return None
            if mirror.dtype.kind == "i":
                if type(literal) is not int:
                    return None
                comparand = literal
            elif type(literal) is int:
                comparand = float(literal)
                if comparand != literal:
                    return None
            else:
                comparand = literal
            lt = mirror < comparand
            gt = mirror > comparand
            if op == "=":
                mask = ~(lt | gt)
            elif op == "<>":
                mask = lt | gt
            elif op == "<":
                mask = lt
            elif op == "<=":
                mask = ~gt
            elif op == ">":
                mask = gt
            else:
                mask = ~lt
            return mask.tolist()

        return fast

    def _specialize_arithmetic(self, expr: nodes.Binary) -> BatchCompiled:
        left, right = self._compile(expr.left), self._compile(expr.right)
        op = expr.op

        def arithmetic(batch: ColumnBatch) -> list:
            out = []
            for lv, rv in zip(left(batch), right(batch)):
                if lv is None or rv is None:
                    out.append(None)
                    continue
                if not expr_lib.numeric(lv) or not expr_lib.numeric(rv):
                    raise ExecutionError(
                        f"arithmetic {op!r} on non-numeric operands"
                        f" ({type(lv).__name__}, {type(rv).__name__})"
                    )
                if op == "+":
                    out.append(lv + rv)
                elif op == "-":
                    out.append(lv - rv)
                elif op == "*":
                    out.append(lv * rv)
                elif op == "/":
                    if rv == 0:
                        raise ExecutionError("division by zero")
                    out.append(lv / rv)
                else:
                    if rv == 0:
                        raise ExecutionError("modulo by zero")
                    out.append(lv % rv)
            return out

        return arithmetic

    def _specialize_like(self, expr: nodes.Binary) -> BatchCompiled | None:
        if not (
            isinstance(expr.right, nodes.Literal)
            and isinstance(expr.right.value, str)
        ):
            return None  # dynamic patterns lift
        operand = self._compile(expr.left)
        pattern = like_regex(expr.right.value)
        negated = expr.op == "NOT LIKE"

        def like(batch: ColumnBatch) -> list:
            out = []
            for value in operand(batch):
                if value is None:
                    out.append(None)
                else:
                    matched = pattern.match(to_text(value)) is not None
                    out.append((not matched) if negated else matched)
            return out

        return like

    def _specialize_in_list(self, expr: nodes.InList) -> BatchCompiled:
        operand = self._compile(expr.operand)
        items = [self._compile(item) for item in expr.items]
        negated = expr.negated

        def in_list(batch: ColumnBatch) -> list:
            values = operand(batch)
            item_columns = [item(batch) for item in items]
            out = []
            for i, value in enumerate(values):
                if value is None:
                    out.append(None)
                    continue
                saw_null = False
                verdict: Value = negated
                for column in item_columns:
                    candidate = column[i]
                    if candidate is None:
                        saw_null = True
                        continue
                    if compare_values(value, candidate) == 0:
                        verdict = not negated
                        break
                else:
                    if saw_null:
                        verdict = None
                out.append(verdict)
            return out

        return in_list

    def _specialize_between(self, expr: nodes.Between) -> BatchCompiled:
        operand = self._compile(expr.operand)
        low = self._compile(expr.low)
        high = self._compile(expr.high)
        negated = expr.negated

        def between(batch: ColumnBatch) -> list:
            out = []
            for value, low_value, high_value in zip(
                operand(batch), low(batch), high(batch)
            ):
                lower = compare_values(value, low_value)
                upper = compare_values(value, high_value)
                if lower is None or upper is None:
                    out.append(None)
                    continue
                inside = lower >= 0 and upper <= 0
                out.append((not inside) if negated else inside)
            return out

        return between

    def _specialize_case(self, expr: nodes.Case) -> BatchCompiled:
        """Masked CASE: each condition is evaluated only on still-active
        rows and each result only on the rows it was chosen for — the
        exact (row, expression) evaluation set of the row closure, so
        guarded patterns like ``CASE WHEN x <> 0 THEN 1/x END`` vectorize
        without spurious fallbacks."""
        whens = [
            (self._compile(condition), self._compile(result))
            for condition, result in expr.whens
        ]
        else_fn = (
            self._compile(expr.else_result)
            if expr.else_result is not None
            else None
        )

        def case(batch: ColumnBatch) -> list:
            out: list = [None] * batch.length
            active = list(range(batch.length))
            for condition, result in whens:
                if not active:
                    break
                sub = batch.gather(active)
                chosen: list[int] = []
                remaining: list[int] = []
                for position, verdict in zip(active, condition(sub)):
                    if verdict is not None and truthy(verdict):
                        chosen.append(position)
                    else:
                        remaining.append(position)
                if chosen:
                    for position, value in zip(chosen, result(batch.gather(chosen))):
                        out[position] = value
                active = remaining
            if else_fn is not None and active:
                for position, value in zip(active, else_fn(batch.gather(active))):
                    out[position] = value
            return out

        return case

    def _specialize_cast(self, expr: nodes.Cast) -> BatchCompiled:
        from repro.storage.types import DataType, coerce_value

        operand = self._compile(expr.operand)
        target = DataType.parse(expr.type_name)

        def cast(batch: ColumnBatch) -> list:
            return [coerce_value(value, target) for value in operand(batch)]

        return cast

    def _specialize_function(self, expr: nodes.FuncCall) -> BatchCompiled | None:
        name = expr.name
        if name in ("LOWER", "UPPER", "LENGTH", "TRIM") and len(expr.args) == 1:
            operand = self._compile(expr.args[0])
            fn = {
                "LOWER": lambda v: to_text(v).lower(),
                "UPPER": lambda v: to_text(v).upper(),
                "LENGTH": lambda v: len(to_text(v)),
                "TRIM": lambda v: to_text(v).strip(),
            }[name]
            return lambda batch: [
                None if v is None else fn(v) for v in operand(batch)
            ]
        if name == "COALESCE" and expr.args:
            args = [self._compile(arg) for arg in expr.args]

            def coalesce(batch: ColumnBatch) -> list:
                columns = [arg(batch) for arg in args]
                out = []
                for i in range(batch.length):
                    value = None
                    for column in columns:
                        if column[i] is not None:
                            value = column[i]
                            break
                    out.append(value)
                return out

            return coalesce
        if name == "CONCAT":
            args = [self._compile(arg) for arg in expr.args]

            def fn_concat(batch: ColumnBatch) -> list:
                columns = [arg(batch) for arg in args]
                out = []
                for i in range(batch.length):
                    pieces = []
                    for column in columns:
                        value = column[i]
                        if value is None:
                            pieces = None
                            break
                        pieces.append(to_text(value))
                    out.append(None if pieces is None else "".join(pieces))
                return out

            return fn_concat
        return None  # everything else (ABS, ROUND, SUBSTR, ...) lifts


# ---------------------------------------------------------------------------
# node kernels and their memo
# ---------------------------------------------------------------------------

#: A node kernel: (executor, node, child batches) -> output batch. Kernels
#: capture only batch-compiled expressions (safe to share process-wide per
#: strict fingerprint, like the expression memo) and read all other node
#: state — table names, limits, view rows — from ``node`` at call time.
NodeKernel = Callable[["ColumnarExecutor", logical.PlanNode, tuple], ColumnBatch]


@dataclass
class KernelMemoStats:
    """Observability counters for the columnar kernel memo (advisory,
    like :class:`~repro.engine.executor.ExprMemoStats`)."""

    builds: int = 0
    hits: int = 0
    #: kernels that raised at runtime and were recomputed by the row engine
    fallbacks: int = 0
    #: nodes executed through the row engine because no kernel exists
    unvectorized: int = 0

    def reset(self) -> None:
        self.builds = 0
        self.hits = 0
        self.fallbacks = 0
        self.unvectorized = 0


KERNEL_MEMO_STATS = KernelMemoStats()

#: Process-wide bounded LRU of node kernels keyed by (node type, strict
#: fingerprint) — the same structural-equivalence argument as _EXPR_MEMO.
#: ``None`` entries memoize "not vectorizable" (subquery-bearing nodes).
_KERNEL_MEMO: OrderedDict[tuple, NodeKernel | None] = OrderedDict()
_KERNEL_MEMO_LOCK = threading.Lock()
_KERNEL_MEMO_MAX = 4096


def clear_kernel_memo() -> None:
    """Drop all memoized node kernels (test isolation hook)."""
    with _KERNEL_MEMO_LOCK:
        _KERNEL_MEMO.clear()


def kernel_memo_occupancy() -> int:
    """Entries currently memoized (metrics-registry collector input)."""
    with _KERNEL_MEMO_LOCK:
        return len(_KERNEL_MEMO)


# Kernels hold compiled closures, so clearing the expression memo must
# drop them too or stale compiles stay reachable through the kernel memo.
executor_module._EXPR_MEMO_CLEAR_HOOKS.append(clear_kernel_memo)


def _truthy_flag(value: Value) -> bool:
    """The filter/join acceptance test, verbatim from the row engine."""
    return value is not None and value is not False and value != 0


def _compile_slot(
    node: logical.PlanNode,
    slot: tuple,
    expr: nodes.Expr,
    output: tuple[logical.OutputCol, ...],
) -> BatchCompiled:
    return _BatchCompiler(node, slot, output).compile(expr)


def _build_kernel(node: logical.PlanNode) -> NodeKernel | None:
    """Build the vectorized kernel for one plan node, or ``None`` when the
    node must run through the row engine (subquery-bearing expressions,
    ``IndexScan`` leaves). Build-time compile errors (unknown column,
    unknown function) propagate — the caller falls back to the row path,
    which re-raises the row engine's own error."""
    if isinstance(node, logical.Scan):
        return _scan_kernel
    if isinstance(node, logical.ViewScan):
        return _view_scan_kernel
    if isinstance(node, logical.Filter):
        predicate = _compile_slot(node, ("filter",), node.predicate, node.child.output)
        return _make_filter_kernel(predicate)
    if isinstance(node, logical.Project):
        fns = [
            _compile_slot(node, ("project", i), expr, node.child.output)
            for i, expr in enumerate(node.exprs)
        ]
        return _make_project_kernel(fns)
    if isinstance(node, logical.HashJoin):
        left_keys = [
            _compile_slot(node, ("hj-left", i), key, node.left.output)
            for i, key in enumerate(node.left_keys)
        ]
        right_keys = [
            _compile_slot(node, ("hj-right", i), key, node.right.output)
            for i, key in enumerate(node.right_keys)
        ]
        residual = (
            _compile_slot(node, ("hj-residual",), node.residual, node.output)
            if node.residual is not None
            else None
        )
        return _make_hash_join_kernel(left_keys, right_keys, residual)
    if isinstance(node, logical.NestedLoopJoin):
        condition = (
            _compile_slot(node, ("nl-cond",), node.condition, node.output)
            if node.condition is not None
            else None
        )
        return _make_nested_loop_kernel(condition)
    if isinstance(node, logical.Aggregate):
        return _build_aggregate_kernel(node)
    if isinstance(node, logical.Sort):
        fns = [
            (_compile_slot(node, ("sort", i), expr, node.child.output), ascending)
            for i, (expr, ascending) in enumerate(node.keys)
        ]
        return _make_sort_kernel(fns)
    if isinstance(node, logical.Limit):
        return _limit_kernel
    if isinstance(node, logical.Distinct):
        return _distinct_kernel
    return None  # IndexScan and anything new: row engine


# -- leaves -----------------------------------------------------------------


def _scan_kernel(ex, node: logical.Scan, batches: tuple) -> ColumnBatch:
    table = ex._catalog.table(node.table)
    positions = [table.schema.position_of(c) for c in node.columns]
    sampler = ex._make_sampler(node.table)
    stats = ex.context.stats
    stats.rows_scanned += table.num_rows
    stats.rows_processed += table.num_rows
    if sampler is None:
        return ColumnBatch(table.extract_columns(positions), table.num_rows)
    # Sampled: one bernoulli draw per row in scan order — the identical
    # draw sequence the row engine consumes from the identical stream.
    rate = ex.context.sample_rate
    kept = [row for row in table.scan() if sampler.bernoulli(rate)]
    if not kept:
        return ColumnBatch([[] for _ in positions], 0)
    transposed = list(zip(*kept)) if positions else []
    return ColumnBatch([list(transposed[p]) for p in positions], len(kept))


def _view_scan_kernel(ex, node: logical.ViewScan, batches: tuple) -> ColumnBatch:
    rows = node.materialized_rows()
    stats = ex.context.stats
    stats.rows_scanned += len(rows)
    stats.rows_processed += len(rows)
    return ColumnBatch.from_rows(rows, len(node.columns))


# -- operators --------------------------------------------------------------


def _make_filter_kernel(predicate: BatchCompiled) -> NodeKernel:
    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        (batch,) = batches
        ex.context.stats.rows_processed += batch.length
        flags = [_truthy_flag(v) for v in predicate(batch)]
        kept = sum(flags)
        if kept == batch.length:
            return batch  # zero-copy: nothing rejected
        return ColumnBatch(
            [list(compress(column, flags)) for column in batch.columns], kept
        )

    return kernel


def _make_project_kernel(fns: list[BatchCompiled]) -> NodeKernel:
    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        (batch,) = batches
        ex.context.stats.rows_processed += batch.length
        return ColumnBatch([fn(batch) for fn in fns], batch.length)

    return kernel


def _make_hash_join_kernel(
    left_keys: list[BatchCompiled],
    right_keys: list[BatchCompiled],
    residual: BatchCompiled | None,
) -> NodeKernel:
    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        left, right = batches
        ex.context.stats.rows_processed += left.length + right.length

        build: dict[tuple, list[int]] = {}
        left_key_columns = [fn(left) for fn in left_keys]
        for i in range(left.length):
            key = tuple(column[i] for column in left_key_columns)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(i)

        pair_left: list[int] = []
        pair_right: list[int] = []
        right_key_columns = [fn(right) for fn in right_keys]
        for j in range(right.length):
            key = tuple(column[j] for column in right_key_columns)
            if any(part is None for part in key):
                continue
            positions = build.get(key)
            if positions:
                pair_left.extend(positions)
                pair_right.extend([j] * len(positions))

        out_left = [[column[i] for i in pair_left] for column in left.columns]
        out_right = [[column[j] for j in pair_right] for column in right.columns]
        if residual is not None and pair_left:
            combined = ColumnBatch(out_left + out_right, len(pair_left))
            flags = [_truthy_flag(v) for v in residual(combined)]
            if not all(flags):
                out_left = [list(compress(c, flags)) for c in out_left]
                out_right = [list(compress(c, flags)) for c in out_right]
                pair_left = list(compress(pair_left, flags))

        length = len(pair_left)
        if node.kind == "LEFT":
            matched = set(pair_left)
            unmatched = [i for i in range(left.length) if i not in matched]
            if unmatched:
                for out_column, source in zip(out_left, left.columns):
                    out_column.extend(source[i] for i in unmatched)
                for out_column in out_right:
                    out_column.extend([None] * len(unmatched))
                length += len(unmatched)
        return ColumnBatch(out_left + out_right, length)

    return kernel


def _make_nested_loop_kernel(condition: BatchCompiled | None) -> NodeKernel:
    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        left, right = batches
        L, R = left.length, right.length
        ex.context.stats.rows_processed += L * R
        right_width = len(node.right.output)
        if R == 0:
            if node.kind == "LEFT":
                return ColumnBatch(
                    [list(column) for column in left.columns]
                    + [[None] * L for _ in range(right_width)],
                    L,
                )
            return ColumnBatch([[] for _ in node.output], 0)
        if L * R > _MAX_NESTED_PAIRS:
            # The row engine streams pairs; materialising this cross
            # product would not.
            raise ExecutionError("nested-loop pair expansion too large")
        expanded_left = [
            [value for value in column for _ in range(R)] for column in left.columns
        ]
        expanded_right = [column * L for column in right.columns]
        if condition is None:
            # Cross join: every pair matches (and R > 0 pads nothing).
            return ColumnBatch(expanded_left + expanded_right, L * R)
        combined = ColumnBatch(expanded_left + expanded_right, L * R)
        flags = [_truthy_flag(v) for v in condition(combined)]
        if node.kind != "LEFT":
            return ColumnBatch(
                [list(compress(c, flags)) for c in expanded_left]
                + [list(compress(c, flags)) for c in expanded_right],
                sum(flags),
            )
        # LEFT join: null-pad each unmatched left row in place, preserving
        # the row engine's left-major emission order. Negative markers in
        # the index plan encode "pad for left row (-k - 1)".
        plan: list[int] = []
        for i in range(L):
            base = i * R
            matched = False
            for j in range(R):
                if flags[base + j]:
                    plan.append(base + j)
                    matched = True
            if not matched:
                plan.append(-i - 1)
        out_left = []
        for ci, expanded in enumerate(expanded_left):
            source = left.columns[ci]
            out_left.append(
                [expanded[k] if k >= 0 else source[-k - 1] for k in plan]
            )
        out_right = [
            [expanded[k] if k >= 0 else None for k in plan]
            for expanded in expanded_right
        ]
        return ColumnBatch(out_left + out_right, len(plan))

    return kernel


@dataclass
class _AggSpec:
    """One aggregate call, batch-compiled."""

    kind: str  # count_star | count | sum | avg | min | max
    fn: BatchCompiled | None = None
    distinct: bool = False


def _build_aggregate_kernel(node: logical.Aggregate) -> NodeKernel:
    group_fns = [
        _compile_slot(node, ("group", i), expr, node.child.output)
        for i, expr in enumerate(node.group_exprs)
    ]
    specs: list[_AggSpec] = []
    for call_index, call in enumerate(node.agg_calls):
        name = call.name
        if name == "COUNT":
            if len(call.args) != 1:
                raise ExecutionError("COUNT expects exactly one argument")
            if isinstance(call.args[0], nodes.Star):
                specs.append(_AggSpec("count_star"))
                continue
            fn = _compile_slot(
                node, ("agg-arg", call_index, 0), call.args[0], node.child.output
            )
            specs.append(_AggSpec("count", fn, call.distinct))
            continue
        if len(call.args) != 1 or isinstance(call.args[0], nodes.Star):
            raise ExecutionError(f"{name} expects exactly one column argument")
        fn = _compile_slot(
            node, ("agg-arg", call_index, 0), call.args[0], node.child.output
        )
        if name == "SUM":
            specs.append(_AggSpec("sum", fn))
        elif name == "AVG":
            specs.append(_AggSpec("avg", fn))
        elif name == "MIN":
            specs.append(_AggSpec("min", fn))
        elif name == "MAX":
            specs.append(_AggSpec("max", fn))
        else:
            raise ExecutionError(f"unknown aggregate function {name!r}")
    return _make_aggregate_kernel(group_fns, specs)


def _make_aggregate_kernel(
    group_fns: list[BatchCompiled], specs: list[_AggSpec]
) -> NodeKernel:
    """Exact (sample_rate 1.0) grouped aggregation over columns.

    Replicates the accumulators' value semantics loop-for-loop: float
    accumulation order (SUM starts at 0.0 and returns int when no float
    was seen), NULL skipping, distinct sets, ``compare_values``-based
    MIN/MAX with incomparable values skipped. Sampled aggregation keeps
    its scaled estimates and error terms on the row path — the executor
    routes it there before trying this kernel.
    """

    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        (batch,) = batches
        n = batch.length
        ex.context.stats.rows_processed += n

        if group_fns:
            group_columns = [fn(batch) for fn in group_fns]
            index_of: dict[tuple, int] = {}
            keys: list[tuple] = []
            group_ids = []
            if len(group_columns) == 1:
                for value in group_columns[0]:
                    key = (value,)
                    gid = index_of.get(key)
                    if gid is None:
                        gid = len(keys)
                        index_of[key] = gid
                        keys.append(key)
                    group_ids.append(gid)
            else:
                for i in range(n):
                    key = tuple(column[i] for column in group_columns)
                    gid = index_of.get(key)
                    if gid is None:
                        gid = len(keys)
                        index_of[key] = gid
                        keys.append(key)
                    group_ids.append(gid)
        else:
            keys = [()] if n else []
            group_ids = [0] * n

        count = len(keys)
        identity_row = not keys and not node.group_exprs
        if identity_row:
            keys = [()]
            count = 1

        agg_columns: list[list[Value]] = []
        for spec in specs:
            if identity_row:
                agg_columns.append([0 if spec.kind in ("count_star", "count") else None])
                continue
            if spec.kind == "count_star":
                counts = [0] * count
                for gid in group_ids:
                    counts[gid] += 1
                agg_columns.append(counts)
                continue
            column = spec.fn(batch)
            if spec.kind == "count":
                if spec.distinct:
                    seen: list[set] = [set() for _ in range(count)]
                    for gid, value in zip(group_ids, column):
                        if value is not None:
                            seen[gid].add(value)
                    agg_columns.append([len(s) for s in seen])
                else:
                    counts = [0] * count
                    for gid, value in zip(group_ids, column):
                        if value is not None:
                            counts[gid] += 1
                    agg_columns.append(counts)
            elif spec.kind == "sum":
                totals = [0.0] * count
                nonnull = [0] * count
                any_float = [False] * count
                for gid, value in zip(group_ids, column):
                    if value is None:
                        continue
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        raise ExecutionError(f"SUM over non-numeric value {value!r}")
                    totals[gid] += value
                    nonnull[gid] += 1
                    if isinstance(value, float):
                        any_float[gid] = True
                agg_columns.append(
                    [
                        None
                        if nonnull[g] == 0
                        else (totals[g] if any_float[g] else int(totals[g]))
                        for g in range(count)
                    ]
                )
            elif spec.kind == "avg":
                totals = [0.0] * count
                nonnull = [0] * count
                for gid, value in zip(group_ids, column):
                    if value is None:
                        continue
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        raise ExecutionError(f"AVG over non-numeric value {value!r}")
                    totals[gid] += float(value)
                    nonnull[gid] += 1
                agg_columns.append(
                    [
                        None if nonnull[g] == 0 else totals[g] / nonnull[g]
                        for g in range(count)
                    ]
                )
            else:  # min / max
                is_min = spec.kind == "min"
                bests: list[Value] = [None] * count
                for gid, value in zip(group_ids, column):
                    if value is None:
                        continue
                    best = bests[gid]
                    if best is None:
                        bests[gid] = value
                        continue
                    ordering = compare_values(value, best)
                    if ordering is None:
                        continue
                    if (is_min and ordering < 0) or (not is_min and ordering > 0):
                        bests[gid] = value
                agg_columns.append(bests)

        ex._estimate_errors = {}
        group_width = len(node.group_exprs)
        out_columns = [
            [key[position] for key in keys] for position in range(group_width)
        ]
        out_columns.extend(agg_columns)
        return ColumnBatch(out_columns, count)

    return kernel


def _make_sort_kernel(fns: list[tuple[BatchCompiled, bool]]) -> NodeKernel:
    def kernel(ex, node, batches: tuple) -> ColumnBatch:
        (batch,) = batches
        ex.context.stats.rows_processed += batch.length
        key_columns = [(fn(batch), ascending) for fn, ascending in fns]

        def sort_key(i: int) -> tuple:
            return tuple(
                _SortKey(column[i], ascending) for column, ascending in key_columns
            )

        indices = sorted(range(batch.length), key=sort_key)
        if indices == list(range(batch.length)):
            return batch  # already ordered: zero-copy
        return batch.gather(indices)

    return kernel


def _limit_kernel(ex, node: logical.Limit, batches: tuple) -> ColumnBatch:
    (batch,) = batches
    start = node.offset
    stop = batch.length if node.limit is None else min(batch.length, start + node.limit)
    length = max(0, stop - min(start, batch.length))
    return ColumnBatch(
        [column[start:stop] for column in batch.columns], length
    )


def _distinct_kernel(ex, node: logical.Distinct, batches: tuple) -> ColumnBatch:
    (batch,) = batches
    ex.context.stats.rows_processed += batch.length
    seen: set[Row] = set()
    out: list[Row] = []
    for row in batch.to_rows():
        if row not in seen:
            seen.add(row)
            out.append(row)
    if len(out) == batch.length:
        return batch
    return ColumnBatch.from_rows(out, len(batch.columns))


# ---------------------------------------------------------------------------
# the columnar executor
# ---------------------------------------------------------------------------


class ColumnarExecutor(Executor):
    """Batch-at-a-time executor, byte-identical to :class:`Executor`.

    Every node executes as a :class:`ColumnBatch`; ``_execute`` (the
    row-level entry point the base class, subquery runners, and callers
    share) serves the batch's cached row view, so results, counters, and
    cache interactions are indistinguishable from the row engine's.
    """

    def _execute(self, node: logical.PlanNode) -> list[Row]:
        return self._execute_batch(node).to_rows()

    def _execute_batch(self, node: logical.PlanNode) -> ColumnBatch:
        """Mirror of the base ``_execute`` cache discipline, batch-valued.

        The cache key, counters, and stored representation (plain row
        lists) are exactly the row engine's — that is what lets one
        materialisation serve both engines. Span plumbing mirrors the
        row engine too: one ambient read with tracing off, a per-node
        span (rows out, cache verdict, kernel-vs-fallback) otherwise.
        """
        parent_span = obs_trace.current_span()
        if parent_span is None:
            return self._execute_batch_inner(node, None)
        span = parent_span.child(f"node:{type(node).__name__}", engine="columnar")
        token = obs_trace.set_current(span)
        try:
            batch = self._execute_batch_inner(node, span)
            span.attrs["rows_out"] = len(batch)
            return batch
        finally:
            obs_trace.reset_current(token)
            span.finish()

    def _execute_batch_inner(self, node: logical.PlanNode, span) -> ColumnBatch:
        self.context.stats.operators_executed += 1
        cache = self.context.cache
        cache_key: tuple | None = None
        if cache is not None:
            cache_key = subplan_cache_key(
                node,
                self.context.sample_rate,
                self.context.sample_seed,
                self.context.min_cacheable_size,
            )
            if cache_key is not None:
                cached = cache.get(cache_key)
                if cached is not None:
                    self.context.stats.cache_hits += 1
                    if span is not None:
                        span.attrs["cache"] = "hit"
                    batch = ColumnBatch.from_rows(cached, len(node.output))
                    batch._rows = cached  # serve the cached list itself
                    return batch
                self.context.stats.cache_misses += 1
                if span is not None:
                    span.attrs["cache"] = "miss"

        batch = self._execute_batch_uncached(node)

        if cache is not None and cache_key is not None:
            cache.put(cache_key, batch.to_rows())
        return batch

    def _execute_batch_uncached(self, node: logical.PlanNode) -> ColumnBatch:
        if isinstance(node, logical.OneRow):
            return ColumnBatch([], 1)
        if isinstance(node, logical.SubqueryScan):
            return self._execute_batch(node.child)
        if isinstance(node, (logical.Scan, logical.ViewScan, logical.IndexScan)):
            return self._columnar_node(node, ())
        if isinstance(
            node,
            (
                logical.Filter,
                logical.Project,
                logical.Aggregate,
                logical.Sort,
                logical.Limit,
                logical.Distinct,
            ),
        ):
            return self._columnar_node(node, (self._execute_batch(node.child),))
        if isinstance(node, (logical.HashJoin, logical.NestedLoopJoin)):
            return self._columnar_node(
                node,
                (self._execute_batch(node.left), self._execute_batch(node.right)),
            )
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    # -- kernel dispatch ----------------------------------------------------

    def _columnar_node(
        self, node: logical.PlanNode, batches: tuple
    ) -> ColumnBatch:
        kernel = self._node_kernel(node)
        if kernel is not None and not (
            isinstance(node, logical.Aggregate) and self.context.sample_rate < 1.0
        ):
            stats = self.context.stats
            snapshot = (
                stats.rows_scanned,
                stats.rows_processed,
                stats.operators_executed,
                stats.cache_hits,
                stats.cache_misses,
            )
            span = obs_trace.current_span()
            try:
                batch = kernel(self, node, batches)
                if span is not None:
                    span.attrs["exec"] = "kernel"
                return batch
            except Exception:
                # Anything a kernel raises — a genuine execution error, an
                # evaluation-order divergence, a numpy surprise — is
                # resolved by recomputing the node on the row path, which
                # restores byte-identical results *and* errors.
                (
                    stats.rows_scanned,
                    stats.rows_processed,
                    stats.operators_executed,
                    stats.cache_hits,
                    stats.cache_misses,
                ) = snapshot
                KERNEL_MEMO_STATS.fallbacks += 1
                if span is not None:
                    span.attrs["exec"] = "fallback"
        else:
            KERNEL_MEMO_STATS.unvectorized += 1
            span = obs_trace.current_span()
            if span is not None:
                span.attrs["exec"] = "row"
        rows = self._row_fallback(node, [batch.to_rows() for batch in batches])
        return ColumnBatch.from_rows(rows, len(node.output))

    def _node_kernel(self, node: logical.PlanNode) -> NodeKernel | None:
        key = (type(node).__name__, fingerprints(node).strict)
        with _KERNEL_MEMO_LOCK:
            if key in _KERNEL_MEMO:
                _KERNEL_MEMO.move_to_end(key)
                KERNEL_MEMO_STATS.hits += 1
                # A memoized kernel embodies every compiled expression for
                # this node, so the reuse counts as expression-memo hits —
                # memo telemetry (and its tests) reads the same on both
                # engines.
                EXPR_MEMO_STATS.hits += 1
                return _KERNEL_MEMO[key]
        try:
            kernel = _build_kernel(node)
        except _NotVectorizable:
            kernel = None
        except Exception:
            # Build-time compile errors are the row engine's errors: take
            # the fallback path and let it raise them in its own order.
            KERNEL_MEMO_STATS.builds += 1
            return None
        KERNEL_MEMO_STATS.builds += 1
        with _KERNEL_MEMO_LOCK:
            if key not in _KERNEL_MEMO and len(_KERNEL_MEMO) >= _KERNEL_MEMO_MAX:
                _KERNEL_MEMO.popitem(last=False)
            _KERNEL_MEMO[key] = kernel
        return kernel

    # -- row fallback ---------------------------------------------------------

    def _row_fallback(
        self, node: logical.PlanNode, child_rows: list[list[Row]]
    ) -> list[Row]:
        """Recompute one node through the row engine's compute halves.

        Children are already materialised (as batches), so this consumes
        their row views instead of re-executing them — re-execution would
        double-count operators and cache traffic.
        """
        if isinstance(node, logical.Scan):
            return self._exec_scan(node)
        if isinstance(node, logical.IndexScan):
            return self._exec_index_scan(node)
        if isinstance(node, logical.ViewScan):
            return self._exec_view_scan(node)
        if isinstance(node, logical.Filter):
            return self._filter_rows(node, child_rows[0])
        if isinstance(node, logical.Project):
            return self._project_rows(node, child_rows[0])
        if isinstance(node, logical.HashJoin):
            return self._hash_join_rows(node, child_rows[0], child_rows[1])
        if isinstance(node, logical.NestedLoopJoin):
            return self._nested_loop_rows(node, child_rows[0], child_rows[1])
        if isinstance(node, logical.Aggregate):
            return self._aggregate_rows(node, child_rows[0])
        if isinstance(node, logical.Sort):
            return self._sort_rows(node, child_rows[0])
        if isinstance(node, logical.Limit):
            return self._limit_rows(node, child_rows[0])
        if isinstance(node, logical.Distinct):
            return self._distinct_rows(node, child_rows[0])
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")
