"""Trace recording with the paper's activity taxonomy.

Figure 3 and Table 1 label agent actions into four activities; the
simulator records every action with its label directly (the paper's authors
labeled theirs manually), plus timing within the trace for the normalised
position axis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Activity(enum.Enum):
    """The paper's manual labeling taxonomy (Sec. 2, case study 2)."""

    EXPLORING_TABLES = "exploring tables"
    EXPLORING_COLUMNS = "exploring specific columns"
    PARTIAL_ATTEMPT = "attempting part of the query"
    FULL_ATTEMPT = "attempting entire query"
    OTHER = "other"


#: Display order used by Figure 3 and Table 1.
ACTIVITY_ORDER = [
    Activity.EXPLORING_TABLES,
    Activity.EXPLORING_COLUMNS,
    Activity.PARTIAL_ATTEMPT,
    Activity.FULL_ATTEMPT,
]


@dataclass
class TraceEvent:
    """One agent action."""

    step: int
    activity: Activity
    request: str
    ok: bool = True
    row_count: int = 0
    note: str = ""


@dataclass
class AgentTrace:
    """A full task trace: ordered events plus the final outcome."""

    task_id: str
    agent: str
    events: list[TraceEvent] = field(default_factory=list)
    success: bool = False
    final_sql: str | None = None

    def record(
        self,
        activity: Activity,
        request: str,
        ok: bool = True,
        row_count: int = 0,
        note: str = "",
    ) -> TraceEvent:
        event = TraceEvent(
            step=len(self.events),
            activity=activity,
            request=request,
            ok=ok,
            row_count=row_count,
            note=note,
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def activity_counts(self) -> dict[Activity, int]:
        counts = {activity: 0 for activity in Activity}
        for event in self.events:
            counts[event.activity] += 1
        return counts

    def sql_query_count(self) -> int:
        """All backend requests in the trace ("all SQL queries" in Table 1)."""
        return len(self.events)

    def normalized_positions(self) -> list[tuple[float, Activity]]:
        """(position in [0,1], activity) pairs for Figure 3's heatmap."""
        if not self.events:
            return []
        if len(self.events) == 1:
            return [(0.0, self.events[0].activity)]
        last = len(self.events) - 1
        return [(event.step / last, event.activity) for event in self.events]
