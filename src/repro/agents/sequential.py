"""The sequential field agent (Figure 1b's setting).

One agent, one task, a budget of turns. Each turn the policy picks an
action from the paper's taxonomy — explore tables, explore columns,
attempt part of the query, attempt the whole query — weighted by current
grounding coverage, so exploration dominates early and attempts late
(with overlap, as Figure 3 shows). Every action issues real SQL; the
agent learns from what comes back, including from empty results
(error-driven grounding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.attempts import AttemptGenerator
from repro.agents.grounding import Grounding
from repro.agents.model import ModelProfile
from repro.agents.trace import Activity, AgentTrace
from repro.util.rng import RngStream
from repro.workloads.bird import BirdTask


@dataclass
class SequentialOutcome:
    """Result of one sequential episode."""

    task_id: str
    model: str
    success: bool
    turns_used: int
    trace: AgentTrace
    final_sql: str | None


class SequentialAgent:
    """Explores then solves, within a turn budget."""

    def __init__(self, task: BirdTask, model: ModelProfile, rng: RngStream) -> None:
        self.task = task
        self.model = model
        self.rng = rng
        self.grounding = Grounding()
        self.generator = AttemptGenerator(task, model)
        self.trace = AgentTrace(task_id=task.task_id, agent=model.name)
        self._last_attempt_sql: str | None = None
        self._last_attempt_ok = False

    # -- main loop -----------------------------------------------------------

    def run(self, max_turns: int = 7) -> SequentialOutcome:
        for turn in range(max_turns):
            forced_attempt = turn == max_turns - 1 and self._last_attempt_sql is None
            action = (
                Activity.FULL_ATTEMPT if forced_attempt else self._choose_action(turn)
            )
            if action is Activity.EXPLORING_TABLES:
                self._explore_tables()
            elif action is Activity.EXPLORING_COLUMNS:
                self._explore_columns()
            elif action is Activity.PARTIAL_ATTEMPT:
                self._partial_attempt()
            else:
                satisfied = self._full_attempt(turn)
                if satisfied:
                    break
        success = (
            self._last_attempt_sql is not None
            and self.task.check(self._last_attempt_sql)
        )
        self.trace.success = success
        self.trace.final_sql = self._last_attempt_sql
        return SequentialOutcome(
            task_id=self.task.task_id,
            model=self.model.name,
            success=success,
            turns_used=len(self.trace),
            trace=self.trace,
            final_sql=self._last_attempt_sql,
        )

    # -- policy ------------------------------------------------------------------

    def _choose_action(self, turn: int) -> Activity:
        spec = self.task.spec
        coverage = self.grounding.coverage(spec)
        missing_tables = len(self.grounding.missing_tables(spec))
        unexplored = len(self.grounding.unexplored_filter_columns(spec))
        total_tables = max(len(spec.tables()), 1)
        total_filters = max(len(spec.filters), 1)

        weights = {
            Activity.EXPLORING_TABLES: 1.8 * missing_tables / total_tables + 0.05,
            Activity.EXPLORING_COLUMNS: (
                1.6 * unexplored / total_filters * (0.4 if missing_tables == total_tables else 1.0)
                + 0.05
            ),
            Activity.PARTIAL_ATTEMPT: 0.25 + 1.3 * coverage * (1.0 - coverage),
            Activity.FULL_ATTEMPT: (
                0.06
                + self.model.decisiveness * (coverage ** 1.5)
                + 0.05 * turn
            ),
        }
        return self.rng.weighted_choice(weights)

    # -- actions --------------------------------------------------------------------

    def _explore_tables(self) -> None:
        result = self.task.db.execute(
            "SELECT table_name, row_count FROM information_schema.tables"
        )
        self.trace.record(
            Activity.EXPLORING_TABLES,
            "SELECT table_name, row_count FROM information_schema.tables",
            row_count=result.row_count,
        )
        for table in self.grounding.missing_tables(self.task.spec):
            if self.rng.bernoulli(self.model.extraction_skill):
                self.grounding.learn_table(table)

    def _explore_columns(self) -> None:
        unexplored = self.grounding.unexplored_filter_columns(self.task.spec)
        # Agents do not know in advance which column hides the trap: half
        # the time they inspect a question-relevant column, otherwise they
        # wander the fact table (the scattershot exploration Figure 3 shows).
        if unexplored and self.rng.bernoulli(0.4):
            table, column = self.rng.choice(unexplored)
        else:
            table = self.task.spec.fact_table
            names = self.task.db.catalog.table(table).schema.column_names()
            column = self.rng.choice(names)
        sql = self.generator.column_probe(table, column)
        try:
            result = self.task.db.execute(sql)
            rows = result.row_count
            ok = True
        except Exception:
            rows, ok = 0, False
        self.trace.record(Activity.EXPLORING_COLUMNS, sql, ok=ok, row_count=rows)
        if ok and self.rng.bernoulli(self.model.extraction_skill * 0.85):
            self.grounding.learn_format(table, column)

    def _partial_attempt(self) -> None:
        spec = self.task.spec
        # Prefer testing a filter; fall back to testing the join.
        untested = [
            f
            for f in spec.filters
            if not self.grounding.format_known(f.table, f.column)
            or f.wrong_value is None
        ]
        if untested and (spec.join is None or self.rng.bernoulli(0.7)):
            filter_spec = self.rng.choice(untested)
            sql = self.generator.filter_probe(filter_spec, self.grounding)
            rows, ok = self._run(sql)
            self.trace.record(Activity.PARTIAL_ATTEMPT, sql, ok=ok, row_count=rows)
            matched = ok and rows > 0 and self._probe_found_rows(sql)
            if matched:
                self.grounding.learn_column(filter_spec.table, filter_spec.column)
            elif ok and self.rng.bernoulli(self.model.insight_skill * 0.45):
                # Empty result -> the agent inspects the column and learns
                # the true encoding (the paper's why-not moment). Without a
                # steering side-channel this diagnosis often fails — the
                # gap the agent-first system's why-not feedback closes.
                self.grounding.learn_format(filter_spec.table, filter_spec.column)
            return
        join_sql = self.generator.join_probe()
        if join_sql is not None:
            rows, ok = self._run(join_sql)
            self.trace.record(Activity.PARTIAL_ATTEMPT, join_sql, ok=ok, row_count=rows)
            if ok and self.task.spec.join is not None:
                self.grounding.verify_join(*self.task.spec.join)
            return
        # Single-table task with everything tested: sanity-count the table.
        sql = f"SELECT COUNT(*) FROM {spec.fact_table}"
        rows, ok = self._run(sql)
        self.trace.record(Activity.PARTIAL_ATTEMPT, sql, ok=ok, row_count=rows)

    def _probe_found_rows(self, count_sql: str) -> bool:
        try:
            return int(self.task.db.execute(count_sql).first_value()) > 0
        except Exception:
            return False

    def _full_attempt(self, turn: int) -> bool:
        coverage = self.grounding.coverage(self.task.spec)
        # Attempting with little grounding is disproportionately error-prone
        # (no schema text in front of the agent at all); even grounded
        # sequential attempts are sloppier than fresh-context one-shots
        # because the long interaction history competes for attention.
        penalty = 0.85 if coverage < 0.34 else 0.93
        attempt = self.generator.full_attempt(
            self.grounding, self.rng.child("attempt", turn), reliability_scale=penalty
        )
        rows, ok = self._run(attempt.sql)
        self.trace.record(
            Activity.FULL_ATTEMPT,
            attempt.sql,
            ok=ok,
            row_count=rows,
            note=";".join(attempt.mistakes),
        )
        self._last_attempt_sql = attempt.sql
        self._last_attempt_ok = ok
        if not ok or rows == 0:
            # Visible failure: keep working if budget remains; an empty
            # result sometimes teaches the literal format.
            for filter_spec in self.task.spec.filters:
                if filter_spec.wrong_value is not None and self.rng.bernoulli(
                    self.model.insight_skill * 0.3
                ):
                    self.grounding.learn_format(filter_spec.table, filter_spec.column)
            return False
        # A plausible non-empty answer is convincing — agents lock in
        # wrong-but-plausible answers, which caps sequential success well
        # below the parallel-voting ceiling.
        satisfaction = 0.7 + 0.2 * coverage + 0.08 * self.model.decisiveness
        return self.rng.bernoulli(satisfaction)

    def _run(self, sql: str) -> tuple[int, bool]:
        try:
            result = self.task.db.execute(sql)
            return result.row_count, True
        except Exception:
            return 0, False
