"""The attempt generator: from task spec + grounding + skill to SQL.

This is where simulated competence becomes concrete SQL text. Correctness
is never decided by fiat — the generated SQL is executed against the real
database and compared with the gold answer. The generator only decides
*which mistakes to make*:

* **systematic gaps** (shared by all of a model's ungrounded attempts on a
  task): wrong literal encodings, wrong table linking;
* **per-attempt slips** (independent re-rolls): dropped filters, wrong
  aggregate functions, wrong join or group-by columns, dropped projection
  columns.

Grounding removes gaps and raises per-component reliability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.grounding import Grounding
from repro.agents.model import ModelProfile
from repro.core.probe import Probe
from repro.util.rng import RngStream
from repro.workloads.bird import BirdTask, FilterSpec, TaskSpec


@dataclass
class Attempt:
    """One generated full-query attempt."""

    sql: str
    mistakes: tuple[str, ...] = ()

    @property
    def intended_correct(self) -> bool:
        return not self.mistakes

    def probe(self) -> Probe:
        """This attempt as a one-query probe, ready for session streaming.

        Identity (agent id, principal, brief) is deliberately left to the
        submitting :class:`~repro.core.gateway.AgentSession` defaults.
        """
        return Probe(queries=(self.sql,))


class AttemptGenerator:
    """Generates full and partial attempts for a task."""

    def __init__(self, task: BirdTask, model: ModelProfile) -> None:
        self.task = task
        self.model = model

    # -- full attempts -----------------------------------------------------

    def full_attempt(
        self,
        grounding: Grounding,
        rng: RngStream,
        reliability_scale: float = 1.0,
    ) -> Attempt:
        spec = self.task.spec
        mistakes: list[str] = []
        self._reliability_scale = reliability_scale

        fact_table = self._choose_fact_table(grounding, mistakes)
        filters_sql = self._render_filters(spec, grounding, rng, mistakes)
        aggregate_sql = self._render_aggregate(spec, grounding, rng, mistakes)
        group_column = self._choose_group_column(spec, grounding, rng, mistakes)
        join_clause, fact_alias, dim_alias = self._render_join(
            spec, fact_table, grounding, rng, mistakes
        )

        select_parts: list[str] = []
        if spec.group_by is not None and group_column is not None:
            table, _ = spec.group_by
            alias = self._alias_for(table, spec, fact_alias, dim_alias)
            select_parts.append(f"{alias}.{group_column}")
        for table, column in self._projection(spec, grounding, rng, mistakes):
            alias = self._alias_for(table, spec, fact_alias, dim_alias)
            select_parts.append(f"{alias}.{column}")
        if aggregate_sql is not None:
            select_parts.append(aggregate_sql)
        if not select_parts:
            select_parts.append("*")

        sql = "SELECT " + ", ".join(select_parts) + " FROM " + join_clause
        if filters_sql:
            # Benign variation: conjunct order differs between attempts.
            rng.shuffle(filters_sql)
            sql += " WHERE " + " AND ".join(filters_sql)
        if spec.group_by is not None and group_column is not None:
            table, _ = spec.group_by
            alias = self._alias_for(table, spec, fact_alias, dim_alias)
            sql += f" GROUP BY {alias}.{group_column}"
        if spec.order_desc_limit is not None and aggregate_sql is not None:
            sql += f" ORDER BY agg_value DESC LIMIT {spec.order_desc_limit}"
        return Attempt(sql=sql, mistakes=tuple(mistakes))

    # -- partial attempts ------------------------------------------------------

    def filter_probe(self, filter_spec: FilterSpec, grounding: Grounding) -> str:
        """A single-table probe testing one filter (a "part of the query")."""
        literal = self._filter_literal(filter_spec, grounding)
        return (
            f"SELECT COUNT(*) FROM {filter_spec.table}"
            f" WHERE {filter_spec.column} {filter_spec.op} {literal}"
        )

    def join_probe(self) -> str | None:
        spec = self.task.spec
        if spec.join is None or spec.dim_table is None:
            return None
        fact_col, dim_col = spec.join
        return (
            f"SELECT COUNT(*) FROM {spec.fact_table} f"
            f" JOIN {spec.dim_table} d ON f.{fact_col} = d.{dim_col}"
        )

    def column_probe(self, table: str, column: str) -> str:
        return f"SELECT DISTINCT {column} FROM {table} LIMIT 20"

    # -- component choices --------------------------------------------------------

    _reliability_scale = 1.0

    def _reliability(self, grounded: bool) -> float:
        base = (
            self.model.reliability_grounded
            if grounded
            else self.model.reliability_ungrounded
        )
        return base * self._reliability_scale

    def _choose_fact_table(self, grounding: Grounding, mistakes: list[str]) -> str:
        spec = self.task.spec
        linked = grounding.table_known(spec.fact_table) or self.model.knows_schema(
            self.task.task_id
        )
        if linked or not self.task.distractor_tables:
            return spec.fact_table
        # Systematic schema gap: the same wrong table every attempt.
        wrong = sorted(self.task.distractor_tables)[0]
        mistakes.append(f"wrong_table:{wrong}")
        return wrong

    def _render_filters(
        self,
        spec: TaskSpec,
        grounding: Grounding,
        rng: RngStream,
        mistakes: list[str],
    ) -> list[str]:
        rendered: list[str] = []
        for filter_spec in spec.filters:
            grounded = grounding.column_known(
                filter_spec.table, filter_spec.column
            ) or grounding.format_known(filter_spec.table, filter_spec.column)
            if not rng.bernoulli(self._reliability(grounded)):
                # Slip: the filter is forgotten entirely this attempt.
                mistakes.append(f"dropped_filter:{filter_spec.column}")
                continue
            literal = self._filter_literal(filter_spec, grounding)
            if filter_spec.wrong_value is not None and literal == _render_literal(
                filter_spec.wrong_value
            ):
                mistakes.append(f"wrong_literal:{filter_spec.column}")
            alias = "f" if spec.dim_table and filter_spec.table == spec.fact_table else None
            if spec.dim_table and filter_spec.table == spec.dim_table:
                alias = "d"
            qualifier = f"{alias}." if alias else ""
            rendered.append(
                f"{qualifier}{filter_spec.column} {filter_spec.op} {literal}"
            )
        return rendered

    def _filter_literal(self, filter_spec: FilterSpec, grounding: Grounding) -> str:
        if filter_spec.wrong_value is None:
            return _render_literal(filter_spec.value)
        knows = grounding.format_known(
            filter_spec.table, filter_spec.column
        ) or self.model.knows_format(self.task.task_id)
        value = filter_spec.value if knows else filter_spec.wrong_value
        return _render_literal(value)

    def _render_aggregate(
        self,
        spec: TaskSpec,
        grounding: Grounding,
        rng: RngStream,
        mistakes: list[str],
    ) -> str | None:
        if spec.aggregate is None:
            return None
        func, table, column = spec.aggregate
        grounded = grounding.coverage(spec) > 0.6
        if not rng.bernoulli(self._reliability(grounded)):
            alternatives = [f for f in ("SUM", "AVG", "MAX", "COUNT") if f != func]
            func = rng.choice(alternatives)
            mistakes.append(f"wrong_aggregate:{func}")
        if column == "*" or func == "COUNT" and spec.aggregate[2] == "*":
            return "COUNT(*) AS agg_value"
        alias = "f" if spec.dim_table and table == spec.fact_table else None
        if spec.dim_table and table == spec.dim_table:
            alias = "d"
        qualifier = f"{alias}." if alias else ""
        return f"{func}({qualifier}{column}) AS agg_value"

    def _choose_group_column(
        self,
        spec: TaskSpec,
        grounding: Grounding,
        rng: RngStream,
        mistakes: list[str],
    ) -> str | None:
        if spec.group_by is None:
            return None
        table, column = spec.group_by
        grounded = grounding.table_known(table)
        if rng.bernoulli(self._reliability(grounded)):
            return column
        schema = self.task.db.catalog.table(table).schema
        alternatives = [c for c in schema.column_names() if c != column]
        wrong = rng.choice(alternatives) if alternatives else column
        if wrong != column:
            mistakes.append(f"wrong_group:{wrong}")
        return wrong

    def _render_join(
        self,
        spec: TaskSpec,
        fact_table: str,
        grounding: Grounding,
        rng: RngStream,
        mistakes: list[str],
    ) -> tuple[str, str | None, str | None]:
        if spec.dim_table is None or spec.join is None:
            return fact_table, None, None
        fact_col, dim_col = spec.join
        grounded = grounding.join_verified(fact_col, dim_col)
        if not rng.bernoulli(self._reliability(grounded)):
            # Slip: join on the wrong fact column (classic id-vs-fk mixup).
            schema = self.task.db.catalog.table(spec.fact_table).schema
            alternatives = [
                c
                for c in schema.column_names()
                if c != fact_col and c.endswith("id")
            ]
            if alternatives:
                wrong = rng.choice(alternatives)
                mistakes.append(f"wrong_join:{wrong}")
                fact_col = wrong
        clause = (
            f"{fact_table} f JOIN {spec.dim_table} d"
            f" ON f.{fact_col} = d.{dim_col}"
        )
        return clause, "f", "d"

    def _projection(
        self,
        spec: TaskSpec,
        grounding: Grounding,
        rng: RngStream,
        mistakes: list[str],
    ) -> list[tuple[str, str]]:
        if not spec.projection:
            return []
        columns = list(spec.projection)
        grounded = grounding.table_known(spec.fact_table)
        if len(columns) > 1 and not rng.bernoulli(self._reliability(grounded)):
            victim = rng.choice(columns)
            columns.remove(victim)
            mistakes.append(f"dropped_projection:{victim[1]}")
        return columns

    def _alias_for(
        self,
        table: str,
        spec: TaskSpec,
        fact_alias: str | None,
        dim_alias: str | None,
    ) -> str:
        if fact_alias is None:
            return table
        return fact_alias if table == spec.fact_table else (dim_alias or table)


def _render_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
