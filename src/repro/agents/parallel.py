"""Parallel attempts with a supervising agent (Figure 1a's setting).

K field agents independently attempt the task (each with a short private
grounding warm-up, mirroring how one-shot agents skim the schema before
answering); an agent-in-charge then picks one solution by result-signature
plurality — self-consistency voting over *answers*, not SQL text. Attempts
that error vote for nothing; empty results are weak votes.

The K attempts are *streamed through agent sessions*: each field agent
opens its own session on the task database's serving system and submits
its probe independently; the gateway's admission loop coalesces the
uncoordinated arrivals into admission windows, so the 80-90% sub-plan
redundancy across attempts (Figure 2) is shared at execution time instead
of paid K times — the paper's agent-first serving path, on the paper's
own workload, without anyone hand-assembling a batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.attempts import Attempt, AttemptGenerator
from repro.agents.grounding import Grounding
from repro.agents.model import ModelProfile
from repro.core import AgentFirstDataSystem
from repro.core.system import shared_serving_system
from repro.util.rng import RngStream
from repro.workloads.bird import BirdTask


@dataclass
class FieldAttempt:
    """One field agent's answer."""

    sql: str
    ok: bool
    signature: str | None
    row_count: int


@dataclass
class ParallelRunOutcome:
    task_id: str
    model: str
    attempts: list[FieldAttempt] = field(default_factory=list)
    picked_signature: str | None = None
    success: bool = False
    #: Engine rows processed serving all K attempts (batched, shared).
    rows_processed: int = 0

    def success_at(self, k: int, supervisor: "Supervisor", task: BirdTask) -> bool:
        """Re-vote using only the first k attempts (for the K sweep)."""
        picked = supervisor.pick(self.attempts[:k])
        return picked is not None and picked == task.gold_signature


def generate_field_attempt(
    task: BirdTask, model: ModelProfile, rng: RngStream
) -> Attempt:
    """One field agent's SQL: brief schema warm-up, then a full attempt.

    Generation only — execution happens wherever the caller serves it
    (directly, or batched through ``submit_many``).
    """
    grounding = Grounding()
    generator = AttemptGenerator(task, model)

    # Warm-up: a skim of the catalog. This is private grounding — cheap,
    # incomplete, and independent per agent. Note what it does NOT include:
    # value-encoding knowledge, which needs actual column exploration. That
    # omission is what keeps Figure 1a's curves saturating below 100% —
    # parallel one-shot retries cannot fix a shared grounding gap.
    for table in task.spec.tables():
        if rng.bernoulli(model.extraction_skill * 0.9):
            grounding.learn_table(table)

    return generator.full_attempt(grounding, rng.child("full"))


def run_field_attempt(
    task: BirdTask, model: ModelProfile, rng: RngStream
) -> FieldAttempt:
    """One field agent executed standalone (no cross-attempt sharing)."""
    attempt = generate_field_attempt(task, model, rng)
    try:
        result = task.db.execute(attempt.sql)
        return FieldAttempt(
            sql=attempt.sql,
            ok=True,
            signature=result.signature(),
            row_count=result.row_count,
        )
    except Exception:
        return FieldAttempt(sql=attempt.sql, ok=False, signature=None, row_count=0)


class Supervisor:
    """The agent-in-charge: picks one answer from K candidates."""

    def __init__(self, empty_result_weight: float = 0.25) -> None:
        self._empty_result_weight = empty_result_weight

    def pick(self, attempts: list[FieldAttempt]) -> str | None:
        """Plurality vote over result signatures; None if all errored."""
        scores: dict[str, float] = {}
        order: dict[str, int] = {}
        for position, attempt in enumerate(attempts):
            if not attempt.ok or attempt.signature is None:
                continue
            weight = 1.0 if attempt.row_count > 0 else self._empty_result_weight
            scores[attempt.signature] = scores.get(attempt.signature, 0.0) + weight
            order.setdefault(attempt.signature, position)
        if not scores:
            return None
        return max(scores, key=lambda s: (scores[s], -order[s]))


def run_parallel_attempts(
    task: BirdTask,
    model: ModelProfile,
    k: int,
    seed: int,
    supervisor: Supervisor | None = None,
    system: AgentFirstDataSystem | None = None,
) -> ParallelRunOutcome:
    """K independent field attempts + a supervisor pick.

    Each field agent opens its own session on the serving system and
    streams its attempt in; the gateway's admission loop forms the batch,
    so duplicated sub-plans across the swarm materialise once without any
    caller pre-assembling a ``submit_many`` list. By default the task
    database's shared serving system answers (one long-lived system per
    database; its history and cache persist across calls). A ``system``
    passed explicitly must wrap the task's own database.
    """
    supervisor = supervisor or Supervisor()
    rng = RngStream(seed, "parallel", task.task_id, model.name)
    outcome = ParallelRunOutcome(task_id=task.task_id, model=model.name)

    attempts = [
        generate_field_attempt(task, model, rng.child("agent", attempt_index))
        for attempt_index in range(k)
    ]
    if system is None:
        system = shared_serving_system(task.db)
    elif system.db is not task.db:
        raise ValueError(
            "serving system wraps a different database than the task;"
            " attempts would silently run against the wrong data"
        )
    tickets = [
        system.session(agent_id=f"field-{index}").submit(attempt.probe())
        for index, attempt in enumerate(attempts)
    ]
    # All K are in flight; close the window now rather than waiting out
    # the admission timer (purely a latency hint — outcomes are identical
    # however the stream splits into windows).
    system.gateway.flush()
    responses = [ticket.result(timeout=120.0) for ticket in tickets]
    for attempt, response in zip(attempts, responses):
        answer = response.outcomes[0]
        outcome.rows_processed += response.rows_processed
        if answer.result is not None:
            outcome.attempts.append(
                FieldAttempt(
                    sql=attempt.sql,
                    ok=True,
                    signature=answer.result.signature(),
                    row_count=answer.result.row_count,
                )
            )
        else:
            outcome.attempts.append(
                FieldAttempt(sql=attempt.sql, ok=False, signature=None, row_count=0)
            )
    outcome.picked_signature = supervisor.pick(outcome.attempts)
    outcome.success = outcome.picked_signature == task.gold_signature
    return outcome
