"""Parallel attempts with a supervising agent (Figure 1a's setting).

K field agents independently attempt the task (each with a short private
grounding warm-up, mirroring how one-shot agents skim the schema before
answering); an agent-in-charge then picks one solution by result-signature
plurality — self-consistency voting over *answers*, not SQL text. Attempts
that error vote for nothing; empty results are weak votes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.attempts import AttemptGenerator
from repro.agents.grounding import Grounding
from repro.agents.model import ModelProfile
from repro.util.rng import RngStream
from repro.workloads.bird import BirdTask


@dataclass
class FieldAttempt:
    """One field agent's answer."""

    sql: str
    ok: bool
    signature: str | None
    row_count: int


@dataclass
class ParallelRunOutcome:
    task_id: str
    model: str
    attempts: list[FieldAttempt] = field(default_factory=list)
    picked_signature: str | None = None
    success: bool = False

    def success_at(self, k: int, supervisor: "Supervisor", task: BirdTask) -> bool:
        """Re-vote using only the first k attempts (for the K sweep)."""
        picked = supervisor.pick(self.attempts[:k])
        return picked is not None and picked == task.gold_signature


def run_field_attempt(
    task: BirdTask, model: ModelProfile, rng: RngStream
) -> FieldAttempt:
    """One field agent: brief schema warm-up, then a single full attempt."""
    grounding = Grounding()
    generator = AttemptGenerator(task, model)

    # Warm-up: a skim of the catalog. This is private grounding — cheap,
    # incomplete, and independent per agent. Note what it does NOT include:
    # value-encoding knowledge, which needs actual column exploration. That
    # omission is what keeps Figure 1a's curves saturating below 100% —
    # parallel one-shot retries cannot fix a shared grounding gap.
    for table in task.spec.tables():
        if rng.bernoulli(model.extraction_skill * 0.9):
            grounding.learn_table(table)

    attempt = generator.full_attempt(grounding, rng.child("full"))
    try:
        result = task.db.execute(attempt.sql)
        return FieldAttempt(
            sql=attempt.sql,
            ok=True,
            signature=result.signature(),
            row_count=result.row_count,
        )
    except Exception:
        return FieldAttempt(sql=attempt.sql, ok=False, signature=None, row_count=0)


class Supervisor:
    """The agent-in-charge: picks one answer from K candidates."""

    def __init__(self, empty_result_weight: float = 0.25) -> None:
        self._empty_result_weight = empty_result_weight

    def pick(self, attempts: list[FieldAttempt]) -> str | None:
        """Plurality vote over result signatures; None if all errored."""
        scores: dict[str, float] = {}
        order: dict[str, int] = {}
        for position, attempt in enumerate(attempts):
            if not attempt.ok or attempt.signature is None:
                continue
            weight = 1.0 if attempt.row_count > 0 else self._empty_result_weight
            scores[attempt.signature] = scores.get(attempt.signature, 0.0) + weight
            order.setdefault(attempt.signature, position)
        if not scores:
            return None
        return max(scores, key=lambda s: (scores[s], -order[s]))


def run_parallel_attempts(
    task: BirdTask,
    model: ModelProfile,
    k: int,
    seed: int,
    supervisor: Supervisor | None = None,
) -> ParallelRunOutcome:
    """K independent field attempts + a supervisor pick."""
    supervisor = supervisor or Supervisor()
    rng = RngStream(seed, "parallel", task.task_id, model.name)
    outcome = ParallelRunOutcome(task_id=task.task_id, model=model.name)
    for attempt_index in range(k):
        outcome.attempts.append(
            run_field_attempt(task, model, rng.child("agent", attempt_index))
        )
    outcome.picked_signature = supervisor.pick(outcome.attempts)
    outcome.success = outcome.picked_signature == task.gold_signature
    return outcome
