"""The simulated LLM agent substrate.

No network, no model weights: agents are seeded stochastic policies with
per-model skill profiles. Every action issues *real* queries against the
real engines — what is simulated is only the decision process (which
action, which mistakes). The figures the paper draws measure the *workload*
these decisions generate, which is exactly what the simulator reproduces.
"""

from repro.agents.attempts import AttemptGenerator
from repro.agents.federated import CrossBackendAgent, HintSet
from repro.agents.grounding import Grounding
from repro.agents.model import GPT_4O_MINI_SIM, QWEN_CODER_SIM, ModelProfile
from repro.agents.parallel import ParallelRunOutcome, Supervisor, run_parallel_attempts
from repro.agents.sequential import SequentialAgent, SequentialOutcome
from repro.agents.trace import Activity, AgentTrace, TraceEvent

__all__ = [
    "Activity",
    "AgentTrace",
    "AttemptGenerator",
    "CrossBackendAgent",
    "GPT_4O_MINI_SIM",
    "Grounding",
    "HintSet",
    "ModelProfile",
    "ParallelRunOutcome",
    "QWEN_CODER_SIM",
    "SequentialAgent",
    "SequentialOutcome",
    "Supervisor",
    "TraceEvent",
]
