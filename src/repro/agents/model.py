"""Model skill profiles.

Each profile captures, as probabilities, the competencies that determine
text2SQL success in practice. Two kinds of failure matter and are modelled
separately:

* **systematic gaps** — knowledge the model either has or lacks for a
  given task (e.g. knowing that state columns spell names in full). All
  of a model's ungrounded attempts on that task repeat the same mistake,
  so parallel retries cannot fix it — only grounding can. This is what
  makes Figure 1a saturate below 100%.
* **slips** — per-attempt independent errors (wrong aggregate, dropped
  filter, swapped column). Retries re-roll slips, which is why success@K
  climbs with K.

Profiles are calibrated so the reproduction lands in the paper's bands
(Fig. 1a: ≈55%→70% for the stronger model; Fig. 1b: ≈35%→55%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.hashing import stable_hash_int


@dataclass(frozen=True)
class ModelProfile:
    """Competency probabilities for one simulated LLM."""

    name: str
    #: P(model intrinsically knows a tricky literal's format) per task.
    format_knowledge: float
    #: P(model links the right tables/columns without exploration) per task.
    schema_knowledge: float
    #: Per-component P(no slip) when the component has been grounded.
    reliability_grounded: float
    #: Per-component P(no slip) when attempting blind.
    reliability_ungrounded: float
    #: P(an exploration action extracts the fact correctly).
    extraction_skill: float
    #: P(agent diagnoses an empty result and fixes the literal format).
    insight_skill: float
    #: How eagerly the agent stops exploring and attempts (0..1).
    decisiveness: float

    def knows_format(self, task_id: str) -> bool:
        """Deterministic per-task: is the literal gap absent for this model?

        The roll depends on the *task only* (common random numbers): a
        stronger model's known-task set strictly contains a weaker one's,
        which keeps the Figure 1a model ordering stable at any sample size —
        and mirrors reality, where tasks hard for GPT-4o-mini are usually
        also hard for a 7B model.
        """
        roll = stable_hash_int((task_id, "format"), bits=20) / float(1 << 20)
        return roll < self.format_knowledge

    def knows_schema(self, task_id: str) -> bool:
        roll = stable_hash_int((task_id, "schema"), bits=20) / float(1 << 20)
        return roll < self.schema_knowledge


#: The stronger of the paper's two models (Figure 1 legend: GPT-4o mini).
GPT_4O_MINI_SIM = ModelProfile(
    name="gpt-4o-mini-sim",
    format_knowledge=0.60,
    schema_knowledge=0.90,
    reliability_grounded=0.96,
    reliability_ungrounded=0.93,
    extraction_skill=0.95,
    insight_skill=0.75,
    decisiveness=0.55,
)

#: The weaker model (Figure 1 legend: Qwen2.5 Coder 7B).
QWEN_CODER_SIM = ModelProfile(
    name="qwen2.5-coder-7b-sim",
    format_knowledge=0.42,
    schema_knowledge=0.84,
    reliability_grounded=0.945,
    reliability_ungrounded=0.90,
    extraction_skill=0.88,
    insight_skill=0.60,
    decisiveness=0.62,
)

PROFILES = {profile.name: profile for profile in (GPT_4O_MINI_SIM, QWEN_CODER_SIM)}
