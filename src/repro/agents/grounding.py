"""Grounding: what an agent has learned about the data so far.

The paper's central quantity. Grounding is acquired by exploration actions
(or injected as hints, Table 1), clears the model's systematic gaps, and
raises attempt reliability from ``reliability_ungrounded`` to
``reliability_grounded`` per grounded component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.bird import TaskSpec


@dataclass
class Grounding:
    """Per-task knowledge state."""

    #: Tables whose existence/role the agent has confirmed.
    known_tables: set[str] = field(default_factory=set)
    #: (table, column) pairs whose contents the agent has inspected.
    known_columns: set[tuple[str, str]] = field(default_factory=set)
    #: (table, column) pairs whose literal encoding the agent has learned.
    known_formats: set[tuple[str, str]] = field(default_factory=set)
    #: Join (fact_col, dim_col) pairs the agent has validated.
    verified_joins: set[tuple[str, str]] = field(default_factory=set)

    # -- acquisition -------------------------------------------------------

    def learn_table(self, table: str) -> None:
        self.known_tables.add(table.lower())

    def learn_column(self, table: str, column: str) -> None:
        self.known_columns.add((table.lower(), column.lower()))

    def learn_format(self, table: str, column: str) -> None:
        self.known_formats.add((table.lower(), column.lower()))
        self.learn_column(table, column)

    def verify_join(self, fact_column: str, dim_column: str) -> None:
        self.verified_joins.add((fact_column.lower(), dim_column.lower()))

    # -- queries -----------------------------------------------------------

    def table_known(self, table: str) -> bool:
        return table.lower() in self.known_tables

    def column_known(self, table: str, column: str) -> bool:
        return (table.lower(), column.lower()) in self.known_columns

    def format_known(self, table: str, column: str) -> bool:
        return (table.lower(), column.lower()) in self.known_formats

    def join_verified(self, fact_column: str, dim_column: str) -> bool:
        return (fact_column.lower(), dim_column.lower()) in self.verified_joins

    # -- task-level coverage ---------------------------------------------------

    def coverage(self, spec: TaskSpec) -> float:
        """Fraction of the task's groundable components acquired, in [0,1]."""
        needed = 0
        acquired = 0
        for table in spec.tables():
            needed += 1
            if self.table_known(table):
                acquired += 1
        for filter_spec in spec.filters:
            needed += 1
            if filter_spec.wrong_value is not None:
                if self.format_known(filter_spec.table, filter_spec.column):
                    acquired += 1
            elif self.column_known(filter_spec.table, filter_spec.column):
                acquired += 1
        if spec.join is not None:
            needed += 1
            if self.join_verified(*spec.join):
                acquired += 1
        if needed == 0:
            return 1.0
        return acquired / needed

    def missing_tables(self, spec: TaskSpec) -> list[str]:
        return [t for t in spec.tables() if not self.table_known(t)]

    def unexplored_filter_columns(self, spec: TaskSpec) -> list[tuple[str, str]]:
        out = []
        for filter_spec in spec.filters:
            pair = (filter_spec.table, filter_spec.column)
            if filter_spec.wrong_value is not None:
                if not self.format_known(*pair):
                    out.append(pair)
            elif not self.column_known(*pair):
                out.append(pair)
        return out
