"""The cross-backend field agent (Table 1 and Figure 3's setting).

One agent must combine a document store with a relational backend: find
the right collection/table among distractors, learn the document side's
value encodings (``GOLD_TIER``, not ``gold``), discover that document keys
are strings while relational keys are integers, pull both sides, and join
in client-side Python. The hint channel (Table 1) pre-seeds grounding the
way the paper's human experts' prompt hints did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.model import ModelProfile
from repro.agents.trace import Activity, AgentTrace
from repro.backends import BackendResponse
from repro.core import AgentFirstDataSystem, Probe
from repro.shard import ShardedSystem, sharded_serving_system
from repro.util.rng import RngStream
from repro.workloads.multibackend import CrossBackendTask


@dataclass
class HintSet:
    """What the expert hint reveals up-front (paper Table 1's treatment).

    The paper's hints provide "background information useful for the task,
    such as which column contains information pertinent to the task" — they
    spare the agent *verification* work (value encodings, the join-key type
    trap) but the agent still surveys the backends itself.
    """

    locations: bool = True  # sometimes names where the data lives
    value_format: bool = True  # how the segment column encodes values
    key_type: bool = True  # the string-vs-int join key mismatch
    fields: bool = True  # which fields/columns are pertinent


@dataclass
class FederatedGrounding:
    knows_collection: bool = False
    knows_table: bool = False
    knows_doc_fields: bool = False
    knows_rel_columns: bool = False
    knows_segment_format: bool = False
    knows_key_type: bool = False

    def coverage(self) -> float:
        flags = (
            self.knows_collection,
            self.knows_table,
            self.knows_doc_fields,
            self.knows_rel_columns,
            self.knows_segment_format,
            self.knows_key_type,
        )
        return sum(flags) / len(flags)


@dataclass
class FederatedOutcome:
    task_id: str
    model: str
    success: bool
    answer: float | None
    trace: AgentTrace


class CrossBackendAgent:
    """Sequential agent over a two-backend federated environment."""

    def __init__(
        self,
        task: CrossBackendTask,
        model: ModelProfile,
        rng: RngStream,
        hints: HintSet | None = None,
    ) -> None:
        self.task = task
        self.model = model
        self.rng = rng
        self.grounding = FederatedGrounding()
        self.trace = AgentTrace(task_id=task.task_id, agent=model.name)
        self._answer: float | None = None
        if hints is not None:
            self._apply_hints(hints)

    def _apply_hints(self, hints: HintSet) -> None:
        if hints.locations:
            # Hints mention data locations in passing; agents internalise
            # them only sometimes and mostly still survey the catalogs.
            if self.rng.bernoulli(0.15):
                self.grounding.knows_collection = True
            if self.rng.bernoulli(0.15):
                self.grounding.knows_table = True
        if hints.value_format:
            self.grounding.knows_segment_format = True
        if hints.key_type:
            self.grounding.knows_key_type = True
        if hints.fields:
            self.grounding.knows_doc_fields = True

    # -- main loop ------------------------------------------------------------

    def run(self, max_steps: int = 24) -> FederatedOutcome:
        for step in range(max_steps):
            if step == max_steps - 1 and self._answer is None:
                satisfied = self._full_attempt()
            else:
                action = self._choose_action(step)
                if action is Activity.EXPLORING_TABLES:
                    self._explore_tables()
                    satisfied = False
                elif action is Activity.EXPLORING_COLUMNS:
                    self._explore_columns()
                    satisfied = False
                elif action is Activity.PARTIAL_ATTEMPT:
                    self._partial_attempt()
                    satisfied = False
                else:
                    satisfied = self._full_attempt()
            if satisfied:
                break
        return self.finish()

    def finish(self) -> FederatedOutcome:
        success = self.task.check(self._answer)
        self.trace.success = success
        return FederatedOutcome(
            task_id=self.task.task_id,
            model=self.model.name,
            success=success,
            answer=self._answer,
            trace=self.trace,
        )

    # -- lockstep cohort protocol ---------------------------------------------

    def begin_step(self, step: int, max_steps: int) -> tuple[str, str] | None:
        """Advance one step; return a pending full attempt, if any.

        Exploration and partial attempts complete inline (they are the
        agent's private grounding loop). A full attempt returns its
        ``(document_request, relational_sql)`` pair *unexecuted*, so a
        cohort runner can serve every agent's relational query for the
        step as one admission batch through ``submit_many``. The caller
        finishes it with :meth:`complete_full_attempt`.
        """
        if step == max_steps - 1 and self._answer is None:
            return self._prepare_full_attempt()
        action = self._choose_action(step)
        if action is Activity.EXPLORING_TABLES:
            self._explore_tables()
            return None
        if action is Activity.EXPLORING_COLUMNS:
            self._explore_columns()
            return None
        if action is Activity.PARTIAL_ATTEMPT:
            self._partial_attempt()
            return None
        return self._prepare_full_attempt()

    # -- policy -----------------------------------------------------------------

    def _choose_action(self, step: int) -> Activity:
        g = self.grounding
        coverage = g.coverage()
        location_need = (not g.knows_collection) + (not g.knows_table)
        field_need = (not g.knows_doc_fields) + (not g.knows_rel_columns)
        weights = {
            Activity.EXPLORING_TABLES: 1.5 * location_need + 0.12,
            Activity.EXPLORING_COLUMNS: (
                (1.3 * field_need + (0.9 if not g.knows_segment_format else 0.0))
                * (0.35 if location_need == 2 else 1.0)
                + 0.1
            ),
            Activity.PARTIAL_ATTEMPT: 0.42 + 2.4 * coverage * (1.0 - coverage)
            + (0.9 if not g.knows_key_type and g.knows_doc_fields else 0.0),
            Activity.FULL_ATTEMPT: 0.03
            + self.model.decisiveness * 0.4 * (coverage ** 2)
            + 0.015 * step,
        }
        return self.rng.weighted_choice(weights)

    # -- actions --------------------------------------------------------------------

    def _explore_tables(self) -> None:
        backend = (
            self.task.doc_backend
            if not self.grounding.knows_collection or self.rng.bernoulli(0.5)
            else self.task.rel_backend
        )
        response = self.task.env.list_tables(backend)
        self.trace.record(
            Activity.EXPLORING_TABLES,
            f"{backend}: list tables",
            ok=response.ok,
            row_count=len(response.rows),
        )
        # Extraction is harder when the listing is noisy (mini-postgres mixes
        # in pg_catalog relations).
        noise_penalty = 0.75 if len(response.rows) > 10 else 1.0
        if backend == self.task.doc_backend:
            if self.rng.bernoulli(self.model.extraction_skill * noise_penalty):
                self.grounding.knows_collection = True
        else:
            if self.rng.bernoulli(self.model.extraction_skill * noise_penalty):
                self.grounding.knows_table = True

    def _explore_columns(self) -> None:
        g = self.grounding
        explore_doc = not g.knows_doc_fields or (
            not g.knows_segment_format and self.rng.bernoulli(0.7)
        )
        if explore_doc and g.knows_collection:
            response = self.task.env.sample(self.task.doc_backend, self.task.collection)
            self.trace.record(
                Activity.EXPLORING_COLUMNS,
                f"{self.task.doc_backend}: sample {self.task.collection}",
                ok=response.ok,
                row_count=len(response.rows),
            )
            if response.ok and self.rng.bernoulli(self.model.extraction_skill):
                g.knows_doc_fields = True
                # Sample documents show the segment encoding outright.
                if self.rng.bernoulli(self.model.extraction_skill):
                    g.knows_segment_format = True
                if self.rng.bernoulli(self.model.extraction_skill * 0.5):
                    g.knows_key_type = True
            return
        if g.knows_table:
            response = self.task.env.describe(self.task.rel_backend, self.task.table)
            self.trace.record(
                Activity.EXPLORING_COLUMNS,
                f"{self.task.rel_backend}: describe {self.task.table}",
                ok=response.ok,
                row_count=len(response.rows),
            )
            if response.ok and self.rng.bernoulli(self.model.extraction_skill):
                g.knows_rel_columns = True
            return
        # Blind describe on a guessed name: a realistic failed exploration.
        response = self.task.env.describe(self.task.rel_backend, "data")
        self.trace.record(
            Activity.EXPLORING_COLUMNS,
            f"{self.task.rel_backend}: describe data",
            ok=response.ok,
            row_count=len(response.rows),
        )

    def _partial_attempt(self) -> None:
        g = self.grounding
        if g.knows_collection and (not g.knows_segment_format or self.rng.bernoulli(0.5)):
            value = (
                self.task.filter_value
                if g.knows_segment_format
                else (self.task.filter_wrong_value or self.task.filter_value)
            )
            request = repr(
                {
                    "collection": self.task.collection,
                    "filter": {self.task.filter_field: value},
                    "limit": 10,
                }
            )
            response = self.task.env.query(self.task.doc_backend, request)
            self.trace.record(
                Activity.PARTIAL_ATTEMPT,
                f"{self.task.doc_backend}: find {value!r}",
                ok=response.ok,
                row_count=len(response.rows),
            )
            if response.ok and not response.rows:
                # Empty result: diagnose by re-sampling (error-driven).
                if self.rng.bernoulli(self.model.insight_skill):
                    g.knows_segment_format = True
            return
        if g.knows_table:
            sql = (
                f"SELECT {self.task.rel_key}, COUNT(*) FROM {self.task.table}"
                f" GROUP BY {self.task.rel_key} LIMIT 5"
            )
            response = self.task.env.query(self.task.rel_backend, sql)
            self.trace.record(
                Activity.PARTIAL_ATTEMPT,
                f"{self.task.rel_backend}: {sql[:40]}",
                ok=response.ok,
                row_count=len(response.rows),
            )
            if response.ok and self.rng.bernoulli(self.model.extraction_skill * 0.6):
                g.knows_key_type = True
            return
        response = self.task.env.query(
            self.task.rel_backend, f"SELECT COUNT(*) FROM {self.task.table}"
        )
        self.trace.record(
            Activity.PARTIAL_ATTEMPT,
            f"{self.task.rel_backend}: count {self.task.table}",
            ok=response.ok,
            row_count=len(response.rows),
        )

    def _prepare_full_attempt(self) -> tuple[str, str]:
        """The attempt's two requests: a document query and relational SQL."""
        g = self.grounding
        value = (
            self.task.filter_value
            if g.knows_segment_format
            else (self.task.filter_wrong_value or self.task.filter_value)
        )
        doc_request = repr(
            {
                "collection": self.task.collection,
                "filter": {self.task.filter_field: value},
                "projection": {self.task.doc_key: 1},
            }
        )
        sql = f"SELECT {self.task.rel_key}, {self.task.event_field} FROM {self.task.table}"
        return doc_request, sql

    def _full_attempt(self) -> bool:
        doc_request, sql = self._prepare_full_attempt()
        doc_response = self.task.env.query(self.task.doc_backend, doc_request)
        rel_response = self.task.env.query(self.task.rel_backend, sql)
        return self.complete_full_attempt(doc_response, rel_response)

    def complete_full_attempt(
        self, doc_response: BackendResponse, rel_response: BackendResponse
    ) -> bool:
        g = self.grounding
        ok = doc_response.ok and rel_response.ok
        answer: float | None = None
        if ok:
            raw_ids = [d.get(self.task.doc_key) for d in doc_response.rows]
            if g.knows_key_type:
                ids = {int(i) for i in raw_ids if i is not None}
            else:
                # Type mismatch goes unnoticed: string keys never equal ints.
                ids = set(raw_ids)
            matching = [row for row in rel_response.rows if row[0] in ids]
            if self.task.metric == "sum":
                answer = round(sum(row[1] for row in matching), 2)
            else:
                answer = float(len(matching))
            self._answer = answer
        self.trace.record(
            Activity.FULL_ATTEMPT,
            f"join {self.task.collection}⋈{self.task.table} ({self.task.metric})",
            ok=ok,
            row_count=len(doc_response.rows) if doc_response.ok else 0,
            note=f"answer={answer}",
        )
        if not ok or answer is None or answer == 0.0:
            if self.rng.bernoulli(self.model.insight_skill * 0.6):
                g.knows_key_type = True
            if self.rng.bernoulli(self.model.insight_skill * 0.4):
                g.knows_segment_format = True
            return False
        satisfaction = 0.4 + 0.45 * g.coverage() + 0.1 * self.model.decisiveness
        return self.rng.bernoulli(satisfaction)


def run_federated_cohort(
    task: CrossBackendTask,
    model: ModelProfile,
    n_agents: int,
    seed: int,
    max_steps: int = 24,
    hints: HintSet | None = None,
) -> tuple[list[FederatedOutcome], AgentFirstDataSystem | ShardedSystem]:
    """A swarm of field agents on one federated task, served in lockstep.

    Each agent holds its own session on the relational backend's serving
    system. Each step, every still-running agent advances once; the agents
    whose policy chose a full attempt this step *stream* their relational
    queries through their sessions, and the gateway's admission loop
    coalesces the uncoordinated submissions into admission windows —
    identical full-attempt SQL across the swarm (the common case: every
    agent scans the same fact table) executes once and is shared, with no
    caller assembling a batch. Document-side queries stay per-agent: the
    document store has no shared-work engine to route through.

    With ``REPRO_SHARDS=N`` (N > 1) the cohort is served by the sharded
    tier instead of a single system: each agent's session is placed on
    its home shard by identity (``field-<i>``), so an agent's probes stay
    shard-sticky across all its steps while the swarm as a whole spreads
    over N shards. At the default shard count this is byte-identical to
    the unsharded path.

    Returns the per-agent outcomes plus the serving system, whose
    responses' :class:`~repro.core.mqo.SharingReport` quantifies the
    cross-agent saving.
    """
    relational = task.env.backend(task.rel_backend)
    system = sharded_serving_system(relational.db)
    agents = [
        CrossBackendAgent(
            task, model, RngStream(seed, "cohort", task.task_id, index), hints
        )
        for index in range(n_agents)
    ]
    sessions = [
        system.session(agent_id=f"field-{index}") for index in range(n_agents)
    ]
    running = [True] * n_agents
    for step in range(max_steps):
        pending: list[tuple[int, str, str, "object"]] = []
        for index, agent in enumerate(agents):
            if not running[index]:
                continue
            request = agent.begin_step(step, max_steps)
            if request is not None:
                doc_request, sql = request
                ticket = sessions[index].submit(Probe(queries=(sql,)))
                pending.append((index, doc_request, sql, ticket))
        if not pending:
            continue
        # The step's stragglers are all in flight: close the window now
        # instead of waiting out the admission timer.
        system.gateway.flush()
        for index, doc_request, sql, ticket in pending:
            response = ticket.result(timeout=120.0)
            doc_response = task.env.query(task.doc_backend, doc_request)
            outcome = response.outcomes[0]
            if outcome.result is not None:
                rel_response = BackendResponse(
                    ok=True,
                    rows=outcome.result.rows,
                    columns=outcome.result.columns,
                    rows_scanned=outcome.result.stats.rows_scanned,
                )
            else:
                rel_response = BackendResponse.failure(
                    outcome.reason or "relational query failed"
                )
            # Keep the environment's interaction log complete: the batched
            # relational query bypassed env.query.
            task.env.record_external(task.rel_backend, "query", sql, rel_response)
            if agents[index].complete_full_attempt(doc_response, rel_response):
                running[index] = False
    return [agent.finish() for agent in agents], system
