"""Slow-probe log: a ring buffer of the worst offenders, with traces.

When ``REPRO_SLOW_PROBE_MS`` (or ``SystemConfig.slow_probe_ms``) sets a
threshold, every served probe whose end-to-end trace exceeds it lands
here — *with its full trace attached*, because setting the threshold
implies tracing (see :func:`repro.obs.trace.trace_wanted`); a slow
probe cannot be traced after the fact. Entries are also routed through
the module logger at WARNING so existing log plumbing surfaces them.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.trace import SLOW_PROBE_ENV_VAR, Trace

_LOG = logging.getLogger(__name__)

DEFAULT_CAPACITY = 64


def resolve_slow_probe_ms(default: float | None = None) -> float | None:
    """The env-configured slow-probe threshold in ms, else ``default``."""
    raw = os.environ.get(SLOW_PROBE_ENV_VAR, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass
class SlowProbeEntry:
    agent_id: str | None
    turn: int | None
    duration_ms: float
    threshold_ms: float
    trace: Trace | None


class SlowProbeLog:
    """Bounded ring buffer of slow-probe entries (oldest evicted first).

    Lock discipline: every accessor — including ``__len__`` — takes
    ``_lock`` before touching ``_entries``; the WARNING log line is
    emitted outside the lock.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._entries: deque[SlowProbeEntry] = deque(maxlen=max(1, capacity))

    def record(self, entry: SlowProbeEntry) -> None:
        with self._lock:
            self._entries.append(entry)
        _LOG.warning(
            "slow probe: agent=%s turn=%s took %.1fms (threshold %.1fms)",
            entry.agent_id,
            entry.turn,
            entry.duration_ms,
            entry.threshold_ms,
        )

    def entries(self) -> list[SlowProbeEntry]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
