"""Probe tracing: a zero-dependency ``Trace``/``Span`` tree.

A trace follows one probe end-to-end through the serving stack —
session submit → gateway admission window → QoS verdict → scheduler
work group + speculation unit → engine execution (per-plan-node spans)
→ WAL commit / replica offload / shard scatter-gather — and is attached
to the finished :class:`~repro.core.probe.ProbeResponse` as
``response.trace``. Export with :meth:`Trace.to_chrome` (Chrome
``trace_event`` JSON, loadable in ``about:tracing`` / Perfetto).

Tracing is opt-in per probe via ``Brief.trace`` or globally via
``REPRO_TRACE=1`` (setting ``REPRO_SLOW_PROBE_MS`` also implies it —
a slow probe cannot be traced retroactively). When no trace is active
the entire layer reduces to one ambient-contextvar read per plumbing
point, never per row; the bench-asserted contract is <2% overhead with
tracing off on the scheduler corpus.

Propagation uses a :mod:`contextvars` variable holding the *current
span*: engine recursion, thread-pool speculation, and the
process-dispatch pickle seam each re-anchor it explicitly (worker
processes build a detached subtree that :func:`reparent` grafts back
under the coordinator-side unit span, normalizing the two processes'
unrelated monotonic clock bases).

Concurrency discipline: a ``Span``'s ``children`` list is only ever
appended to by the thread that owns the span at that moment — unit
spans are pre-created on the coordinator thread *before* pool
submission, so pool workers only ever touch their own subtree.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from contextlib import contextmanager
from typing import Iterator

TRACE_ENV_VAR = "REPRO_TRACE"
SLOW_PROBE_ENV_VAR = "REPRO_SLOW_PROBE_MS"

_TRUTHY = {"1", "true", "yes", "on"}

#: Kill switch for benchmarking the instrumentation itself: when True,
#: every obs entry point short-circuits before touching the contextvar,
#: so ``bench_obs`` can A/B "tracing off" against "obs layer absent".
DISABLED = False

_now = time.perf_counter


def _env_truthy(raw: str) -> bool:
    return raw.strip().lower() in _TRUTHY


def resolve_trace_enabled() -> bool:
    """Is global tracing requested by the environment right now?

    Read dynamically (not cached at import) so CI legs that export
    ``REPRO_TRACE=1`` and tests that monkeypatch the env both work.
    """
    if _env_truthy(os.environ.get(TRACE_ENV_VAR, "")):
        return True
    # A slow-probe threshold implies tracing: the offending probe's
    # trace must already exist by the time it turns out to be slow.
    return bool(os.environ.get(SLOW_PROBE_ENV_VAR, "").strip())


def trace_wanted(brief) -> bool:
    """Should a probe carrying ``brief`` be traced?

    An explicit ``Brief.trace`` (True *or* False) wins over the
    environment; ``None`` defers to :func:`resolve_trace_enabled`.
    """
    if DISABLED:
        return False
    explicit = getattr(brief, "trace", None) if brief is not None else None
    if explicit is not None:
        return bool(explicit)
    return resolve_trace_enabled()


class Span:
    """One timed node in a trace tree.

    Timings are monotonic-clock (``time.perf_counter``) floats in
    seconds; ``attrs`` is a flat dict of structured attributes;
    ``children`` are sub-spans. Plain attributes throughout so spans
    pickle across the process-dispatch seam unchanged.
    """

    def __init__(self, name: str, start: float | None = None) -> None:
        self.name = name
        self.start = _now() if start is None else start
        self.end: float | None = None
        self.attrs: dict = {}
        self.children: list[Span] = []

    def child(self, name: str, start: float | None = None, **attrs) -> "Span":
        span = Span(name, start=start)
        if attrs:
            span.attrs.update(attrs)
        self.children.append(span)
        return span

    def note(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end: float | None = None) -> "Span":
        if self.end is None:
            self.end = _now() if end is None else end
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else _now()
        return (end - self.start) * 1000.0

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, prefix: str) -> list["Span"]:
        """Every span in this subtree whose name starts with ``prefix``."""
        return [span for span in self.walk() if span.name.startswith(prefix)]

    def shift(self, delta: float) -> "Span":
        """Translate this subtree's time base by ``delta`` seconds."""
        for span in self.walk():
            span.start += delta
            if span.end is not None:
                span.end += delta
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration_ms if self.end is not None else None,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, children={len(self.children)})"


class Trace:
    """A probe's span tree, rooted at the ``probe`` span."""

    def __init__(self, name: str = "probe", **attrs) -> None:
        self.root = Span(name)
        if attrs:
            self.root.attrs.update(attrs)

    def finish(self) -> "Trace":
        self.root.finish()
        return self

    @property
    def finished(self) -> bool:
        return self.root.end is not None

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def spans(self) -> Iterator[Span]:
        return self.root.walk()

    def find(self, prefix: str) -> list[Span]:
        return self.root.find(prefix)

    def to_dict(self) -> dict:
        return self.root.to_dict()

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON (one complete ``"X"`` event per
        span, µs timestamps relative to the trace origin) — loadable
        directly in ``about:tracing`` or https://ui.perfetto.dev."""
        origin = self.root.start
        events = []
        for span in self.spans():
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - origin) * 1e6,
                    "dur": max(0.0, (end - span.start) * 1e6),
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attrs),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.root.name!r}, spans={sum(1 for _ in self.spans())})"


# -- ambient context ----------------------------------------------------------

_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Span | None:
    """The ambient span execution is currently inside, or ``None``.

    This is the single call every tracing-off hot path pays: one module
    flag check plus one contextvar read.
    """
    if DISABLED:
        return None
    return _CURRENT.get()


def set_current(span: Span | None) -> contextvars.Token:
    """Re-anchor the ambient span; pass the token to :func:`reset_current`."""
    return _CURRENT.set(span)


def reset_current(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


@contextmanager
def use_span(span: Span | None):
    """Run a block with ``span`` as the ambient span (no-op on ``None``)."""
    if span is None:
        yield None
        return
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(token)


@contextmanager
def child_span(name: str, **attrs):
    """Open a child of the ambient span for the block's duration.

    Yields ``None`` (and does nothing) when no trace is active, so call
    sites need no conditional of their own.
    """
    parent = current_span()
    if parent is None:
        yield None
        return
    span = parent.child(name, **attrs)
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(token)
        span.finish()


# -- per-probe attachment -----------------------------------------------------


def ensure_probe_trace(probe) -> Trace | None:
    """The probe's trace, creating one if its brief asks for tracing.

    The trace rides on the probe instance itself (``probe._obs_trace``)
    so it survives the ticket → window → scheduler hand-offs without
    widening any signature. ``dataclasses.replace`` drops the
    attribute — derived probes (scatter partials, effective copies)
    intentionally start fresh.
    """
    if DISABLED:
        return None
    trace = getattr(probe, "_obs_trace", None)
    if trace is not None:
        return trace
    if not trace_wanted(getattr(probe, "brief", None)):
        return None
    trace = Trace(agent_id=getattr(probe, "agent_id", None))
    probe._obs_trace = trace
    return trace


def probe_trace(probe) -> Trace | None:
    """The trace already attached to ``probe``, if any (never creates)."""
    if DISABLED:
        return None
    return getattr(probe, "_obs_trace", None)


# -- process-seam re-parenting ------------------------------------------------


def reparent(parent: Span, worker_root: Span) -> Span:
    """Graft a worker process's detached span subtree under ``parent``.

    Worker processes time spans on their *own* monotonic clock, whose
    zero point is unrelated to the coordinator's. The only anchor both
    sides share is the unit span the coordinator opened before
    dispatching, so the worker subtree is translated to start where its
    parent did — preserving every intra-worker duration and ordering
    exactly, at the cost of collapsing the (unmeasurable) transport
    latency into the parent span.
    """
    worker_root.shift(parent.start - worker_root.start)
    parent.children.append(worker_root)
    return worker_root
