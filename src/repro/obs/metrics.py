"""Unified metrics registry: Counter / Gauge / Histogram primitives.

Every serving layer used to keep a private ad-hoc ``stats()`` dict with
no shared schema and no export format. This module gives the stack one
process-local :class:`MetricsRegistry` per system: components create
named instruments (optionally labeled), mutate them on their hot paths,
and ``system.metrics()`` snapshots the whole registry into a
:class:`MetricsSnapshot` renderable as JSON or Prometheus exposition
text.

Migration contract: the existing ``stats()`` dicts keep their exact
keys — they are now *derived from* registry instruments via
:class:`MetricAttr`, a descriptor that exposes a bound instrument as a
plain read/write numeric attribute. Call sites like
``self.windows_streamed += 1`` and tests like
``gateway.windows_streamed == 2`` keep working unchanged while the
value lives in the registry.

Lock discipline: each instrument guards its series map with its own
lock, but read-modify-write sequences (``+=`` through a
:class:`MetricAttr`) are only atomic under the *component's* lock —
exactly the discipline the components already enforce for their plain
counters, so migration changes no locking requirements.
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Iterable

#: Default latency buckets (milliseconds) — tuned for sub-second probe
#: serving: microsecond engine nodes up through multi-second windows.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class _Instrument:
    """Shared machinery: label handling plus a per-series value map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def bind(self, **labels) -> "BoundInstrument":
        """A view of one labeled series with label-free mutators."""
        return BoundInstrument(self, self._key(labels))

    def series(self) -> dict[tuple, object]:
        with self._lock:
            return dict(self._series)


class Counter(_Instrument):
    """Monotone(-by-convention) counter. ``set`` exists for the
    compatibility shims, which replay ``+=`` as read-then-set under the
    owning component's lock."""

    kind = "counter"

    def inc(self, amount=1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def set(self, value, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def value(self, **labels):
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class Gauge(Counter):
    """A value that can go up and down (queue depths, occupancies)."""

    kind = "gauge"

    def dec(self, amount=1, **labels) -> None:
        self.inc(-amount, **labels)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            series.bucket_counts[idx] += 1
            series.sum += value
            series.count += 1

    def value(self, **labels) -> dict:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            cumulative, running = {}, 0
            for bound, n in zip(self.buckets, series.bucket_counts):
                running += n
                cumulative[bound] = running
            return {
                "count": series.count,
                "sum": series.sum,
                "buckets": cumulative,
            }


class BoundInstrument:
    """One labeled series of an instrument, with label-free mutators."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: _Instrument, key: tuple) -> None:
        self._instrument = instrument
        self._key = key

    def _labels(self) -> dict:
        return dict(zip(self._instrument.labelnames, self._key))

    def inc(self, amount=1) -> None:
        self._instrument.inc(amount, **self._labels())

    def dec(self, amount=1) -> None:
        self._instrument.dec(amount, **self._labels())

    def set(self, value) -> None:
        self._instrument.set(value, **self._labels())

    def observe(self, value) -> None:
        self._instrument.observe(value, **self._labels())

    def value(self):
        return self._instrument.value(**self._labels())


class MetricAttr:
    """Descriptor exposing a bound instrument as a plain numeric attribute.

    ``windows_streamed = MetricAttr("_m_windows_streamed")`` reads and
    writes the :class:`BoundInstrument` the component stored at that
    instance slot, so ``self.windows_streamed += 1`` mutates the
    registry series and ``gateway.windows_streamed`` reads it back —
    the migration shim the existing call sites and tests rely on.
    """

    def __init__(self, slot: str) -> None:
        self._slot = slot

    def __set_name__(self, owner, name) -> None:
        self._name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.__dict__[self._slot].value()

    def __set__(self, obj, value) -> None:
        obj.__dict__[self._slot].set(value)


class MetricsRegistry:
    """Process-local registry: get-or-create instruments by name.

    ``add_collector`` registers a callback run at snapshot time — the
    hook for metrics derived from live structures (cache occupancy, memo
    sizes, hit ratios) that would otherwise cost hot-path bookkeeping.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labelnames), buckets=tuple(buckets)
        )

    def add_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            self._collectors.append(fn)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> "MetricsSnapshot":
        """Run collectors, then capture every series in the registry."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()
        data: dict[str, dict] = {}
        for instrument in self.instruments():
            series_out = []
            for key in sorted(instrument.series()):
                labels = dict(zip(instrument.labelnames, key))
                series_out.append(
                    {"labels": labels, "value": instrument.value(**labels)}
                )
            data[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "series": series_out,
            }
        return MetricsSnapshot(data)


class MetricsSnapshot:
    """A point-in-time capture of a registry, with JSON and
    Prometheus-text renderers."""

    def __init__(self, data: dict[str, dict]) -> None:
        self._data = data

    def as_dict(self) -> dict:
        return self._data

    def names(self) -> list[str]:
        return sorted(self._data)

    def get(self, name: str, **labels):
        """The value of one series (``None`` when absent)."""
        metric = self._data.get(name)
        if metric is None:
            return None
        for series in metric["series"]:
            if series["labels"] == labels:
                return series["value"]
        return None

    def to_json(self) -> str:
        return json.dumps(self._data, sort_keys=True, default=str)

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (# HELP / # TYPE / samples)."""
        lines: list[str] = []
        for name in sorted(self._data):
            metric = self._data[name]
            if metric["help"]:
                lines.append(f"# HELP {name} {metric['help']}")
            lines.append(f"# TYPE {name} {metric['type']}")
            for series in metric["series"]:
                labels = series["labels"]
                value = series["value"]
                if metric["type"] == "histogram":
                    for bound, count in value["buckets"].items():
                        bucket_labels = {**labels, "le": _fmt_bound(bound)}
                        lines.append(
                            f"{name}_bucket{_fmt_labels(bucket_labels)} {count}"
                        )
                    inf_labels = {**labels, "le": "+Inf"}
                    lines.append(
                        f"{name}_bucket{_fmt_labels(inf_labels)} {value['count']}"
                    )
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {value['sum']}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {value['count']}")
                else:
                    lines.append(f"{name}{_fmt_labels(labels)} {value}")
        return "\n".join(lines) + "\n"


def _fmt_bound(bound: float) -> str:
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def merge_snapshots(parts: dict[str, MetricsSnapshot]) -> MetricsSnapshot:
    """Fuse per-shard snapshots into one, adding a ``shard`` label to
    every series (``ShardedSystem.metrics()``)."""
    merged: dict[str, dict] = {}
    for shard_label, snapshot in sorted(parts.items()):
        for name, metric in snapshot.as_dict().items():
            out = merged.setdefault(
                name, {"type": metric["type"], "help": metric["help"], "series": []}
            )
            for series in metric["series"]:
                out["series"].append(
                    {
                        "labels": {**series["labels"], "shard": str(shard_label)},
                        "value": series["value"],
                    }
                )
    return MetricsSnapshot(merged)
