"""Observability: probe tracing, unified metrics, slow-probe log.

Zero-dependency layer threaded through every serving tier — see
:mod:`repro.obs.trace` (``Trace``/``Span`` + context propagation),
:mod:`repro.obs.metrics` (``Counter``/``Gauge``/``Histogram`` registry
with Prometheus/JSON renderers), and :mod:`repro.obs.slowlog`.
"""

from repro.obs.metrics import (
    BoundInstrument,
    Counter,
    Gauge,
    Histogram,
    MetricAttr,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.slowlog import SlowProbeEntry, SlowProbeLog, resolve_slow_probe_ms
from repro.obs.trace import (
    SLOW_PROBE_ENV_VAR,
    TRACE_ENV_VAR,
    Span,
    Trace,
    child_span,
    current_span,
    ensure_probe_trace,
    probe_trace,
    reparent,
    reset_current,
    resolve_trace_enabled,
    set_current,
    trace_wanted,
    use_span,
)

__all__ = [
    "BoundInstrument",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricAttr",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "SlowProbeEntry",
    "SlowProbeLog",
    "resolve_slow_probe_ms",
    "SLOW_PROBE_ENV_VAR",
    "TRACE_ENV_VAR",
    "Span",
    "Trace",
    "child_span",
    "current_span",
    "ensure_probe_trace",
    "probe_trace",
    "reparent",
    "reset_current",
    "resolve_trace_enabled",
    "set_current",
    "trace_wanted",
    "use_span",
]
