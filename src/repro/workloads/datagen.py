"""Seeded plausible-value generators for the synthetic databases."""

from __future__ import annotations

from repro.util.rng import RngStream

FIRST_NAMES = [
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "John",
    "Margaret", "Tim", "Radia", "Vint", "Frances", "Ken", "Dennis", "Bjarne",
    "Guido", "Anders", "Yukihiro", "Brendan",
]
LAST_NAMES = [
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport",
    "Backus", "Hamilton", "Berners-Lee", "Perlman", "Cerf", "Allen",
    "Thompson", "Ritchie", "Stroustrup", "Rossum", "Hejlsberg", "Matsumoto",
    "Eich",
]
CITIES = [
    "Berkeley", "Oakland", "Seattle", "Austin", "Portland", "Denver",
    "Chicago", "Boston", "Atlanta", "Phoenix", "Madison", "Ithaca",
    "Ann Arbor", "Pittsburgh", "Durham", "Provo",
]
#: Full state names — the paper's running example of encoding mismatches is
#: agents guessing 'CA' when the data spells states out in entirety.
STATES_FULL = [
    "California", "Washington", "Texas", "Oregon", "Colorado", "Illinois",
    "Massachusetts", "Georgia", "Arizona", "Wisconsin", "New York",
    "Michigan", "Pennsylvania", "North Carolina", "Utah",
]
STATE_ABBREVIATIONS = {
    "California": "CA", "Washington": "WA", "Texas": "TX", "Oregon": "OR",
    "Colorado": "CO", "Illinois": "IL", "Massachusetts": "MA", "Georgia": "GA",
    "Arizona": "AZ", "Wisconsin": "WI", "New York": "NY", "Michigan": "MI",
    "Pennsylvania": "PA", "North Carolina": "NC", "Utah": "UT",
}
PRODUCTS = [
    "Coffee Beans", "Espresso Roast", "Green Tea", "Black Tea", "Pastry",
    "Croissant", "Cold Brew", "Matcha", "Drip Coffee", "Chai Latte",
    "Oat Milk", "Bagel", "Muffin", "Sandwich", "Granola",
]
# Stored values are capitalised (and often multi-word) — the encoding shape
# an ungrounded agent guesses wrong (paper Sec. 4.2's why-not example).
CATEGORIES = ["Beverage", "Bakery", "Grocery", "Merchandise", "Seasonal"]
GENRES = ["Fiction", "History", "Science", "Poetry", "Biography", "Fantasy"]
AIRLINES = ["Pacific Air", "Bay Express", "Cascade Jet", "Lone Star Air"]
AIRPORTS = ["SFO", "OAK", "SEA", "AUS", "PDX", "DEN", "ORD", "BOS"]
ROLES = ["Captain", "First Officer", "Purser", "Attendant"]
DEPARTMENTS = ["Cardiology", "Oncology", "Pediatrics", "Radiology", "Surgery"]


class DataGenerator:
    """Deterministic plausible values drawn from a named RNG stream."""

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng

    def full_name(self) -> str:
        return f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"

    def email(self, name: str | None = None) -> str:
        base = (name or self.full_name()).lower().replace(" ", ".")
        domain = self._rng.choice(["example.com", "mail.test", "corp.local"])
        return f"{base}@{domain}"

    def city(self) -> str:
        return self._rng.choice(CITIES)

    def state(self) -> str:
        return self._rng.choice(STATES_FULL)

    def product(self) -> str:
        return self._rng.choice(PRODUCTS)

    def category(self) -> str:
        return self._rng.choice(CATEGORIES)

    def genre(self) -> str:
        return self._rng.choice(GENRES)

    def airline(self) -> str:
        return self._rng.choice(AIRLINES)

    def airport(self) -> str:
        return self._rng.choice(AIRPORTS)

    def role(self) -> str:
        return self._rng.choice(ROLES)

    def department(self) -> str:
        return self._rng.choice(DEPARTMENTS)

    def date(self, start_year: int = 2021, end_year: int = 2024) -> str:
        year = self._rng.randint(start_year, end_year)
        month = self._rng.randint(1, 12)
        day = self._rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def year(self, low: int = 2021, high: int = 2024) -> int:
        return self._rng.randint(low, high)

    def amount(self, low: float = 1.0, high: float = 500.0) -> float:
        return round(self._rng.uniform(low, high), 2)

    def quantity(self, low: int = 1, high: int = 20) -> int:
        return self._rng.randint(low, high)

    def rating(self) -> float:
        return round(self._rng.uniform(1.0, 5.0), 1)

    def boolean(self, true_probability: float = 0.5) -> bool:
        return self._rng.bernoulli(true_probability)

    def maybe_null(self, value, null_probability: float = 0.05):
        return None if self._rng.bernoulli(null_probability) else value
