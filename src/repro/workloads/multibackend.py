"""Cross-backend tasks (the paper's second case study).

Each task splits related data across two heterogeneous backends — e.g.
customer profiles in a Mongo-style document store, interaction events in a
mini-DuckDB — and asks a question no single backend can answer: the agent
must discover both sides, clean the join keys, and combine results in
client-side Python. Impossible in one shot, by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import (
    BackendKind,
    DocumentStore,
    FederatedEnvironment,
    RelationalBackend,
)
from repro.db import Database
from repro.util.rng import RngStream
from repro.workloads.datagen import DataGenerator

#: Relational dialects rotated across tasks.
_RELATIONAL_KINDS = [BackendKind.DUCKDB, BackendKind.POSTGRES, BackendKind.SQLITE]

#: (document collection, relational table, event field) scenario templates.
_SCENARIOS = [
    ("customers", "upvotes", "votes"),
    ("users", "orders", "order_total"),
    ("devices", "telemetry", "reading"),
    ("suppliers", "shipments", "weight"),
    ("students", "submissions", "score"),
    ("drivers", "trips", "fare"),
    ("patients", "appointments", "copay"),
    ("subscribers", "streams", "minutes"),
    ("vendors", "invoices", "amount_due"),
    ("players", "matches", "points"),
    ("readers", "checkouts", "renewals"),
]


@dataclass
class CrossBackendTask:
    """One federated task with its environment and gold answer."""

    task_id: str
    description: str
    env: FederatedEnvironment
    doc_backend: str
    rel_backend: str
    collection: str
    table: str
    #: Join keys: documents carry string ids; rows carry integers — the
    #: cleaning step every successful trace performs.
    doc_key: str
    rel_key: str
    #: The categorical filter on the document side (field, value) and the
    #: plausible wrong literal an ungrounded agent guesses.
    filter_field: str
    filter_value: str
    filter_wrong_value: str | None
    #: Metric over the relational event field for matching rows.
    metric: str  # 'sum' | 'count'
    event_field: str
    gold_value: float
    #: Collections/tables present but irrelevant (exploration noise).
    distractors: tuple[str, ...] = ()

    def check(self, value: object) -> bool:
        if value is None:
            return False
        try:
            return abs(float(value) - self.gold_value) < 1e-6
        except (TypeError, ValueError):
            return False


def build_cross_backend_tasks(
    seed: int = 0, n_tasks: int = 22
) -> list[CrossBackendTask]:
    """Build the 22-task cross-backend workload (2 backends per task)."""
    tasks = []
    for index in range(n_tasks):
        rng = RngStream(seed, "xbackend", index)
        scenario = _SCENARIOS[index % len(_SCENARIOS)]
        kind = _RELATIONAL_KINDS[index % len(_RELATIONAL_KINDS)]
        tasks.append(_build_task(f"x{index:02d}", scenario, kind, rng))
    return tasks


def _build_task(
    task_id: str,
    scenario: tuple[str, str, str],
    rel_kind: BackendKind,
    rng: RngStream,
) -> CrossBackendTask:
    collection_name, table_name, event_field = scenario
    gen = DataGenerator(rng)

    segments = ["gold", "silver", "bronze", "trial"]
    segment_value = rng.choice(segments)
    # The trap: documents store the segment capitalised with a suffix; an
    # ungrounded agent filters on the plain lowercase token.
    stored_segment = segment_value.upper() + "_TIER"

    # Document side -------------------------------------------------------
    docs = DocumentStore(f"mongo_{task_id}")
    collection = docs.collection(collection_name)
    n_entities = rng.randint(30, 60)
    entity_segments: dict[int, str] = {}
    for entity_id in range(1, n_entities + 1):
        segment = rng.choice(segments).upper() + "_TIER"
        entity_segments[entity_id] = segment
        collection.insert_one(
            {
                # String-typed id: the cross-backend type mismatch.
                "external_id": str(entity_id),
                "name": gen.full_name(),
                "email": gen.email(),
                "segment": segment,
                "city": gen.city(),
            }
        )
    # A distractor collection.
    docs.collection("audit_log").insert_many(
        {"event": "login", "at": gen.date()} for _ in range(10)
    )

    # Relational side ------------------------------------------------------
    db = Database(table_name)
    db.execute(
        f"CREATE TABLE {table_name} (id INT PRIMARY KEY, entity_id INT,"
        f" {event_field} FLOAT, event_date TEXT)"
    )
    rows = []
    n_events = rng.randint(150, 300)
    for i in range(1, n_events + 1):
        rows.append(
            (
                i,
                rng.randint(1, n_entities),
                gen.amount(1, 50),
                gen.date(),
            )
        )
    db.insert_rows(table_name, rows)
    db.execute("CREATE TABLE schema_migrations (version INT, applied_at TEXT)")
    db.insert_rows("schema_migrations", [(1, "2023-01-01"), (2, "2023-06-01")])
    rel = RelationalBackend(f"{rel_kind.value}_{task_id}", rel_kind, db)

    env = FederatedEnvironment()
    env.add_backend(docs)
    env.add_backend(rel)

    # Gold answer ------------------------------------------------------------
    matching_ids = {
        entity_id
        for entity_id, segment in entity_segments.items()
        if segment == stored_segment
    }
    metric = "sum" if rng.bernoulli(0.6) else "count"
    if metric == "sum":
        gold = sum(row[2] for row in rows if row[1] in matching_ids)
    else:
        gold = float(sum(1 for row in rows if row[1] in matching_ids))
    gold = round(gold, 2)

    noun = "total " + event_field if metric == "sum" else "number of events"
    description = (
        f"Compute the {noun} in {rel.name}.{table_name} for"
        f" {collection_name} whose segment is {segment_value} (stored in"
        f" {docs.name})."
    )
    return CrossBackendTask(
        task_id=task_id,
        description=description,
        env=env,
        doc_backend=docs.name,
        rel_backend=rel.name,
        collection=collection_name,
        table=table_name,
        doc_key="external_id",
        rel_key="entity_id",
        filter_field="segment",
        filter_value=stored_segment,
        filter_wrong_value=segment_value,
        metric=metric,
        event_field=event_field,
        gold_value=gold,
        distractors=("audit_log", "schema_migrations"),
    )
