"""Workload generators: BIRD-like text2SQL tasks, cross-backend tasks, and
human-vs-agent update sessions."""

from repro.workloads.bird import BirdTask, BirdTaskPool, TaskSpec
from repro.workloads.datagen import DataGenerator
from repro.workloads.multibackend import CrossBackendTask, build_cross_backend_tasks
from repro.workloads.updates import simulate_agent_update_session, simulate_human_update_session

__all__ = [
    "BirdTask",
    "BirdTaskPool",
    "CrossBackendTask",
    "DataGenerator",
    "TaskSpec",
    "build_cross_backend_tasks",
    "simulate_agent_update_session",
    "simulate_human_update_session",
]
