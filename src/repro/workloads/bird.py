"""A synthetic BIRD-like text2SQL benchmark.

Generates (database, question, gold SQL) triples across four domains and
three difficulty tiers, mirroring the structure of BIRD [10]: single-table
filters, aggregates, group-bys, and multi-table joins, with realistic
grounding traps (e.g. state columns that spell values out in full while an
ungrounded agent would guess two-letter codes).

Every task carries a structured :class:`TaskSpec` — the machine-readable
description of the gold query. The simulated agents never see the gold SQL;
they see the NL question plus the spec's *component inventory*, from which
the attempt generator assembles (possibly wrong) SQL conditioned on the
agent's grounding and skill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Database
from repro.util.rng import RngStream
from repro.workloads.datagen import (
    DataGenerator,
    STATE_ABBREVIATIONS,
)

# ---------------------------------------------------------------------------
# task specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FilterSpec:
    """One WHERE conjunct of the gold query.

    ``wrong_value`` is the plausible-but-wrong literal an ungrounded agent
    would write (the systematic gap that only column exploration fixes);
    None means the literal is guessable from the question alone.
    """

    table: str
    column: str
    op: str  # '=' | '>' | '<' | '>='
    value: object
    wrong_value: object | None = None

    def sql(self, alias: str | None = None) -> str:
        qualifier = f"{alias}." if alias else ""
        return f"{qualifier}{self.column} {self.op} {_literal(self.value)}"


@dataclass(frozen=True)
class TaskSpec:
    """Structured description of a gold query."""

    fact_table: str
    dim_table: str | None = None
    join: tuple[str, str] | None = None  # (fact_column, dim_column)
    filters: tuple[FilterSpec, ...] = ()
    group_by: tuple[str, str] | None = None  # (table, column)
    aggregate: tuple[str, str, str] | None = None  # (func, table, column); column '*' for COUNT
    projection: tuple[tuple[str, str], ...] = ()  # (table, column) pairs
    order_desc_limit: int | None = None  # ORDER BY aggregate DESC LIMIT n

    def tables(self) -> list[str]:
        return [self.fact_table] + ([self.dim_table] if self.dim_table else [])

    def component_count(self) -> int:
        """How many error-prone components the query has (difficulty proxy)."""
        count = 1  # table linking
        count += len(self.filters)
        if self.join is not None:
            count += 1
        if self.aggregate is not None:
            count += 1
        if self.group_by is not None:
            count += 1
        return count

    # -- gold SQL -----------------------------------------------------------

    def gold_sql(self) -> str:
        fact_alias = "f" if self.dim_table else self.fact_table
        dim_alias = "d"
        select_parts: list[str] = []
        if self.group_by is not None:
            table, column = self.group_by
            select_parts.append(f"{self._alias(table, fact_alias, dim_alias)}.{column}")
        for table, column in self.projection:
            select_parts.append(f"{self._alias(table, fact_alias, dim_alias)}.{column}")
        if self.aggregate is not None:
            func, table, column = self.aggregate
            if column == "*":
                select_parts.append("COUNT(*) AS agg_value")
            else:
                qualified = f"{self._alias(table, fact_alias, dim_alias)}.{column}"
                select_parts.append(f"{func}({qualified}) AS agg_value")
        sql = "SELECT " + ", ".join(select_parts)

        if self.dim_table:
            fact_col, dim_col = self.join  # type: ignore[misc]
            sql += (
                f" FROM {self.fact_table} {fact_alias}"
                f" JOIN {self.dim_table} {dim_alias}"
                f" ON {fact_alias}.{fact_col} = {dim_alias}.{dim_col}"
            )
        else:
            sql += f" FROM {self.fact_table}"

        if self.filters:
            conjuncts = [
                f.sql(self._alias(f.table, fact_alias, dim_alias) if self.dim_table else None)
                for f in self.filters
            ]
            sql += " WHERE " + " AND ".join(conjuncts)

        if self.group_by is not None:
            table, column = self.group_by
            sql += f" GROUP BY {self._alias(table, fact_alias, dim_alias)}.{column}"
        if self.order_desc_limit is not None:
            sql += f" ORDER BY agg_value DESC LIMIT {self.order_desc_limit}"
        return sql

    def _alias(self, table: str, fact_alias: str, dim_alias: str) -> str:
        if not self.dim_table:
            return self.fact_table
        return fact_alias if table == self.fact_table else dim_alias


@dataclass
class BirdTask:
    """One benchmark task: a database, a question, and the gold answer."""

    task_id: str
    domain: str
    difficulty: str  # 'simple' | 'moderate' | 'challenging'
    db: Database
    question: str
    spec: TaskSpec
    gold_sql: str
    gold_signature: str
    distractor_tables: tuple[str, ...] = ()

    def check(self, sql: str) -> bool:
        """Does ``sql`` produce the gold answer (order-insensitive)?"""
        try:
            result = self.db.execute(sql)
        except Exception:
            return False
        return result.signature() == self.gold_signature


# ---------------------------------------------------------------------------
# domain databases
# ---------------------------------------------------------------------------


def build_domain_db(domain: str, seed: int) -> Database:
    """Build and populate one domain database."""
    rng = RngStream(seed, "domain", domain)
    gen = DataGenerator(rng)
    builder = _DOMAIN_BUILDERS[domain]
    return builder(rng, gen)


def _build_retail(rng: RngStream, gen: DataGenerator) -> Database:
    db = Database("retail")
    db.execute(
        "CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT,"
        " opened_year INT)"
    )
    db.execute(
        "CREATE TABLE products (id INT PRIMARY KEY, name TEXT, category TEXT,"
        " price FLOAT)"
    )
    db.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, store_id INT, product_id INT,"
        " sale_date TEXT, quantity INT, amount FLOAT, year INT, channel TEXT)"
    )
    n_stores = rng.randint(15, 30)
    n_products = rng.randint(12, 20)
    db.insert_rows(
        "stores",
        [
            (i, gen.city(), gen.state(), gen.year(1995, 2020))
            for i in range(1, n_stores + 1)
        ],
    )
    db.insert_rows(
        "products",
        [
            (i, gen.product() + f" #{i}", gen.category(), gen.amount(2, 40))
            for i in range(1, n_products + 1)
        ],
    )
    channels = ["In Store", "Online", "Wholesale", "Drive Thru"]
    rows = []
    for i in range(1, rng.randint(400, 700) + 1):
        date = gen.date()
        rows.append(
            (
                i,
                rng.randint(1, n_stores),
                rng.randint(1, n_products),
                date,
                gen.quantity(),
                gen.amount(),
                int(date[:4]),
                rng.choice(channels),
            )
        )
    db.insert_rows("sales", rows)
    return db


def _build_library(rng: RngStream, gen: DataGenerator) -> Database:
    db = Database("library")
    db.execute("CREATE TABLE authors (id INT PRIMARY KEY, name TEXT, country TEXT)")
    db.execute(
        "CREATE TABLE books (id INT PRIMARY KEY, title TEXT, author_id INT,"
        " genre TEXT, published_year INT)"
    )
    db.execute(
        "CREATE TABLE loans (id INT PRIMARY KEY, book_id INT, member TEXT,"
        " loan_date TEXT, days INT, branch TEXT)"
    )
    n_authors = rng.randint(12, 25)
    n_books = rng.randint(40, 80)
    countries = ["United States", "United Kingdom", "Canada", "Germany", "Japan"]
    db.insert_rows(
        "authors",
        [(i, gen.full_name(), rng.choice(countries)) for i in range(1, n_authors + 1)],
    )
    db.insert_rows(
        "books",
        [
            (
                i,
                f"{gen.genre().title()} Volume {i}",
                rng.randint(1, n_authors),
                gen.genre(),
                gen.year(1950, 2023),
            )
            for i in range(1, n_books + 1)
        ],
    )
    branches = ["Main Library", "East Branch", "West Branch", "Downtown"]
    db.insert_rows(
        "loans",
        [
            (
                i,
                rng.randint(1, n_books),
                gen.full_name(),
                gen.date(),
                rng.randint(1, 60),
                rng.choice(branches),
            )
            for i in range(1, rng.randint(300, 500) + 1)
        ],
    )
    return db


def _build_flights(rng: RngStream, gen: DataGenerator) -> Database:
    db = Database("flights")
    db.execute("CREATE TABLE airports (code TEXT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE flights (id INT PRIMARY KEY, airline TEXT, origin TEXT,"
        " destination TEXT, flight_date TEXT, delay_minutes INT, year INT)"
    )
    db.execute(
        "CREATE TABLE crew_assignments (id INT PRIMARY KEY, flight_id INT,"
        " crew_name TEXT, role TEXT)"
    )
    airports = ["SFO", "OAK", "SEA", "AUS", "PDX", "DEN", "ORD", "BOS"]
    db.insert_rows(
        "airports", [(code, gen.city(), gen.state()) for code in airports]
    )
    n_flights = rng.randint(250, 450)
    rows = []
    for i in range(1, n_flights + 1):
        origin = rng.choice(airports)
        destination = rng.choice([a for a in airports if a != origin])
        date = gen.date()
        rows.append(
            (
                i,
                gen.airline(),
                origin,
                destination,
                date,
                max(rng.randint(-10, 180), 0),
                int(date[:4]),
            )
        )
    db.insert_rows("flights", rows)
    db.insert_rows(
        "crew_assignments",
        [
            (i, rng.randint(1, n_flights), gen.full_name(), gen.role())
            for i in range(1, rng.randint(400, 700) + 1)
        ],
    )
    return db


def _build_clinic(rng: RngStream, gen: DataGenerator) -> Database:
    db = Database("clinic")
    db.execute(
        "CREATE TABLE doctors (id INT PRIMARY KEY, name TEXT, department TEXT)"
    )
    db.execute(
        "CREATE TABLE patients (id INT PRIMARY KEY, name TEXT, city TEXT,"
        " state TEXT)"
    )
    db.execute(
        "CREATE TABLE visits (id INT PRIMARY KEY, patient_id INT, doctor_id INT,"
        " visit_date TEXT, cost FLOAT, year INT, insurance TEXT)"
    )
    n_doctors = rng.randint(8, 15)
    n_patients = rng.randint(40, 80)
    db.insert_rows(
        "doctors",
        [(i, gen.full_name(), gen.department()) for i in range(1, n_doctors + 1)],
    )
    db.insert_rows(
        "patients",
        [
            (i, gen.full_name(), gen.city(), gen.state())
            for i in range(1, n_patients + 1)
        ],
    )
    insurers = ["Blue Shield", "Golden Care", "Med Direct", "Self Pay"]
    rows = []
    for i in range(1, rng.randint(300, 500) + 1):
        date = gen.date()
        rows.append(
            (
                i,
                rng.randint(1, n_patients),
                rng.randint(1, n_doctors),
                date,
                gen.amount(40, 900),
                int(date[:4]),
                rng.choice(insurers),
            )
        )
    db.insert_rows("visits", rows)
    return db


_DOMAIN_BUILDERS = {
    "retail": _build_retail,
    "library": _build_library,
    "flights": _build_flights,
    "clinic": _build_clinic,
}

DOMAINS = tuple(_DOMAIN_BUILDERS)

#: Per-domain query-building metadata: the fact table, joinable dims, the
#: numeric columns, categorical filter columns (with trap flags), and
#: group-by candidates.
_DOMAIN_META = {
    "retail": {
        "fact": "sales",
        "dims": [("stores", ("store_id", "id")), ("products", ("product_id", "id"))],
        "measures": [("sales", "amount"), ("sales", "quantity")],
        "filters": [
            ("sales", "year", "year"),
            ("sales", "channel", "plain"),
            ("stores", "state", "state_full"),
            ("stores", "city", "plain"),
            ("products", "category", "plain"),
        ],
        "groups": [("stores", "city"), ("stores", "state"), ("products", "category"), ("sales", "year")],
    },
    "library": {
        "fact": "loans",
        "dims": [("books", ("book_id", "id"))],
        "measures": [("loans", "days")],
        "filters": [
            ("loans", "branch", "plain"),
            ("books", "genre", "plain"),
            ("books", "published_year", "year_range"),
        ],
        "groups": [("books", "genre")],
    },
    "flights": {
        "fact": "flights",
        "dims": [("airports", ("origin", "code"))],
        "measures": [("flights", "delay_minutes")],
        "filters": [
            ("flights", "airline", "plain"),
            ("flights", "year", "year"),
            ("airports", "state", "state_full"),
        ],
        "groups": [("flights", "airline"), ("airports", "city"), ("flights", "origin")],
    },
    "clinic": {
        "fact": "visits",
        "dims": [("patients", ("patient_id", "id")), ("doctors", ("doctor_id", "id"))],
        "measures": [("visits", "cost")],
        "filters": [
            ("visits", "year", "year"),
            ("visits", "insurance", "plain"),
            ("doctors", "department", "plain"),
            ("patients", "state", "state_full"),
        ],
        "groups": [("doctors", "department"), ("patients", "city"), ("visits", "year")],
    },
}


# ---------------------------------------------------------------------------
# task generation
# ---------------------------------------------------------------------------


class BirdTaskPool:
    """Generates a reusable pool of tasks over shared domain databases."""

    def __init__(self, seed: int = 0, databases_per_domain: int = 2) -> None:
        self.seed = seed
        self._rng = RngStream(seed, "bird-pool")
        self._dbs: dict[tuple[str, int], Database] = {}
        self._databases_per_domain = databases_per_domain

    def database(self, domain: str, index: int) -> Database:
        key = (domain, index)
        if key not in self._dbs:
            self._dbs[key] = build_domain_db(domain, self.seed * 100 + index)
        return self._dbs[key]

    def generate(self, n_tasks: int) -> list[BirdTask]:
        tasks: list[BirdTask] = []
        difficulties = ["simple", "moderate", "challenging"]
        for i in range(n_tasks):
            domain = DOMAINS[i % len(DOMAINS)]
            db_index = (i // len(DOMAINS)) % self._databases_per_domain
            difficulty = difficulties[i % len(difficulties)]
            rng = self._rng.child("task", i)
            task = self._generate_task(
                f"t{i:03d}", domain, db_index, difficulty, rng
            )
            if task is not None:
                tasks.append(task)
        return tasks

    def _generate_task(
        self, task_id: str, domain: str, db_index: int, difficulty: str, rng: RngStream
    ) -> BirdTask | None:
        db = self.database(domain, db_index)
        meta = _DOMAIN_META[domain]
        spec = self._build_spec(db, meta, difficulty, rng)
        gold_sql = spec.gold_sql()
        try:
            gold = db.execute(gold_sql)
        except Exception:
            return None
        if gold.row_count == 0:
            # Regenerate with a safer filter rather than ship an empty gold.
            spec = self._build_spec(db, meta, difficulty, rng.child("retry"))
            gold_sql = spec.gold_sql()
            try:
                gold = db.execute(gold_sql)
            except Exception:
                return None
        question = self._question_text(domain, spec)
        distractors = tuple(
            t for t in db.table_names() if t not in spec.tables()
        )
        return BirdTask(
            task_id=task_id,
            domain=domain,
            difficulty=difficulty,
            db=db,
            question=question,
            spec=spec,
            gold_sql=gold_sql,
            gold_signature=gold.signature(),
            distractor_tables=distractors,
        )

    # -- spec construction -------------------------------------------------------

    def _build_spec(
        self, db: Database, meta: dict, difficulty: str, rng: RngStream
    ) -> TaskSpec:
        fact = meta["fact"]
        use_join = difficulty in ("moderate", "challenging") and rng.bernoulli(
            0.8 if difficulty == "challenging" else 0.5
        )
        dim_table = None
        join = None
        if use_join and meta["dims"]:
            dim_table, join = rng.choice(meta["dims"])

        available_filters = [
            f for f in meta["filters"] if f[0] == fact or f[0] == dim_table
        ]
        n_filters = 1 if difficulty == "simple" else rng.randint(1, 2)
        chosen = rng.sample(available_filters, min(n_filters, len(available_filters)))
        filters = tuple(
            self._make_filter(db, table, column, kind, rng)
            for table, column, kind in chosen
        )

        func, measure_table, measure_col = self._choose_measure(meta, fact, rng)

        group_by = None
        order_desc_limit = None
        aggregate = (func, measure_table, measure_col)
        projection: tuple[tuple[str, str], ...] = ()
        if difficulty == "simple":
            if rng.bernoulli(0.5):
                # Plain filter-project task, no aggregation.
                aggregate = None
                projection = self._simple_projection(db, fact)
        else:
            candidate_groups = [
                g for g in meta["groups"] if g[0] == fact or g[0] == dim_table
            ]
            if candidate_groups:
                group_by = rng.choice(candidate_groups)
            if difficulty == "challenging" and rng.bernoulli(0.6):
                order_desc_limit = rng.randint(3, 5)

        return TaskSpec(
            fact_table=fact,
            dim_table=dim_table,
            join=join,
            filters=filters,
            group_by=group_by,
            aggregate=aggregate,
            projection=projection,
            order_desc_limit=order_desc_limit if group_by else None,
        )

    def _choose_measure(
        self, meta: dict, fact: str, rng: RngStream
    ) -> tuple[str, str, str]:
        if rng.bernoulli(0.3):
            return ("COUNT", fact, "*")
        table, column = rng.choice(meta["measures"])
        func = rng.choice(["SUM", "AVG", "MAX"])
        return (func, table, column)

    def _simple_projection(self, db: Database, fact: str) -> tuple[tuple[str, str], ...]:
        schema = db.catalog.table(fact).schema
        names = schema.column_names()
        return tuple((fact, name) for name in names[: min(3, len(names))])

    def _make_filter(
        self, db: Database, table: str, column: str, kind: str, rng: RngStream
    ) -> FilterSpec:
        stats = db.catalog.stats(table).column(column)
        assert stats is not None
        if kind == "year":
            value = rng.randint(2021, 2024)
            return FilterSpec(table, column, "=", value)
        if kind == "year_range":
            value = rng.randint(1980, 2010)
            return FilterSpec(table, column, ">", value)
        # Categorical: pick a real most-common value so gold is non-empty.
        candidates = [v for v, _ in stats.most_common if isinstance(v, str)]
        value = rng.choice(candidates) if candidates else ""
        wrong = None
        if kind == "state_full":
            wrong = STATE_ABBREVIATIONS.get(str(value))
        elif isinstance(value, str) and value:
            # Case/shape traps an ungrounded agent falls into: lowercase the
            # stored value, or keep only its first word ("Cascade" for
            # "Cascade Jet"). Both are plausible guesses that match nothing.
            if value.lower() != value:
                wrong = value.lower()
            elif " " in value:
                wrong = value.split(" ", 1)[0]
        return FilterSpec(table, column, "=", value, wrong_value=wrong)

    # -- question text -----------------------------------------------------------

    def _question_text(self, domain: str, spec: TaskSpec) -> str:
        parts: list[str] = []
        if spec.aggregate is not None:
            func, _, column = spec.aggregate
            noun = {
                "COUNT": "number of records",
                "SUM": f"total {column}",
                "AVG": f"average {column}",
                "MAX": f"maximum {column}",
            }[func]
            parts.append(f"What is the {noun} in {spec.fact_table}")
        else:
            cols = ", ".join(c for _, c in spec.projection)
            parts.append(f"List {cols} from {spec.fact_table}")
        if spec.group_by is not None:
            parts.append(f"for each {spec.group_by[1]}")
        if spec.dim_table:
            parts.append(f"(joining {spec.dim_table})")
        for filter_spec in spec.filters:
            parts.append(
                f"where {filter_spec.column} {filter_spec.op} {filter_spec.value}"
            )
        if spec.order_desc_limit:
            parts.append(f"— report the top {spec.order_desc_limit}")
        return " ".join(parts) + "?"


def _literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
