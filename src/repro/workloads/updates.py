"""Human vs. agent update workloads over the branched transaction manager.

Regenerates the paper's Sec. 6.2 observation from Neon telemetry: agents
create ~20x more branches and perform ~50x more rollbacks than humans,
because agentic speculation explores many what-if hypotheses per task and
keeps at most one.

Both simulators run the same kind of task ("adjust some account balances")
against a :class:`~repro.txn.BranchManager`; only the *strategy* differs:

* a **human** edits the mainline directly, occasionally using one feature
  branch, almost never rolling back (mistakes are fixed forward);
* an **agent** forks one branch per hypothesis (several per task), runs
  speculative updates on each, rolls back all but the winner, and merges
  the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.txn import BranchManager
from repro.util.rng import RngStream


@dataclass
class UpdateSessionStats:
    """Branch/rollback/update counts for one simulated session."""

    actor: str
    tasks: int = 0
    branches_created: int = 0
    rollbacks: int = 0
    merges: int = 0
    updates: int = 0


def simulate_human_update_session(
    manager: BranchManager, rng: RngStream, n_tasks: int = 10
) -> UpdateSessionStats:
    """A human operator: mostly mainline edits, rare branches, rare aborts."""
    stats = UpdateSessionStats(actor="human", tasks=n_tasks)
    for task_index in range(n_tasks):
        use_branch = rng.bernoulli(0.18)
        if use_branch:
            name = f"human_t{task_index}_{rng.randint(0, 10**6)}"
            branch = manager.fork("main", name)
            stats.branches_created += 1
            for _ in range(rng.randint(1, 3)):
                _random_update(branch, rng)
                stats.updates += 1
            if rng.bernoulli(0.35):
                manager.rollback(name)
                stats.rollbacks += 1
            else:
                manager.merge(name)
                stats.merges += 1
        else:
            for _ in range(rng.randint(1, 3)):
                _random_update(manager.main, rng)
                stats.updates += 1
    return stats


def simulate_agent_update_session(
    manager: BranchManager,
    rng: RngStream,
    n_tasks: int = 10,
    hypotheses_per_task: tuple[int, int] = (2, 5),
) -> UpdateSessionStats:
    """An agent: fork-per-hypothesis, keep one winner, roll back the rest."""
    stats = UpdateSessionStats(actor="agent", tasks=n_tasks)
    for task_index in range(n_tasks):
        n_hypotheses = rng.randint(*hypotheses_per_task)
        branch_names = []
        for hypothesis in range(n_hypotheses):
            name = f"agent_t{task_index}_h{hypothesis}_{rng.randint(0, 10**6)}"
            branch = manager.fork("main", name)
            branch_names.append(name)
            stats.branches_created += 1
            for _ in range(rng.randint(2, 6)):
                _random_update(branch, rng)
                stats.updates += 1
        # Evaluate hypotheses; keep at most one (sometimes none pans out).
        winner = rng.choice(branch_names) if rng.bernoulli(0.8) else None
        for name in branch_names:
            if name == winner:
                try:
                    manager.merge(name)
                    stats.merges += 1
                except Exception:
                    manager.rollback(name)
                    stats.rollbacks += 1
            else:
                manager.rollback(name)
                stats.rollbacks += 1
    return stats


def _random_update(branch, rng: RngStream) -> None:
    account = rng.randint(0, 49)
    amount = round(rng.uniform(0, 500), 2)
    branch.execute(
        f"UPDATE accounts SET balance = {amount} WHERE id = {account}"
    )


def fresh_accounts_manager(n_accounts: int = 50) -> BranchManager:
    """A BranchManager over a small accounts table, ready for sessions."""
    from repro.db import Database

    db = Database("bank")
    db.execute(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)"
    )
    db.insert_rows(
        "accounts", [(i, f"owner{i}", 1000.0) for i in range(n_accounts)]
    )
    return BranchManager(db)
