"""Grounding artifacts: the unit of storage in the agentic memory store."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any


class ArtifactKind(enum.Enum):
    """What a piece of grounding describes (paper Sec. 6.1 "Artifacts")."""

    PROBE_RESULT = "probe_result"  # result (or summary) of a prior probe
    PARTIAL_SOLUTION = "partial_solution"  # SQL fragment that worked
    COLUMN_ENCODING = "column_encoding"  # e.g. states stored as 'CA' vs full names
    MISSING_VALUES = "missing_values"  # null patterns of a column
    VALUE_RANGE = "value_range"  # date/location/numeric ranges per partition
    SCHEMA_NOTE = "schema_note"  # free-text semantics of a table/column
    JOIN_HINT = "join_hint"  # discovered join keys between tables
    STATS_SUMMARY = "stats_summary"  # cached column statistics


_ids = itertools.count(1)


@dataclass
class Artifact:
    """One remembered fact with provenance and dependency tracking.

    ``subject`` names what the fact is about — ``(table,)`` or
    ``(table, column)``. ``depends_on`` lists the tables whose data the
    fact was derived from; staleness tracking keys off it.
    ``data_sensitive`` separates facts invalidated by any DML (e.g. cached
    probe results) from facts that only schema changes invalidate (e.g.
    column encodings).
    """

    kind: ArtifactKind
    subject: tuple[str, ...]
    text: str
    content: dict[str, Any] = field(default_factory=dict)
    principal: str = "public"
    shared: bool = False
    depends_on: tuple[str, ...] = ()
    data_sensitive: bool = True
    created_turn: int = 0
    artifact_id: int = field(default_factory=lambda: next(_ids))
    stale: bool = False
    hits: int = 0

    def subject_key(self) -> tuple[str, ...]:
        return tuple(part.lower() for part in self.subject)

    def describe(self) -> str:
        freshness = " [STALE]" if self.stale else ""
        return f"[{self.kind.value}] {'.'.join(self.subject)}: {self.text}{freshness}"
