"""Staleness policies for the agentic memory store.

The paper (Sec. 6.1) weighs two maintenance strategies for memory whose
source data changed:

* **EAGER** — invalidate (drop) dependent artifacts immediately on change.
  Never serves stale grounding; loses potentially-still-useful facts.
* **LAZY** — keep artifacts but mark them stale; lookups return them with
  a staleness flag the agent can choose to trust or re-verify. Cheaper,
  but "stale information may lead a new probe to make a mistake".

Schema changes (CREATE/DROP) always invalidate dependents under both
policies; data changes only affect ``data_sensitive`` artifacts.
"""

from __future__ import annotations

import enum

from repro.db.database import ChangeEvent


class StalenessPolicy(enum.Enum):
    EAGER = "eager"
    LAZY = "lazy"


def affected_by(event: ChangeEvent, depends_on: tuple[str, ...], data_sensitive: bool) -> bool:
    """Does ``event`` invalidate an artifact with these dependencies?"""
    table = event.table.lower()
    touched = table in {d.lower() for d in depends_on}
    if not touched:
        return False
    if event.kind in ("create", "drop"):
        return True
    return data_sensitive
