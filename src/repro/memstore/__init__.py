"""Agentic memory store: a persistent, queryable semantic cache of grounding.

Implements the paper's Sec. 6.1: artifacts record what agents have learned
about the data (probe results, encoding formats, missing-value notes, value
ranges, join hints); a vector index answers open-ended similarity lookups;
structured lookups serve targeted retrieval; staleness tracking invalidates
(eagerly or lazily) when the underlying data or schema changes; and
namespaces give per-principal access control with an opt-in sharing knob.
"""

from repro.memstore.artifacts import Artifact, ArtifactKind
from repro.memstore.staleness import StalenessPolicy
from repro.memstore.store import AgenticMemoryStore
from repro.memstore.vector_index import VectorIndex

__all__ = [
    "AgenticMemoryStore",
    "Artifact",
    "ArtifactKind",
    "StalenessPolicy",
    "VectorIndex",
]
