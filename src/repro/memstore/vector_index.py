"""Brute-force cosine vector index.

Adequate for the memory store's scale (thousands of artifacts); the
interface is what matters — swap in an ANN structure without touching
callers.
"""

from __future__ import annotations

import numpy as np

from repro.semantic.embedding import HashedEmbedder


class VectorIndex:
    """Maps integer ids to embedded texts; answers top-k cosine queries."""

    def __init__(self, embedder: HashedEmbedder | None = None) -> None:
        self._embedder = embedder or HashedEmbedder()
        self._ids: list[int] = []
        self._matrix: np.ndarray | None = None
        self._pending: list[tuple[int, np.ndarray]] = []

    def add(self, item_id: int, text: str) -> None:
        self._pending.append((item_id, self._embedder.embed(text)))

    def remove(self, item_id: int) -> None:
        self._flush()
        if self._matrix is None or item_id not in self._ids:
            return
        keep = [i for i, existing in enumerate(self._ids) if existing != item_id]
        self._ids = [self._ids[i] for i in keep]
        self._matrix = self._matrix[keep] if keep else None

    def _flush(self) -> None:
        if not self._pending:
            return
        new_ids = [item_id for item_id, _ in self._pending]
        new_rows = np.vstack([vector for _, vector in self._pending])
        self._ids.extend(new_ids)
        if self._matrix is None:
            self._matrix = new_rows
        else:
            self._matrix = np.vstack([self._matrix, new_rows])
        self._pending.clear()

    def query(self, text: str, k: int = 5) -> list[tuple[int, float]]:
        """Top-k (id, cosine score) for ``text``; embeddings are unit-norm."""
        self._flush()
        if self._matrix is None or not self._ids:
            return []
        query_vector = self._embedder.embed(text)
        scores = self._matrix @ query_vector
        order = np.argsort(-scores, kind="stable")[:k]
        return [(self._ids[int(i)], float(scores[int(i)])) for i in order]

    def __len__(self) -> int:
        return len(self._ids) + len(self._pending)
