"""The agentic memory store.

A hybrid store over grounding artifacts:

* **semantic lookup** — a vector index over artifact texts answers
  open-ended "what do we know that is like X?" probes;
* **structured lookup** — exact retrieval by kind and subject
  ``(table[, column])`` serves targeted probes;
* **staleness** — subscribes to database change events and applies an
  :class:`~repro.memstore.staleness.StalenessPolicy`;
* **access control** — artifacts live in per-principal namespaces; lookups
  see the caller's own artifacts plus explicitly ``shared`` ones. The
  ``share_across_principals`` knob models the paper's privacy trade-off:
  sharing boosts efficiency but leaks one user's discoveries to another.
"""

from __future__ import annotations

from collections import defaultdict

from repro.db.database import ChangeEvent, Database
from repro.errors import MemoryStoreError
from repro.memstore.artifacts import Artifact, ArtifactKind
from repro.memstore.staleness import StalenessPolicy, affected_by
from repro.memstore.vector_index import VectorIndex
from repro.semantic.embedding import HashedEmbedder


class AgenticMemoryStore:
    """Persistent, queryable grounding shared by agents (paper Sec. 6.1)."""

    def __init__(
        self,
        policy: StalenessPolicy = StalenessPolicy.LAZY,
        share_across_principals: bool = True,
        embedder: HashedEmbedder | None = None,
    ) -> None:
        self.policy = policy
        self.share_across_principals = share_across_principals
        self._artifacts: dict[int, Artifact] = {}
        self._by_subject: dict[tuple, list[int]] = defaultdict(list)
        self._vectors = VectorIndex(embedder)
        self.invalidations = 0
        self.stale_marks = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, db: Database) -> None:
        """Subscribe to a database's change events for staleness tracking."""
        db.on_change(self.on_change)

    # -- writes -----------------------------------------------------------------

    def put(self, artifact: Artifact) -> int:
        """Store an artifact; returns its id. Replaces an existing artifact
        with the same (kind, subject, principal), superseding old knowledge."""
        existing = self._find_exact(
            artifact.kind, artifact.subject_key(), artifact.principal
        )
        if existing is not None:
            self._remove(existing.artifact_id)
        self._artifacts[artifact.artifact_id] = artifact
        self._by_subject[(artifact.kind, artifact.subject_key())].append(
            artifact.artifact_id
        )
        self._vectors.add(artifact.artifact_id, artifact.text)
        return artifact.artifact_id

    def remember(
        self,
        kind: ArtifactKind,
        subject: tuple[str, ...],
        text: str,
        principal: str = "public",
        shared: bool = False,
        depends_on: tuple[str, ...] | None = None,
        data_sensitive: bool = True,
        turn: int = 0,
        **content,
    ) -> int:
        """Convenience constructor + put."""
        artifact = Artifact(
            kind=kind,
            subject=subject,
            text=text,
            content=content,
            principal=principal,
            shared=shared,
            depends_on=depends_on if depends_on is not None else (subject[0],),
            data_sensitive=data_sensitive,
            created_turn=turn,
        )
        return self.put(artifact)

    def _remove(self, artifact_id: int) -> None:
        artifact = self._artifacts.pop(artifact_id, None)
        if artifact is None:
            return
        key = (artifact.kind, artifact.subject_key())
        if artifact_id in self._by_subject.get(key, []):
            self._by_subject[key].remove(artifact_id)
        self._vectors.remove(artifact_id)

    # -- reads ------------------------------------------------------------------

    def get(self, artifact_id: int, principal: str = "public") -> Artifact:
        artifact = self._artifacts.get(artifact_id)
        if artifact is None:
            raise MemoryStoreError(f"no artifact {artifact_id}")
        if not self._visible(artifact, principal):
            from repro.errors import AccessDenied

            raise AccessDenied(
                f"principal {principal!r} cannot read artifact {artifact_id}"
            )
        artifact.hits += 1
        return artifact

    def lookup(
        self,
        kind: ArtifactKind,
        subject: tuple[str, ...],
        principal: str = "public",
        include_stale: bool = True,
    ) -> list[Artifact]:
        """Exact structured lookup by kind and subject."""
        key = tuple(part.lower() for part in subject)
        out = []
        for artifact_id in self._by_subject.get((kind, key), []):
            artifact = self._artifacts[artifact_id]
            if not self._visible(artifact, principal):
                continue
            if artifact.stale and not include_stale:
                continue
            artifact.hits += 1
            out.append(artifact)
        return out

    def search(
        self,
        text: str,
        principal: str = "public",
        k: int = 5,
        include_stale: bool = True,
        min_score: float = 0.05,
    ) -> list[tuple[Artifact, float]]:
        """Semantic lookup: artifacts whose text is similar to ``text``."""
        raw = self._vectors.query(text, k=k * 3)
        out: list[tuple[Artifact, float]] = []
        for artifact_id, score in raw:
            if score < min_score:
                continue
            artifact = self._artifacts.get(artifact_id)
            if artifact is None or not self._visible(artifact, principal):
                continue
            if artifact.stale and not include_stale:
                continue
            artifact.hits += 1
            out.append((artifact, score))
            if len(out) >= k:
                break
        return out

    def artifacts_about(self, table: str, principal: str = "public") -> list[Artifact]:
        """Everything known about a table (any kind, any column)."""
        table_key = table.lower()
        out = []
        for artifact in self._artifacts.values():
            if artifact.subject_key() and artifact.subject_key()[0] == table_key:
                if self._visible(artifact, principal):
                    out.append(artifact)
        return sorted(out, key=lambda a: a.artifact_id)

    def __len__(self) -> int:
        return len(self._artifacts)

    def stale_count(self) -> int:
        return sum(1 for a in self._artifacts.values() if a.stale)

    # -- staleness ----------------------------------------------------------------

    def on_change(self, event: ChangeEvent) -> None:
        """Apply the staleness policy to artifacts affected by ``event``."""
        victims = [
            artifact
            for artifact in self._artifacts.values()
            if affected_by(event, artifact.depends_on, artifact.data_sensitive)
        ]
        for artifact in victims:
            if self.policy is StalenessPolicy.EAGER:
                self._remove(artifact.artifact_id)
                self.invalidations += 1
            else:
                if not artifact.stale:
                    artifact.stale = True
                    self.stale_marks += 1

    def refresh(self, artifact_id: int, new_text: str | None = None, **content) -> None:
        """Mark an artifact fresh again after re-verification."""
        artifact = self._artifacts.get(artifact_id)
        if artifact is None:
            raise MemoryStoreError(f"no artifact {artifact_id}")
        artifact.stale = False
        if new_text is not None:
            artifact.text = new_text
            self._vectors.remove(artifact_id)
            self._vectors.add(artifact_id, new_text)
        artifact.content.update(content)

    # -- access control ------------------------------------------------------------

    def _visible(self, artifact: Artifact, principal: str) -> bool:
        if artifact.principal == principal:
            return True
        if artifact.shared and self.share_across_principals:
            return True
        return False

    def _find_exact(
        self, kind: ArtifactKind, subject_key: tuple, principal: str
    ) -> Artifact | None:
        for artifact_id in self._by_subject.get((kind, subject_key), []):
            artifact = self._artifacts[artifact_id]
            if artifact.principal == principal:
                return artifact
        return None
