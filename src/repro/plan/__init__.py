"""Logical query plans: builder, optimizer rules, costs, fingerprints."""

from repro.plan.builder import build_plan
from repro.plan.cost import CostEstimate, estimate_cost
from repro.plan.fingerprint import (
    FINGERPRINT_STATS,
    NodeFingerprints,
    fingerprint,
    fingerprint_uncached,
    fingerprints,
    subexpressions,
)
from repro.plan.logical import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    OutputCol,
    PlanNode,
    Project,
    Scan,
    Sort,
    SubqueryScan,
    root_operator_code,
)
from repro.plan.rules import optimize_plan

__all__ = [
    "Aggregate",
    "CostEstimate",
    "FINGERPRINT_STATS",
    "NodeFingerprints",
    "Distinct",
    "Filter",
    "HashJoin",
    "IndexScan",
    "Limit",
    "NestedLoopJoin",
    "OutputCol",
    "PlanNode",
    "Project",
    "Scan",
    "Sort",
    "SubqueryScan",
    "build_plan",
    "estimate_cost",
    "fingerprint",
    "fingerprint_uncached",
    "fingerprints",
    "optimize_plan",
    "root_operator_code",
    "subexpressions",
]
