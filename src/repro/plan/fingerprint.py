"""Canonical plan fingerprints and sub-expression enumeration.

Fingerprints identify *semantically shareable* work: two plan subtrees with
the same fingerprint would compute the same rows, regardless of alias
choices, conjunct order, or operand order of commutative operators. They
power

* Figure 2's total-vs-unique sub-expression analysis,
* the multi-query-optimization cache (paper Sec. 5.2.1), and
* the materialization advisor (paper Sec. 5.2.2).

Canonicalisation performed:

* table aliases are replaced by the underlying base-table name (aliases from
  subqueries are kept — they denote genuinely different relations);
* unqualified column references are qualified against the subtree's scans;
* AND/OR chains are flattened and sorted; commutative binary operators
  (``=``, ``<>``, ``+``, ``*``) order operands canonically;
* projection output order is ignored (sorted), since a permutation of
  columns is the same work.

Memoization
-----------

The serving path fingerprints the *same* plan many times: the executor
keys its cache by the strict fingerprint of every node it materialises,
the probe optimizer needs strict+lenient digests per executed query, and
the scheduler/census walk whole batches of plans. Recomputing the binding
map and re-canonicalising the full subtree on every call is O(depth²) per
plan. Instead, :func:`fingerprints` computes strict and lenient digests
(and the subtree size) for **all** subtrees in one bottom-up pass and
caches them on each (immutable-after-optimize) :class:`PlanNode`, so every
later call — on the root or any descendant — is a dict lookup.

The bottom-up pass is byte-identical to the per-call path whenever no
binding name is shadowed (two scans/aliases mapping one name to different
relations), which a pre-pass verifies; the rare shadowed plan falls back
to the original per-call computation (kept as :func:`fingerprint_uncached`,
which also serves as the differential baseline in tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan import logical
from repro.sql import nodes
from repro.util.hashing import stable_hash

_COMMUTATIVE_OPS = frozenset({"=", "<>", "+", "*"})

#: Attribute name under which per-node digests are cached. Set with
#: ``object.__setattr__`` (the nodes are frozen dataclasses); the cached
#: value is content-derived, so sharing a subtree between plans is safe.
_MEMO_ATTR = "_fingerprint_memo"


@dataclass(frozen=True)
class NodeFingerprints:
    """Both digests (and the subtree size) of one plan node."""

    lenient: str
    strict: str
    size: int


@dataclass
class FingerprintStats:
    """Observability counters for the memoization layer.

    ``nodes_canonicalised`` counts individual node canonicalisations (the
    unit of work memoization removes); the scheduler benchmark differences
    it to demonstrate the reduction. Counters are advisory: updates are
    not synchronised, so under free-threaded builds they may undercount.
    """

    calls: int = 0
    memo_hits: int = 0
    trees_memoized: int = 0
    shadowed_fallbacks: int = 0
    nodes_canonicalised: int = 0

    def reset(self) -> None:
        self.calls = 0
        self.memo_hits = 0
        self.trees_memoized = 0
        self.shadowed_fallbacks = 0
        self.nodes_canonicalised = 0


FINGERPRINT_STATS = FingerprintStats()


def fingerprints(plan: logical.PlanNode) -> NodeFingerprints:
    """Strict + lenient digests (and size) of ``plan``, memoized.

    The first call on any node of a tree runs one bottom-up pass over that
    node's subtree and caches a :class:`NodeFingerprints` on every node it
    visits; subsequent calls — including on descendants — are lookups.
    """
    FINGERPRINT_STATS.calls += 1
    memo = plan.__dict__.get(_MEMO_ATTR)
    if memo is not None:
        FINGERPRINT_STATS.memo_hits += 1
        return memo[0]
    return _memoize_tree(plan)[0]


def fingerprint(plan: logical.PlanNode, strict: bool = False) -> str:
    """Canonical fingerprint of ``plan`` (40-char hex).

    With ``strict=False`` (the default, used by Figure 2's analysis and the
    materialization advisor) output *order* is ignored: a permutation of
    projected columns or of inner-join sides is "the same work". With
    ``strict=True`` (used by the executor's result cache) column and side
    order are preserved, so equal fingerprints imply byte-identical result
    rows.
    """
    memoized = fingerprints(plan)
    return memoized.strict if strict else memoized.lenient


def fingerprint_uncached(plan: logical.PlanNode, strict: bool = False) -> str:
    """The per-call (non-memoized) fingerprint: rebuilds the binding map
    and re-canonicalises the whole subtree.

    Kept as the differential baseline for the memoization layer and as the
    fallback for binding-shadowed plans; produces identical digests to
    :func:`fingerprint` by construction.
    """
    return stable_hash(_canonical(plan, _binding_map(plan), strict))


@dataclass(frozen=True)
class SubExpression:
    """One plan subtree, as counted by Figure 2."""

    fingerprint: str
    size: int
    root_code: str


def subexpressions(plan: logical.PlanNode) -> list[SubExpression]:
    """Every subtree of ``plan`` with its fingerprint, size, and root code."""
    memo = plan.__dict__.get(_MEMO_ATTR)
    if memo is None:
        memo = _memoize_tree(plan)
    if memo[1] is None:
        # Shadowed bindings: per-subtree maps diverge from the root's, so
        # keep the original one-map-for-all-subtrees semantics.
        return _subexpressions_uncached(plan)
    out: list[SubExpression] = []
    for node in plan.walk():
        cached: NodeFingerprints = node.__dict__[_MEMO_ATTR][0]
        out.append(
            SubExpression(
                fingerprint=cached.lenient,
                size=cached.size,
                root_code=logical.root_operator_code(node),
            )
        )
    return out


def _subexpressions_uncached(plan: logical.PlanNode) -> list[SubExpression]:
    """Pre-memoization enumeration: one root binding map for all subtrees."""
    binding_map = _binding_map(plan)
    out: list[SubExpression] = []
    for node in plan.walk():
        out.append(
            SubExpression(
                fingerprint=stable_hash(_canonical(node, binding_map, False)),
                size=node.node_count(),
                root_code=logical.root_operator_code(node),
            )
        )
    return out


# ---------------------------------------------------------------------------
# memoization pass
# ---------------------------------------------------------------------------


def _memoize_tree(root: logical.PlanNode) -> tuple:
    """Memoize every node of ``root``'s tree; return the root's memo.

    A memo is ``(NodeFingerprints, lenient_tuple, strict_tuple)``. The
    canonical tuples are kept so parents can embed them without
    re-canonicalising; fallback memos (shadowed bindings) carry ``None``
    tuples, which also marks that descendants were *not* memoized.
    """
    bindings: dict[str, str] = {}
    if _collect_bindings(root, bindings):
        memo = _memoize_consistent(root, bindings)
    else:
        # A binding name maps to two different relations somewhere in this
        # tree: subtree-local maps diverge, so only the root digest (always
        # computed against its own map) can be cached safely.
        FINGERPRINT_STATS.shadowed_fallbacks += 1
        root_map = _binding_map(root)
        lenient_tuple = _canonical(root, root_map, False)
        strict_tuple = _canonical(root, root_map, True)
        memo = (
            NodeFingerprints(
                lenient=stable_hash(lenient_tuple),
                strict=stable_hash(strict_tuple),
                size=root.node_count(),
            ),
            None,
            None,
        )
        object.__setattr__(root, _MEMO_ATTR, memo)
    FINGERPRINT_STATS.trees_memoized += 1
    return memo


def _collect_bindings(root: logical.PlanNode, out: dict[str, str]) -> bool:
    """Build the root binding map; False when a name is shadowed."""
    consistent = True
    for node in root.walk():
        if isinstance(node, (logical.Scan, logical.IndexScan)):
            name, target = node.binding.lower(), node.table.lower()
        elif isinstance(node, logical.SubqueryScan):
            name = node.alias.lower()
            target = name
        else:
            continue
        existing = out.get(name)
        if existing is None:
            out[name] = target
        elif existing != target:
            consistent = False
    return consistent


def _memoize_consistent(node: logical.PlanNode, bindings: dict[str, str]) -> tuple:
    """Bottom-up memoization under a shadow-free binding map.

    With no shadowing, each subtree's own binding map agrees with the
    root's on every name the subtree can reference, so child canonical
    tuples computed here are exactly what ``fingerprint_uncached`` would
    produce for the child — parents embed them directly instead of
    re-canonicalising the whole subtree per level.
    """
    memo = node.__dict__.get(_MEMO_ATTR)
    if memo is not None and memo[1] is not None:
        return memo
    child_memos = [_memoize_consistent(child, bindings) for child in node.children()]
    child_lenient = tuple(child[1] for child in child_memos)
    child_strict = tuple(child[2] for child in child_memos)
    lenient_tuple = _canonical_node(node, bindings, False, child_lenient)
    strict_tuple = _canonical_node(node, bindings, True, child_strict)
    memo = (
        NodeFingerprints(
            lenient=stable_hash(lenient_tuple),
            strict=stable_hash(strict_tuple),
            size=1 + sum(child[0].size for child in child_memos),
        ),
        lenient_tuple,
        strict_tuple,
    )
    object.__setattr__(node, _MEMO_ATTR, memo)
    return memo


# ---------------------------------------------------------------------------
# plan canonicalisation
# ---------------------------------------------------------------------------


def _binding_map(plan: logical.PlanNode) -> dict[str, str]:
    """Map binding name (lower) -> base table name for alias erasure."""
    mapping: dict[str, str] = {}
    for node in plan.walk():
        if isinstance(node, (logical.Scan, logical.IndexScan)):
            mapping[node.binding.lower()] = node.table.lower()
        elif isinstance(node, logical.SubqueryScan):
            mapping.setdefault(node.alias.lower(), node.alias.lower())
    return mapping


def _stable_sorted(items) -> list:
    """Sort canonical tuples, surviving mixed-type literals.

    Canonical expression tuples embed raw literal values, and Python
    refuses to order e.g. ``1`` against ``'x'`` (``SELECT 1, 'x'`` used to
    crash lenient fingerprinting here). Plain sort stays the first choice
    so historical digests of comparable inputs are unchanged; only
    incomparable inputs take the repr-keyed total order.
    """
    items = list(items)
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=repr)


def _canonical(node: logical.PlanNode, bindings: dict[str, str], strict: bool) -> tuple:
    """Per-call canonicalisation: recurses over children itself."""
    child_tuples = tuple(
        _canonical(child, bindings, strict) for child in node.children()
    )
    return _canonical_node(node, bindings, strict, child_tuples)


def _canonical_node(
    node: logical.PlanNode,
    bindings: dict[str, str],
    strict: bool,
    child_tuples: tuple[tuple, ...],
) -> tuple:
    """Canonical tuple of one node given its children's canonical tuples.

    ``child_tuples`` is parallel to ``node.children()``; both the per-call
    path and the memoized bottom-up pass funnel through here, so their
    tuples (and therefore digests) are identical by construction.
    """
    FINGERPRINT_STATS.nodes_canonicalised += 1
    if isinstance(node, logical.Scan):
        columns = [c.lower() for c in node.columns]
        if not strict:
            columns = sorted(columns)
        return ("scan", node.table.lower(), tuple(columns))
    if isinstance(node, logical.IndexScan):
        index_columns = [c.lower() for c in node.columns]
        if not strict:
            index_columns = sorted(index_columns)
        base = (
            "indexscan",
            node.table.lower(),
            tuple(index_columns),
            node.index_column.lower(),
            node.equal_value,
            node.low,
            node.high,
            node.low_inclusive,
            node.high_inclusive,
            node.is_equality,
        )
        # Row-id-ordered scans produce a different row order than native
        # index order, so they must never share a digest with the default;
        # appending the marker only when set keeps historical digests for
        # planner-emitted scans unchanged.
        return base + ("rid-order",) if node.row_id_order else base
    if isinstance(node, logical.ViewScan):
        # Identity is (source subtree, build, column permutation): rows are
        # pinned by build_id, so equal digests imply identical output.
        return ("viewscan", node.source_strict, node.build_id, node.projection)
    if isinstance(node, logical.OneRow):
        return ("onerow",)
    if isinstance(node, logical.SubqueryScan):
        return ("subquery", node.alias.lower(), child_tuples[0])
    if isinstance(node, logical.Filter):
        return (
            "filter",
            _canonical_predicate(node.predicate, bindings, node.child),
            child_tuples[0],
        )
    if isinstance(node, logical.Project):
        exprs = [_canonical_expr(expr, bindings, node.child) for expr in node.exprs]
        if not strict:
            exprs = _stable_sorted(exprs)
        return ("project", tuple(exprs), child_tuples[0])
    if isinstance(node, logical.HashJoin):
        left, right = child_tuples
        pairs = []
        for l, r in zip(node.left_keys, node.right_keys):
            pairs.append(
                (
                    _canonical_expr(l, bindings, node.left),
                    _canonical_expr(r, bindings, node.right),
                )
            )
        residual = (
            None
            if node.residual is None
            else _canonical_predicate(node.residual, bindings, node)
        )
        if node.kind == "INNER" and not strict:
            # Inner hash joins are commutative: order sides canonically.
            left_side = (left, tuple(_stable_sorted(p[0] for p in pairs)))
            right_side = (right, tuple(_stable_sorted(p[1] for p in pairs)))
            sides = _stable_sorted([left_side, right_side])
            key_set = tuple(_stable_sorted(tuple(_stable_sorted(p)) for p in pairs))
            return ("hashjoin", "INNER", sides[0], sides[1], key_set, residual)
        return ("hashjoin", node.kind, left, right, tuple(_stable_sorted(pairs)), residual)
    if isinstance(node, logical.NestedLoopJoin):
        condition = (
            None
            if node.condition is None
            else _canonical_predicate(node.condition, bindings, node)
        )
        left, right = child_tuples
        if node.kind in ("INNER", "CROSS") and not strict:
            first, second = _stable_sorted([left, right])
            return ("nljoin", node.kind, first, second, condition)
        return ("nljoin", node.kind, left, right, condition)
    if isinstance(node, logical.Aggregate):
        group_list = [_canonical_expr(e, bindings, node.child) for e in node.group_exprs]
        agg_list = [_canonical_expr(a, bindings, node.child) for a in node.agg_calls]
        if not strict:
            group_list = _stable_sorted(group_list)
            agg_list = _stable_sorted(agg_list)
        return (
            "aggregate",
            tuple(group_list),
            tuple(agg_list),
            child_tuples[0],
        )
    if isinstance(node, logical.Sort):
        keys = tuple(
            (_canonical_expr(expr, bindings, node.child), asc)
            for expr, asc in node.keys
        )
        return ("sort", keys, child_tuples[0])
    if isinstance(node, logical.Limit):
        return ("limit", node.limit, node.offset, child_tuples[0])
    if isinstance(node, logical.Distinct):
        return ("distinct", child_tuples[0])
    raise TypeError(f"cannot canonicalise plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# expression canonicalisation
# ---------------------------------------------------------------------------


def _canonical_predicate(
    expr: nodes.Expr, bindings: dict[str, str], scope: logical.PlanNode
) -> tuple:
    """Canonical form of a boolean predicate: flatten + sort AND/OR chains."""
    if isinstance(expr, nodes.Binary) and expr.op in ("AND", "OR"):
        parts = _stable_sorted(
            _canonical_predicate(part, bindings, scope)
            for part in _flatten(expr, expr.op)
        )
        return (expr.op.lower(), tuple(parts))
    return _canonical_expr(expr, bindings, scope)


def _flatten(expr: nodes.Expr, op: str) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == op:
        return _flatten(expr.left, op) + _flatten(expr.right, op)
    return [expr]


def _canonical_expr(
    expr: nodes.Expr, bindings: dict[str, str], scope: logical.PlanNode
) -> tuple:
    if isinstance(expr, nodes.Literal):
        return ("lit", expr.value)
    if isinstance(expr, nodes.ColumnRef):
        qualifier = expr.table.lower() if expr.table else _infer_binding(expr, scope)
        base = bindings.get(qualifier or "", qualifier or "")
        return ("col", base, expr.column.lower())
    if isinstance(expr, nodes.Star):
        return ("star", expr.table.lower() if expr.table else None)
    if isinstance(expr, nodes.Unary):
        return ("unary", expr.op, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, nodes.Binary):
        left = _canonical_expr(expr.left, bindings, scope)
        right = _canonical_expr(expr.right, bindings, scope)
        if expr.op in _COMMUTATIVE_OPS:
            left, right = _stable_sorted([left, right])
        # Normalise flipped inequalities: a > b  ==  b < a.
        flip = {">": "<", ">=": "<="}
        if expr.op in flip:
            return ("bin", flip[expr.op], right, left)
        if expr.op in ("AND", "OR"):
            return _canonical_predicate(expr, bindings, scope)
        return ("bin", expr.op, left, right)
    if isinstance(expr, nodes.IsNull):
        return ("isnull", expr.negated, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, nodes.InList):
        items = tuple(
            _stable_sorted(_canonical_expr(item, bindings, scope) for item in expr.items)
        )
        return ("inlist", expr.negated, _canonical_expr(expr.operand, bindings, scope), items)
    if isinstance(expr, nodes.Between):
        return (
            "between",
            expr.negated,
            _canonical_expr(expr.operand, bindings, scope),
            _canonical_expr(expr.low, bindings, scope),
            _canonical_expr(expr.high, bindings, scope),
        )
    if isinstance(expr, nodes.FuncCall):
        return (
            "func",
            expr.name,
            expr.distinct,
            tuple(_canonical_expr(arg, bindings, scope) for arg in expr.args),
        )
    if isinstance(expr, nodes.Case):
        whens = tuple(
            (
                _canonical_expr(c, bindings, scope),
                _canonical_expr(r, bindings, scope),
            )
            for c, r in expr.whens
        )
        else_part = (
            None
            if expr.else_result is None
            else _canonical_expr(expr.else_result, bindings, scope)
        )
        return ("case", whens, else_part)
    if isinstance(expr, nodes.Cast):
        return ("cast", expr.type_name, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)):
        # Subquery expressions canonicalise via their SQL text; they are rare
        # in the workloads and never join-shared.
        negated = getattr(expr, "negated", False)
        return ("subexpr", type(expr).__name__, negated, expr.sql().lower())
    raise TypeError(f"cannot canonicalise expression {type(expr).__name__}")


def _infer_binding(ref: nodes.ColumnRef, scope: logical.PlanNode) -> str | None:
    """Find the unique binding providing an unqualified column, if any."""
    matches = {
        col.binding.lower()
        for col in scope.output
        if col.binding is not None and col.name.lower() == ref.column.lower()
    }
    if len(matches) == 1:
        return matches.pop()
    return None
