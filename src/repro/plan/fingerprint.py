"""Canonical plan fingerprints and sub-expression enumeration.

Fingerprints identify *semantically shareable* work: two plan subtrees with
the same fingerprint would compute the same rows, regardless of alias
choices, conjunct order, or operand order of commutative operators. They
power

* Figure 2's total-vs-unique sub-expression analysis,
* the multi-query-optimization cache (paper Sec. 5.2.1), and
* the materialization advisor (paper Sec. 5.2.2).

Canonicalisation performed:

* table aliases are replaced by the underlying base-table name (aliases from
  subqueries are kept — they denote genuinely different relations);
* unqualified column references are qualified against the subtree's scans;
* AND/OR chains are flattened and sorted; commutative binary operators
  (``=``, ``<>``, ``+``, ``*``) order operands canonically;
* projection output order is ignored (sorted), since a permutation of
  columns is the same work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan import logical
from repro.sql import nodes
from repro.util.hashing import stable_hash

_COMMUTATIVE_OPS = frozenset({"=", "<>", "+", "*"})


def fingerprint(plan: logical.PlanNode, strict: bool = False) -> str:
    """Canonical fingerprint of ``plan`` (40-char hex).

    With ``strict=False`` (the default, used by Figure 2's analysis and the
    materialization advisor) output *order* is ignored: a permutation of
    projected columns or of inner-join sides is "the same work". With
    ``strict=True`` (used by the executor's result cache) column and side
    order are preserved, so equal fingerprints imply byte-identical result
    rows.
    """
    binding_map = _binding_map(plan)
    return stable_hash(_canonical(plan, binding_map, strict))


@dataclass(frozen=True)
class SubExpression:
    """One plan subtree, as counted by Figure 2."""

    fingerprint: str
    size: int
    root_code: str


def subexpressions(plan: logical.PlanNode) -> list[SubExpression]:
    """Every subtree of ``plan`` with its fingerprint, size, and root code."""
    binding_map = _binding_map(plan)
    out: list[SubExpression] = []
    for node in plan.walk():
        out.append(
            SubExpression(
                fingerprint=stable_hash(_canonical(node, binding_map, False)),
                size=node.node_count(),
                root_code=logical.root_operator_code(node),
            )
        )
    return out


# ---------------------------------------------------------------------------
# plan canonicalisation
# ---------------------------------------------------------------------------


def _binding_map(plan: logical.PlanNode) -> dict[str, str]:
    """Map binding name (lower) -> base table name for alias erasure."""
    mapping: dict[str, str] = {}
    for node in plan.walk():
        if isinstance(node, (logical.Scan, logical.IndexScan)):
            mapping[node.binding.lower()] = node.table.lower()
        elif isinstance(node, logical.SubqueryScan):
            mapping.setdefault(node.alias.lower(), node.alias.lower())
    return mapping


def _canonical(node: logical.PlanNode, bindings: dict[str, str], strict: bool) -> tuple:
    if isinstance(node, logical.Scan):
        columns = [c.lower() for c in node.columns]
        if not strict:
            columns = sorted(columns)
        return ("scan", node.table.lower(), tuple(columns))
    if isinstance(node, logical.IndexScan):
        index_columns = [c.lower() for c in node.columns]
        if not strict:
            index_columns = sorted(index_columns)
        return (
            "indexscan",
            node.table.lower(),
            tuple(index_columns),
            node.index_column.lower(),
            node.equal_value,
            node.low,
            node.high,
            node.low_inclusive,
            node.high_inclusive,
            node.is_equality,
        )
    if isinstance(node, logical.OneRow):
        return ("onerow",)
    if isinstance(node, logical.SubqueryScan):
        return ("subquery", node.alias.lower(), _canonical(node.child, bindings, strict))
    if isinstance(node, logical.Filter):
        return (
            "filter",
            _canonical_predicate(node.predicate, bindings, node.child),
            _canonical(node.child, bindings, strict),
        )
    if isinstance(node, logical.Project):
        exprs = [_canonical_expr(expr, bindings, node.child) for expr in node.exprs]
        if not strict:
            exprs = sorted(exprs)
        return ("project", tuple(exprs), _canonical(node.child, bindings, strict))
    if isinstance(node, logical.HashJoin):
        left = _canonical(node.left, bindings, strict)
        right = _canonical(node.right, bindings, strict)
        pairs = []
        for l, r in zip(node.left_keys, node.right_keys):
            pairs.append(
                (
                    _canonical_expr(l, bindings, node.left),
                    _canonical_expr(r, bindings, node.right),
                )
            )
        residual = (
            None
            if node.residual is None
            else _canonical_predicate(node.residual, bindings, node)
        )
        if node.kind == "INNER" and not strict:
            # Inner hash joins are commutative: order sides canonically.
            left_side = (left, tuple(sorted(p[0] for p in pairs)))
            right_side = (right, tuple(sorted(p[1] for p in pairs)))
            sides = sorted([left_side, right_side])
            key_set = tuple(sorted(tuple(sorted(p)) for p in pairs))
            return ("hashjoin", "INNER", sides[0], sides[1], key_set, residual)
        return ("hashjoin", node.kind, left, right, tuple(sorted(pairs)), residual)
    if isinstance(node, logical.NestedLoopJoin):
        condition = (
            None
            if node.condition is None
            else _canonical_predicate(node.condition, bindings, node)
        )
        left = _canonical(node.left, bindings, strict)
        right = _canonical(node.right, bindings, strict)
        if node.kind in ("INNER", "CROSS") and not strict:
            first, second = sorted([left, right])
            return ("nljoin", node.kind, first, second, condition)
        return ("nljoin", node.kind, left, right, condition)
    if isinstance(node, logical.Aggregate):
        group_list = [_canonical_expr(e, bindings, node.child) for e in node.group_exprs]
        agg_list = [_canonical_expr(a, bindings, node.child) for a in node.agg_calls]
        if not strict:
            group_list = sorted(group_list)
            agg_list = sorted(agg_list)
        return (
            "aggregate",
            tuple(group_list),
            tuple(agg_list),
            _canonical(node.child, bindings, strict),
        )
    if isinstance(node, logical.Sort):
        keys = tuple(
            (_canonical_expr(expr, bindings, node.child), asc)
            for expr, asc in node.keys
        )
        return ("sort", keys, _canonical(node.child, bindings, strict))
    if isinstance(node, logical.Limit):
        return ("limit", node.limit, node.offset, _canonical(node.child, bindings, strict))
    if isinstance(node, logical.Distinct):
        return ("distinct", _canonical(node.child, bindings, strict))
    raise TypeError(f"cannot canonicalise plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# expression canonicalisation
# ---------------------------------------------------------------------------


def _canonical_predicate(
    expr: nodes.Expr, bindings: dict[str, str], scope: logical.PlanNode
) -> tuple:
    """Canonical form of a boolean predicate: flatten + sort AND/OR chains."""
    if isinstance(expr, nodes.Binary) and expr.op in ("AND", "OR"):
        parts = sorted(
            _canonical_predicate(part, bindings, scope)
            for part in _flatten(expr, expr.op)
        )
        return (expr.op.lower(), tuple(parts))
    return _canonical_expr(expr, bindings, scope)


def _flatten(expr: nodes.Expr, op: str) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == op:
        return _flatten(expr.left, op) + _flatten(expr.right, op)
    return [expr]


def _canonical_expr(
    expr: nodes.Expr, bindings: dict[str, str], scope: logical.PlanNode
) -> tuple:
    if isinstance(expr, nodes.Literal):
        return ("lit", expr.value)
    if isinstance(expr, nodes.ColumnRef):
        qualifier = expr.table.lower() if expr.table else _infer_binding(expr, scope)
        base = bindings.get(qualifier or "", qualifier or "")
        return ("col", base, expr.column.lower())
    if isinstance(expr, nodes.Star):
        return ("star", expr.table.lower() if expr.table else None)
    if isinstance(expr, nodes.Unary):
        return ("unary", expr.op, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, nodes.Binary):
        left = _canonical_expr(expr.left, bindings, scope)
        right = _canonical_expr(expr.right, bindings, scope)
        if expr.op in _COMMUTATIVE_OPS:
            left, right = sorted([left, right])
        # Normalise flipped inequalities: a > b  ==  b < a.
        flip = {">": "<", ">=": "<="}
        if expr.op in flip:
            return ("bin", flip[expr.op], right, left)
        if expr.op in ("AND", "OR"):
            return _canonical_predicate(expr, bindings, scope)
        return ("bin", expr.op, left, right)
    if isinstance(expr, nodes.IsNull):
        return ("isnull", expr.negated, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, nodes.InList):
        items = tuple(
            sorted(_canonical_expr(item, bindings, scope) for item in expr.items)
        )
        return ("inlist", expr.negated, _canonical_expr(expr.operand, bindings, scope), items)
    if isinstance(expr, nodes.Between):
        return (
            "between",
            expr.negated,
            _canonical_expr(expr.operand, bindings, scope),
            _canonical_expr(expr.low, bindings, scope),
            _canonical_expr(expr.high, bindings, scope),
        )
    if isinstance(expr, nodes.FuncCall):
        return (
            "func",
            expr.name,
            expr.distinct,
            tuple(_canonical_expr(arg, bindings, scope) for arg in expr.args),
        )
    if isinstance(expr, nodes.Case):
        whens = tuple(
            (
                _canonical_expr(c, bindings, scope),
                _canonical_expr(r, bindings, scope),
            )
            for c, r in expr.whens
        )
        else_part = (
            None
            if expr.else_result is None
            else _canonical_expr(expr.else_result, bindings, scope)
        )
        return ("case", whens, else_part)
    if isinstance(expr, nodes.Cast):
        return ("cast", expr.type_name, _canonical_expr(expr.operand, bindings, scope))
    if isinstance(expr, (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)):
        # Subquery expressions canonicalise via their SQL text; they are rare
        # in the workloads and never join-shared.
        negated = getattr(expr, "negated", False)
        return ("subexpr", type(expr).__name__, negated, expr.sql().lower())
    raise TypeError(f"cannot canonicalise expression {type(expr).__name__}")


def _infer_binding(ref: nodes.ColumnRef, scope: logical.PlanNode) -> str | None:
    """Find the unique binding providing an unqualified column, if any."""
    matches = {
        col.binding.lower()
        for col in scope.output
        if col.binding is not None and col.name.lower() == ref.column.lower()
    }
    if len(matches) == 1:
        return matches.pop()
    return None
