"""AST → logical plan translation with full name resolution.

The builder validates every column reference against the FROM clause's
output, expands ``*``, extracts equi-join keys, plans aggregation with
expression substitution, and handles ORDER BY on non-projected columns via
hidden projection outputs. Semantic failures raise
:class:`~repro.errors.PlanError` with the kind of message an agent can act
on ("no such column", "ambiguous reference", "must appear in GROUP BY") —
the simulated agents read these messages the way an LLM reads backend
errors.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import PlanError
from repro.plan import logical
from repro.sql import nodes
from repro.storage.catalog import Catalog


def build_plan(select: nodes.Select, catalog: Catalog) -> logical.PlanNode:
    """Build an executable logical plan for ``select`` against ``catalog``."""
    return _SelectPlanner(catalog).plan(select)


class _SelectPlanner:
    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # -- entry point ---------------------------------------------------------

    def plan(self, select: nodes.Select) -> logical.PlanNode:
        if select.from_clause is None:
            source: logical.PlanNode = logical.OneRow()
        else:
            source = self._plan_table_ref(select.from_clause)

        if select.where is not None:
            if nodes.contains_aggregate(select.where):
                raise PlanError("aggregate functions are not allowed in WHERE")
            self._validate_expr(select.where, source.output)
            source = logical.Filter(source, select.where)

        items = self._expand_stars(select.items, source.output)

        aggregates = self._collect_aggregates(select, items)
        if aggregates or select.group_by:
            plan, items, order_exprs = self._plan_aggregate(select, source, items, aggregates)
        else:
            for item in items:
                self._validate_expr(item.expr, source.output)
            if select.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            plan = source
            order_exprs = [order.expr for order in select.order_by]

        return self._plan_projection(select, plan, items, order_exprs)

    # -- FROM clause ------------------------------------------------------------

    def _plan_table_ref(self, ref: nodes.TableRef) -> logical.PlanNode:
        if isinstance(ref, nodes.TableName):
            if not self._catalog.has_table(ref.name):
                known = ", ".join(sorted(self._catalog.table_names())) or "(none)"
                raise PlanError(
                    f"no such table: {ref.name!r}; known tables: {known}"
                )
            table = self._catalog.table(ref.name)
            return logical.Scan(
                table=table.schema.name,
                binding=ref.binding,
                columns=tuple(table.schema.column_names()),
            )
        if isinstance(ref, nodes.SubqueryRef):
            child = self.plan(ref.select)
            return logical.SubqueryScan(child, ref.alias)
        if isinstance(ref, nodes.Join):
            return self._plan_join(ref)
        raise PlanError(f"unsupported FROM item: {type(ref).__name__}")

    def _plan_join(self, join: nodes.Join) -> logical.PlanNode:
        left = self._plan_table_ref(join.left)
        right = self._plan_table_ref(join.right)
        self._check_binding_collision(left, right)
        if join.kind == "CROSS" or join.condition is None:
            return logical.NestedLoopJoin(left, right, "CROSS", None)

        combined = left.output + right.output
        self._validate_expr(join.condition, combined)

        left_keys: list[nodes.Expr] = []
        right_keys: list[nodes.Expr] = []
        residual: list[nodes.Expr] = []
        for conjunct in _split_conjuncts(join.condition):
            pair = self._try_equi_key(conjunct, left.output, right.output)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)

        if not left_keys:
            if join.kind == "LEFT":
                return logical.NestedLoopJoin(left, right, "LEFT", join.condition)
            return logical.NestedLoopJoin(left, right, "INNER", join.condition)
        residual_expr = _join_conjuncts(residual)
        return logical.HashJoin(
            left,
            right,
            join.kind,
            tuple(left_keys),
            tuple(right_keys),
            residual_expr,
        )

    def _check_binding_collision(
        self, left: logical.PlanNode, right: logical.PlanNode
    ) -> None:
        left_bindings = {c.binding.lower() for c in left.output if c.binding}
        right_bindings = {c.binding.lower() for c in right.output if c.binding}
        overlap = left_bindings & right_bindings
        if overlap:
            raise PlanError(
                f"duplicate table binding(s) in FROM: {', '.join(sorted(overlap))};"
                " use aliases to disambiguate"
            )

    def _try_equi_key(
        self,
        conjunct: nodes.Expr,
        left_out: tuple[logical.OutputCol, ...],
        right_out: tuple[logical.OutputCol, ...],
    ) -> tuple[nodes.Expr, nodes.Expr] | None:
        if not (isinstance(conjunct, nodes.Binary) and conjunct.op == "="):
            return None
        sides = (conjunct.left, conjunct.right)
        placements = [self._side_of(expr, left_out, right_out) for expr in sides]
        if placements == ["left", "right"]:
            return sides[0], sides[1]
        if placements == ["right", "left"]:
            return sides[1], sides[0]
        return None

    def _side_of(
        self,
        expr: nodes.Expr,
        left_out: tuple[logical.OutputCol, ...],
        right_out: tuple[logical.OutputCol, ...],
    ) -> str | None:
        refs = nodes.column_refs(expr)
        if not refs:
            return None
        sides = set()
        for ref in refs:
            on_left = _resolvable(ref, left_out)
            on_right = _resolvable(ref, right_out)
            if on_left and not on_right:
                sides.add("left")
            elif on_right and not on_left:
                sides.add("right")
            else:
                return None  # ambiguous or unresolvable
        if len(sides) == 1:
            return sides.pop()
        return None

    # -- star expansion ------------------------------------------------------------

    def _expand_stars(
        self,
        items: tuple[nodes.SelectItem, ...],
        output: tuple[logical.OutputCol, ...],
    ) -> list[nodes.SelectItem]:
        expanded: list[nodes.SelectItem] = []
        for item in items:
            if isinstance(item.expr, nodes.Star):
                star = item.expr
                matched = [
                    col
                    for col in output
                    if star.table is None
                    or (col.binding or "").lower() == star.table.lower()
                ]
                if star.table is not None and not matched:
                    raise PlanError(f"no such table binding: {star.table!r}")
                if not matched:
                    raise PlanError("SELECT * with no FROM clause")
                expanded.extend(
                    nodes.SelectItem(
                        nodes.ColumnRef(column=col.name, table=col.binding)
                    )
                    for col in matched
                )
            else:
                expanded.append(item)
        return expanded

    # -- aggregation -----------------------------------------------------------------

    def _collect_aggregates(
        self, select: nodes.Select, items: list[nodes.SelectItem]
    ) -> list[nodes.FuncCall]:
        calls: list[nodes.FuncCall] = []
        sources: list[nodes.Expr] = [item.expr for item in items]
        if select.having is not None:
            sources.append(select.having)
        sources.extend(order.expr for order in select.order_by)
        for expr in sources:
            for node in nodes.walk(expr):
                if (
                    isinstance(node, nodes.FuncCall)
                    and node.name in nodes.AGGREGATE_FUNCTIONS
                    and node not in calls
                ):
                    for arg in node.args:
                        if nodes.contains_aggregate(arg):
                            raise PlanError("nested aggregate functions")
                    calls.append(node)
        return calls

    def _plan_aggregate(
        self,
        select: nodes.Select,
        source: logical.PlanNode,
        items: list[nodes.SelectItem],
        aggregates: list[nodes.FuncCall],
    ) -> tuple[logical.PlanNode, list[nodes.SelectItem], list[nodes.Expr]]:
        alias_map = {
            item.alias.lower(): item.expr for item in items if item.alias is not None
        }
        group_exprs: list[nodes.Expr] = []
        for expr in select.group_by:
            # GROUP BY may name a select alias.
            if (
                isinstance(expr, nodes.ColumnRef)
                and expr.table is None
                and expr.column.lower() in alias_map
                and not _resolvable(expr, source.output)
            ):
                expr = alias_map[expr.column.lower()]
            if nodes.contains_aggregate(expr):
                raise PlanError("aggregate functions are not allowed in GROUP BY")
            self._validate_expr(expr, source.output)
            group_exprs.append(expr)

        for call in aggregates:
            for arg in call.args:
                if not isinstance(arg, nodes.Star):
                    self._validate_expr(arg, source.output)

        group_names = []
        for position, expr in enumerate(group_exprs):
            if isinstance(expr, nodes.ColumnRef):
                group_names.append(expr.column)
            else:
                group_names.append(f"__g{position}")
        agg_names = [f"__agg{position}" for position in range(len(aggregates))]

        agg_node = logical.Aggregate(
            child=source,
            group_exprs=tuple(group_exprs),
            group_names=tuple(group_names),
            agg_calls=tuple(aggregates),
            agg_names=tuple(agg_names),
        )

        substitutions: list[tuple[nodes.Expr, nodes.Expr]] = []
        for expr, name in zip(aggregates, agg_names):
            substitutions.append((expr, nodes.ColumnRef(column=name)))
        for expr, name, col in zip(group_exprs, group_names, agg_node.output):
            substitutions.append(
                (expr, nodes.ColumnRef(column=name, table=col.binding))
            )

        rewritten_items = []
        for item in items:
            new_expr = _substitute(item.expr, substitutions)
            self._validate_grouped_expr(new_expr, agg_node.output, item.expr)
            rewritten_items.append(nodes.SelectItem(new_expr, item.alias))

        plan: logical.PlanNode = agg_node
        if select.having is not None:
            having = _substitute(select.having, substitutions)
            self._validate_grouped_expr(having, agg_node.output, select.having)
            plan = logical.Filter(plan, having)

        order_exprs = []
        for order in select.order_by:
            rewritten = _substitute(order.expr, substitutions)
            order_exprs.append(rewritten)
        return plan, rewritten_items, order_exprs

    def _validate_grouped_expr(
        self,
        expr: nodes.Expr,
        output: tuple[logical.OutputCol, ...],
        original: nodes.Expr,
    ) -> None:
        for ref in nodes.column_refs(expr):
            if not _resolvable(ref, output):
                raise PlanError(
                    f"column {ref.sql()!r} must appear in GROUP BY or inside an"
                    f" aggregate (in {original.sql()!r})"
                )

    # -- projection / ordering / limit ----------------------------------------------

    def _plan_projection(
        self,
        select: nodes.Select,
        plan: logical.PlanNode,
        items: list[nodes.SelectItem],
        order_exprs: list[nodes.Expr],
    ) -> logical.PlanNode:
        names = _output_names(items)
        exprs = [item.expr for item in items]

        # Resolve ORDER BY keys against the projected output where possible.
        sort_keys: list[tuple[nodes.Expr, bool]] = []
        hidden: list[nodes.Expr] = []
        for order, expr in zip(select.order_by, order_exprs):
            key = self._match_projected(expr, items, names)
            if key is None:
                self._validate_expr(expr, plan.output)
                hidden_name = f"__sort{len(hidden)}"
                hidden.append(expr)
                key = nodes.ColumnRef(column=hidden_name)
            sort_keys.append((key, order.ascending))

        if hidden and select.distinct:
            raise PlanError(
                "ORDER BY column must appear in the select list of a DISTINCT query"
            )

        hidden_names = [f"__sort{i}" for i in range(len(hidden))]
        project = logical.Project(
            plan, tuple(exprs + hidden), tuple(names + hidden_names)
        )
        result: logical.PlanNode = project

        if select.distinct:
            result = logical.Distinct(result)
        if sort_keys:
            result = logical.Sort(result, tuple(sort_keys))
        if hidden:
            visible = tuple(nodes.ColumnRef(column=name) for name in names)
            result = logical.Project(result, visible, tuple(names))
        if select.limit is not None or select.offset is not None:
            result = logical.Limit(result, select.limit, select.offset or 0)
        return result

    def _match_projected(
        self,
        expr: nodes.Expr,
        items: list[nodes.SelectItem],
        names: list[str],
    ) -> nodes.Expr | None:
        """Match an ORDER BY expr to a projected output column, if any."""
        if isinstance(expr, nodes.ColumnRef) and expr.table is None:
            for name in names:
                if name.lower() == expr.column.lower():
                    return nodes.ColumnRef(column=name)
        for item, name in zip(items, names):
            if item.expr == expr:
                return nodes.ColumnRef(column=name)
        return None

    # -- validation ---------------------------------------------------------------

    def _validate_expr(
        self, expr: nodes.Expr, output: tuple[logical.OutputCol, ...]
    ) -> None:
        for node in nodes.walk(expr):
            if isinstance(node, nodes.ColumnRef):
                matches = [col for col in output if col.matches(node.column, node.table)]
                if not matches:
                    available = ", ".join(
                        (f"{c.binding}.{c.name}" if c.binding else c.name)
                        for c in output
                    )
                    raise PlanError(
                        f"no such column: {node.sql()!r}; available: {available}"
                    )
                if node.table is None and len(matches) > 1:
                    bindings = ", ".join(sorted(c.binding or "?" for c in matches))
                    raise PlanError(
                        f"ambiguous column reference {node.column!r}"
                        f" (candidates in: {bindings})"
                    )
            elif isinstance(node, nodes.Star):
                raise PlanError("'*' is only allowed in the select list or COUNT(*)")
            elif isinstance(node, (nodes.InSubquery, nodes.ScalarSubquery, nodes.Exists)):
                # Validate uncorrelated subqueries by building their plans.
                subquery = node.subquery
                self.plan(subquery)


def _resolvable(ref: nodes.ColumnRef, output: tuple[logical.OutputCol, ...]) -> bool:
    matches = [col for col in output if col.matches(ref.column, ref.table)]
    if ref.table is None and len(matches) > 1:
        return False
    return bool(matches)


def _split_conjuncts(expr: nodes.Expr) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(conjuncts: list[nodes.Expr]) -> nodes.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = nodes.Binary("AND", result, conjunct)
    return result


def _output_names(items: list[nodes.SelectItem]) -> list[str]:
    names: list[str] = []
    for position, item in enumerate(items):
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, nodes.ColumnRef):
            names.append(item.expr.column)
        elif isinstance(item.expr, nodes.FuncCall):
            names.append(item.expr.name.lower())
        else:
            names.append(f"col{position}")
    return names


def _substitute(
    expr: nodes.Expr, substitutions: list[tuple[nodes.Expr, nodes.Expr]]
) -> nodes.Expr:
    """Replace any sub-expression equal to a substitution source."""
    for source, target in substitutions:
        if expr == source:
            return target
    if isinstance(expr, nodes.Unary):
        return replace(expr, operand=_substitute(expr.operand, substitutions))
    if isinstance(expr, nodes.Binary):
        return replace(
            expr,
            left=_substitute(expr.left, substitutions),
            right=_substitute(expr.right, substitutions),
        )
    if isinstance(expr, nodes.IsNull):
        return replace(expr, operand=_substitute(expr.operand, substitutions))
    if isinstance(expr, nodes.InList):
        return replace(
            expr,
            operand=_substitute(expr.operand, substitutions),
            items=tuple(_substitute(item, substitutions) for item in expr.items),
        )
    if isinstance(expr, nodes.Between):
        return replace(
            expr,
            operand=_substitute(expr.operand, substitutions),
            low=_substitute(expr.low, substitutions),
            high=_substitute(expr.high, substitutions),
        )
    if isinstance(expr, nodes.FuncCall):
        return replace(
            expr, args=tuple(_substitute(arg, substitutions) for arg in expr.args)
        )
    if isinstance(expr, nodes.Case):
        whens = tuple(
            (_substitute(c, substitutions), _substitute(r, substitutions))
            for c, r in expr.whens
        )
        else_result = (
            None
            if expr.else_result is None
            else _substitute(expr.else_result, substitutions)
        )
        return nodes.Case(whens, else_result)
    if isinstance(expr, nodes.Cast):
        return replace(expr, operand=_substitute(expr.operand, substitutions))
    return expr
