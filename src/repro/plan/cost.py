"""Cardinality and cost estimation.

A deliberately classical System-R-style model: per-operator cardinality
estimates from catalog statistics, and an abstract cost in "row touches".
Three consumers:

* the optimizer's join-ordering and build-side decisions;
* the probe optimizer's satisficing decisions (cheap-enough vs prune);
* the sleeper agents' cost-based feedback to field agents (paper Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan import logical
from repro.sql import nodes
from repro.storage.catalog import Catalog

#: Default selectivity guesses when statistics cannot resolve a predicate.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.33
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_OTHER_SELECTIVITY = 0.5


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output rows and total cost (in abstract row touches)."""

    rows: float
    cost: float

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(self.rows + other.rows, self.cost + other.cost)


def estimate_cost(plan: logical.PlanNode, catalog: Catalog) -> CostEstimate:
    """Estimate rows-out and cumulative cost for ``plan``."""
    return _Estimator(catalog).estimate(plan)


class _Estimator:
    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def estimate(self, node: logical.PlanNode) -> CostEstimate:
        if isinstance(node, logical.Scan):
            rows = float(self._catalog.table(node.table).num_rows)
            return CostEstimate(rows, rows)
        if isinstance(node, logical.IndexScan):
            table_rows = float(self._catalog.table(node.table).num_rows)
            stats = self._catalog.stats(node.table).column(node.index_column)
            if node.is_equality:
                selectivity = (
                    stats.selectivity_equals(node.equal_value)
                    if stats
                    else DEFAULT_EQ_SELECTIVITY
                )
            else:
                selectivity = (
                    stats.selectivity_range(node.low, node.high)
                    if stats
                    else DEFAULT_RANGE_SELECTIVITY
                )
            rows = max(table_rows * selectivity, 0.0)
            # Index lookups touch only matching rows plus a log factor.
            return CostEstimate(rows, rows + _log2(table_rows))
        if isinstance(node, logical.OneRow):
            return CostEstimate(1.0, 0.0)
        if isinstance(node, logical.ViewScan):
            # Materialized rows are served as-is: cost = emitting them.
            rows = float(len(node.rows))
            return CostEstimate(rows, rows)
        if isinstance(node, logical.SubqueryScan):
            return self.estimate(node.child)
        if isinstance(node, logical.Filter):
            child = self.estimate(node.child)
            selectivity = self._predicate_selectivity(node.predicate, node.child)
            rows = child.rows * selectivity
            return CostEstimate(rows, child.cost + child.rows)
        if isinstance(node, logical.Project):
            child = self.estimate(node.child)
            return CostEstimate(child.rows, child.cost + child.rows)
        if isinstance(node, logical.HashJoin):
            return self._estimate_hash_join(node)
        if isinstance(node, logical.NestedLoopJoin):
            left = self.estimate(node.left)
            right = self.estimate(node.right)
            product = left.rows * right.rows
            selectivity = (
                1.0
                if node.condition is None
                else self._predicate_selectivity(node.condition, node)
            )
            rows = product * selectivity
            if node.kind == "LEFT":
                rows = max(rows, left.rows)
            return CostEstimate(rows, left.cost + right.cost + product)
        if isinstance(node, logical.Aggregate):
            child = self.estimate(node.child)
            if not node.group_exprs:
                rows = 1.0
            else:
                rows = max(min(child.rows, self._group_cardinality(node)), 1.0)
            return CostEstimate(rows, child.cost + child.rows)
        if isinstance(node, logical.Sort):
            child = self.estimate(node.child)
            return CostEstimate(child.rows, child.cost + child.rows * _log2(child.rows))
        if isinstance(node, logical.Limit):
            child = self.estimate(node.child)
            rows = child.rows if node.limit is None else min(child.rows, float(node.limit))
            return CostEstimate(rows, child.cost)
        if isinstance(node, logical.Distinct):
            child = self.estimate(node.child)
            return CostEstimate(max(child.rows * 0.5, 1.0), child.cost + child.rows)
        raise TypeError(f"cannot cost plan node {type(node).__name__}")

    # -- helpers ----------------------------------------------------------------

    def _estimate_hash_join(self, node: logical.HashJoin) -> CostEstimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        # Join selectivity: 1 / max(ndv(left key), ndv(right key)) per key pair.
        selectivity = 1.0
        for left_key, right_key in zip(node.left_keys, node.right_keys):
            ndv_left = self._key_ndv(left_key, node.left)
            ndv_right = self._key_ndv(right_key, node.right)
            selectivity /= max(ndv_left, ndv_right, 1.0)
        rows = left.rows * right.rows * selectivity
        if node.kind == "LEFT":
            rows = max(rows, left.rows)
        if node.residual is not None:
            rows *= self._predicate_selectivity(node.residual, node)
        cost = left.cost + right.cost + left.rows + right.rows + rows
        return CostEstimate(rows, cost)

    def _key_ndv(self, key: nodes.Expr, side: logical.PlanNode) -> float:
        if not isinstance(key, nodes.ColumnRef):
            return 10.0
        located = self._locate_column(key, side)
        if located is None:
            return 10.0
        table, column = located
        stats = self._catalog.stats(table).column(column)
        return float(stats.distinct_count) if stats else 10.0

    def _locate_column(
        self, ref: nodes.ColumnRef, scope: logical.PlanNode
    ) -> tuple[str, str] | None:
        """Resolve a column ref to (base_table, column) within ``scope``."""
        for node in scope.walk():
            if isinstance(node, (logical.Scan, logical.IndexScan)):
                binding_ok = ref.table is None or ref.table.lower() == node.binding.lower()
                if binding_ok and any(
                    c.lower() == ref.column.lower() for c in node.columns
                ):
                    return node.table, ref.column
        return None

    def _group_cardinality(self, node: logical.Aggregate) -> float:
        cardinality = 1.0
        for expr in node.group_exprs:
            if isinstance(expr, nodes.ColumnRef):
                located = self._locate_column(expr, node.child)
                if located is not None:
                    stats = self._catalog.stats(located[0]).column(located[1])
                    if stats:
                        cardinality *= max(float(stats.distinct_count), 1.0)
                        continue
            cardinality *= 10.0
        return cardinality

    def _predicate_selectivity(
        self, predicate: nodes.Expr, scope: logical.PlanNode
    ) -> float:
        if isinstance(predicate, nodes.Binary):
            if predicate.op == "AND":
                return self._predicate_selectivity(
                    predicate.left, scope
                ) * self._predicate_selectivity(predicate.right, scope)
            if predicate.op == "OR":
                left = self._predicate_selectivity(predicate.left, scope)
                right = self._predicate_selectivity(predicate.right, scope)
                return min(left + right, 1.0)
            if predicate.op == "=":
                return self._equality_selectivity(predicate, scope)
            if predicate.op in ("<", "<=", ">", ">="):
                return self._range_selectivity(predicate, scope)
            if predicate.op in ("LIKE", "NOT LIKE"):
                return DEFAULT_LIKE_SELECTIVITY
            if predicate.op == "<>":
                return 1.0 - self._equality_selectivity(predicate, scope)
        if isinstance(predicate, nodes.Unary) and predicate.op == "NOT":
            return 1.0 - self._predicate_selectivity(predicate.operand, scope)
        if isinstance(predicate, nodes.IsNull):
            column = self._column_side(predicate.operand, scope)
            if column is not None:
                stats = self._catalog.stats(column[0]).column(column[1])
                if stats:
                    fraction = stats.null_fraction
                    return (1.0 - fraction) if predicate.negated else fraction
            return 0.1
        if isinstance(predicate, nodes.InList):
            base = self._column_side(predicate.operand, scope)
            if base is not None:
                stats = self._catalog.stats(base[0]).column(base[1])
                if stats:
                    total = sum(
                        stats.selectivity_equals(item.value)
                        for item in predicate.items
                        if isinstance(item, nodes.Literal)
                    )
                    total = min(total, 1.0)
                    return 1.0 - total if predicate.negated else total
            return min(DEFAULT_EQ_SELECTIVITY * len(predicate.items), 1.0)
        if isinstance(predicate, nodes.Between):
            low = predicate.low.value if isinstance(predicate.low, nodes.Literal) else None
            high = predicate.high.value if isinstance(predicate.high, nodes.Literal) else None
            column = self._column_side(predicate.operand, scope)
            if column is not None:
                stats = self._catalog.stats(column[0]).column(column[1])
                if stats:
                    inside = stats.selectivity_range(low, high)
                    return 1.0 - inside if predicate.negated else inside
            return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_OTHER_SELECTIVITY

    def _equality_selectivity(
        self, predicate: nodes.Binary, scope: logical.PlanNode
    ) -> float:
        column, literal = self._column_literal(predicate, scope)
        if column is not None:
            stats = self._catalog.stats(column[0]).column(column[1])
            if stats:
                return stats.selectivity_equals(literal)
        return DEFAULT_EQ_SELECTIVITY

    def _range_selectivity(
        self, predicate: nodes.Binary, scope: logical.PlanNode
    ) -> float:
        column, literal = self._column_literal(predicate, scope)
        if column is not None and literal is not None:
            stats = self._catalog.stats(column[0]).column(column[1])
            if stats:
                op = predicate.op
                if isinstance(predicate.right, nodes.Literal):
                    flipped = op
                else:
                    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                if flipped in ("<", "<="):
                    return stats.selectivity_range(None, literal)
                return stats.selectivity_range(literal, None)
        return DEFAULT_RANGE_SELECTIVITY

    def _column_literal(
        self, predicate: nodes.Binary, scope: logical.PlanNode
    ) -> tuple[tuple[str, str] | None, object]:
        left, right = predicate.left, predicate.right
        if isinstance(left, nodes.ColumnRef) and isinstance(right, nodes.Literal):
            return self._locate_column(left, scope), right.value
        if isinstance(right, nodes.ColumnRef) and isinstance(left, nodes.Literal):
            return self._locate_column(right, scope), left.value
        return None, None

    def _column_side(
        self, expr: nodes.Expr, scope: logical.PlanNode
    ) -> tuple[str, str] | None:
        if isinstance(expr, nodes.ColumnRef):
            return self._locate_column(expr, scope)
        return None


def _log2(value: float) -> float:
    from math import log2

    return log2(value) if value > 1 else 0.0
