"""Logical plan operators.

A plan is an immutable tree of operators. Each node knows its output schema
(ordered :class:`OutputCol` entries, optionally qualified by a binding name)
so that parents can resolve column references positionally at execution
time. Immutability lets the optimizer rewrite plans structurally and lets
Figure 2's analysis enumerate and fingerprint subtrees safely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.sql import nodes
from repro.storage.types import Row, Value


@dataclass(frozen=True)
class OutputCol:
    """One column of an operator's output: a name plus optional qualifier."""

    name: str
    binding: str | None = None

    def matches(self, column: str, table: str | None) -> bool:
        if self.name.lower() != column.lower():
            return False
        if table is None:
            return True
        return self.binding is not None and self.binding.lower() == table.lower()


class PlanNode:
    """Base class for logical operators."""

    # -- serialization -----------------------------------------------------
    #
    # Plans cross process boundaries (the scheduler's process-pool dispatch
    # backend pickles them into worker payloads). The fingerprint memo that
    # :func:`repro.plan.fingerprint.fingerprints` caches on each node is
    # content-derived and cheap to rebuild, so it is stripped from the
    # pickled state: payloads stay small and receivers re-memoize lazily.
    # Frozen dataclass subclasses unpickle fine through ``__setstate__``'s
    # direct ``__dict__`` update — it bypasses the frozen ``__setattr__``.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_fingerprint_memo", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def output(self) -> tuple[OutputCol, ...]:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["PlanNode", ...]) -> "PlanNode":
        raise NotImplementedError

    # -- tree helpers ------------------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def fingerprints(self):
        """Strict + lenient digests (and subtree size) of this node.

        Plans are immutable after optimization, so the digests are computed
        once for the whole tree (one bottom-up pass, memoized per node by
        :func:`repro.plan.fingerprint.fingerprints`) and every later call
        is a cached lookup.
        """
        from repro.plan.fingerprint import fingerprints

        return fingerprints(self)

    def describe(self, indent: int = 0) -> str:
        """Readable EXPLAIN-style rendering."""
        line = "  " * indent + self._describe_line()
        lines = [line]
        lines.extend(child.describe(indent + 1) for child in self.children())
        return "\n".join(lines)

    def _describe_line(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PlanNode):
    """Full scan of a base table, optionally narrowed to ``columns``."""

    table: str
    binding: str
    columns: tuple[str, ...]

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return tuple(OutputCol(name, self.binding) for name in self.columns)

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: tuple[PlanNode, ...]) -> "Scan":
        assert not children
        return self

    def _describe_line(self) -> str:
        return f"Scan {self.table} AS {self.binding} [{', '.join(self.columns)}]"


@dataclass(frozen=True)
class IndexScan(PlanNode):
    """Index-driven scan: equality or range lookup on one indexed column."""

    table: str
    binding: str
    columns: tuple[str, ...]
    index_column: str
    # Equality lookup when equal_value is set; otherwise a range.
    equal_value: Value = None
    low: Value = None
    high: Value = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    is_equality: bool = True
    #: Emit rows in ascending row-id order (= base-table scan order)
    #: instead of the index's native order. The maintenance runtime's
    #: execution-time rewrites set this so an auto-built sorted index can
    #: replace a Filter-over-Scan without changing output row order.
    row_id_order: bool = False

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return tuple(OutputCol(name, self.binding) for name in self.columns)

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: tuple[PlanNode, ...]) -> "IndexScan":
        assert not children
        return self

    def _describe_line(self) -> str:
        if self.is_equality:
            return f"IndexScan {self.table}.{self.index_column} = {self.equal_value!r}"
        return (
            f"IndexScan {self.table}.{self.index_column} in "
            f"{'[' if self.low_inclusive else '('}{self.low!r}, {self.high!r}"
            f"{']' if self.high_inclusive else ')'}"
        )


@dataclass(frozen=True)
class SubqueryScan(PlanNode):
    """Re-binds a child plan's output under a subquery alias."""

    child: PlanNode
    alias: str

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return tuple(OutputCol(col.name, self.alias) for col in self.child.output)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "SubqueryScan":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        return f"SubqueryScan AS {self.alias}"


@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: nodes.Expr

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.child.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Filter":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        return f"Filter {self.predicate.sql()}"


@dataclass(frozen=True)
class Project(PlanNode):
    child: PlanNode
    exprs: tuple[nodes.Expr, ...]
    names: tuple[str, ...]

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return tuple(OutputCol(name) for name in self.names)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Project":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        rendered = ", ".join(
            f"{expr.sql()} AS {name}" for expr, name in zip(self.exprs, self.names)
        )
        return f"Project {rendered}"


@dataclass(frozen=True)
class HashJoin(PlanNode):
    """Equi-join on extracted key expressions, with optional residual filter."""

    left: PlanNode
    right: PlanNode
    kind: str  # 'INNER' | 'LEFT'
    left_keys: tuple[nodes.Expr, ...]
    right_keys: tuple[nodes.Expr, ...]
    residual: nodes.Expr | None = None

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.left.output + self.right.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[PlanNode, ...]) -> "HashJoin":
        left, right = children
        return replace(self, left=left, right=right)

    def _describe_line(self) -> str:
        keys = ", ".join(
            f"{l.sql()} = {r.sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin[{self.kind}] {keys}"


@dataclass(frozen=True)
class NestedLoopJoin(PlanNode):
    """Fallback join for non-equi or missing conditions (CROSS when None)."""

    left: PlanNode
    right: PlanNode
    kind: str  # 'INNER' | 'LEFT' | 'CROSS'
    condition: nodes.Expr | None = None

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.left.output + self.right.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[PlanNode, ...]) -> "NestedLoopJoin":
        left, right = children
        return replace(self, left=left, right=right)

    def _describe_line(self) -> str:
        clause = f" ON {self.condition.sql()}" if self.condition is not None else ""
        return f"NestedLoopJoin[{self.kind}]{clause}"


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Hash aggregation over group expressions with aggregate calls.

    Output columns are the group expressions (named) followed by one column
    per aggregate call, in declaration order.
    """

    child: PlanNode
    group_exprs: tuple[nodes.Expr, ...]
    group_names: tuple[str, ...]
    agg_calls: tuple[nodes.FuncCall, ...]
    agg_names: tuple[str, ...]

    @property
    def output(self) -> tuple[OutputCol, ...]:
        group_cols = []
        for expr, name in zip(self.group_exprs, self.group_names):
            binding = expr.table if isinstance(expr, nodes.ColumnRef) else None
            group_cols.append(OutputCol(name, binding))
        agg_cols = [OutputCol(name) for name in self.agg_names]
        return tuple(group_cols + agg_cols)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Aggregate":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        groups = ", ".join(e.sql() for e in self.group_exprs) or "()"
        aggs = ", ".join(a.sql() for a in self.agg_calls)
        return f"Aggregate groups=[{groups}] aggs=[{aggs}]"


@dataclass(frozen=True)
class Sort(PlanNode):
    child: PlanNode
    keys: tuple[tuple[nodes.Expr, bool], ...]  # (expr, ascending)

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.child.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Sort":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        keys = ", ".join(
            f"{expr.sql()} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort {keys}"


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    limit: int | None
    offset: int = 0

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.child.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Limit":
        (child,) = children
        return replace(self, child=child)

    def _describe_line(self) -> str:
        return f"Limit {self.limit} OFFSET {self.offset}"


@dataclass(frozen=True)
class Distinct(PlanNode):
    child: PlanNode

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.child.output

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: tuple[PlanNode, ...]) -> "Distinct":
        (child,) = children
        return replace(self, child=child)


#: Figure 2b's operator-type codes: PR=Projection, TS=Scan, FI=Filter,
#: HJ=Hash Join, UA=Aggregate, OT=other.
_ROOT_CODES: dict[type, str] = {
    Project: "PR",
    Scan: "TS",
    IndexScan: "TS",
    Filter: "FI",
    HashJoin: "HJ",
    Aggregate: "UA",
}


def root_operator_code(node: PlanNode) -> str:
    """Map a plan node to the paper's Figure 2b operator-type code."""
    return _ROOT_CODES.get(type(node), "OT")


@dataclass(frozen=True)
class ViewScan(PlanNode):
    """Leaf serving a maintenance-built materialized view's rows.

    Never emitted by the planner: the maintenance runtime substitutes one
    for a plan subtree whose strict fingerprint matches a valid view (or
    whose lenient fingerprint matches modulo an output-column permutation,
    closed by ``projection``) immediately before execution. The node is
    self-contained — it carries the view's rows — so it crosses the
    process-dispatch boundary without the worker needing the view store.

    ``columns`` is the *replaced subtree's* output (names and bindings),
    so parents compile their expressions against exactly the schema they
    were planned for; ``projection`` maps each output column to its
    position in the stored view rows (the identity for strict matches).
    ``build_id`` is unique per view build, which keeps subplan-cache keys
    from ever aliasing rows across rebuilds.
    """

    name: str
    source_strict: str
    build_id: int
    columns: tuple[OutputCol, ...]
    rows: tuple[Row, ...]
    projection: tuple[int, ...]

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return self.columns

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: tuple[PlanNode, ...]) -> "ViewScan":
        assert not children
        return self

    def materialized_rows(self) -> list[Row]:
        """The served rows, with the output-column permutation applied."""
        if self.projection == tuple(range(len(self.projection))):
            return list(self.rows)
        indices = self.projection
        return [tuple(row[i] for i in indices) for row in self.rows]

    def _describe_line(self) -> str:
        return f"ViewScan {self.name} [{len(self.rows)} rows]"


@dataclass(frozen=True)
class OneRow(PlanNode):
    """A single empty row: the source for FROM-less SELECTs."""

    @property
    def output(self) -> tuple[OutputCol, ...]:
        return ()

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def with_children(self, children: tuple[PlanNode, ...]) -> "OneRow":
        assert not children
        return self
