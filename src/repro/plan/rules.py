"""Rule-based plan optimizer.

Classical rewrites, applied in a fixed pipeline:

1. constant folding inside predicates and projections;
2. predicate pushdown (filters split into conjuncts and sunk through
   joins, projections and subquery scans, to a fixpoint);
3. index selection (equality/range conjuncts over indexed columns turn
   scans into index scans);
4. hash-join build-side selection (smaller input becomes the build side);
5. projection pruning (scans narrow to the columns actually consumed).

Every rewrite preserves results exactly; the property-based tests execute
optimized and unoptimized plans side by side to enforce this.
"""

from __future__ import annotations

from dataclasses import replace

from repro.plan import logical
from repro.plan.cost import estimate_cost
from repro.sql import nodes
from repro.storage.catalog import Catalog
from repro.storage.types import compare_values


def optimize_plan(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    """Apply the full rewrite pipeline to ``plan``."""
    plan = fold_constants(plan)
    plan = push_down_filters(plan)
    plan = select_indexes(plan, catalog)
    plan = choose_build_sides(plan, catalog)
    plan = prune_projections(plan)
    return plan


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_constants(plan: logical.PlanNode) -> logical.PlanNode:
    plan = plan.with_children(tuple(fold_constants(c) for c in plan.children()))
    if isinstance(plan, logical.Filter):
        return replace(plan, predicate=_fold(plan.predicate))
    if isinstance(plan, logical.Project):
        return replace(plan, exprs=tuple(_fold(e) for e in plan.exprs))
    if isinstance(plan, logical.HashJoin) and plan.residual is not None:
        return replace(plan, residual=_fold(plan.residual))
    if isinstance(plan, logical.NestedLoopJoin) and plan.condition is not None:
        return replace(plan, condition=_fold(plan.condition))
    return plan


def _fold(expr: nodes.Expr) -> nodes.Expr:
    if isinstance(expr, nodes.Unary):
        operand = _fold(expr.operand)
        if isinstance(operand, nodes.Literal):
            if expr.op == "-" and isinstance(operand.value, (int, float)):
                return nodes.Literal(-operand.value)
            if expr.op == "NOT" and isinstance(operand.value, bool):
                return nodes.Literal(not operand.value)
        return replace(expr, operand=operand)
    if isinstance(expr, nodes.Binary):
        left = _fold(expr.left)
        right = _fold(expr.right)
        folded = _fold_binary(expr.op, left, right)
        if folded is not None:
            return folded
        return replace(expr, left=left, right=right)
    if isinstance(expr, nodes.Between):
        return replace(
            expr,
            operand=_fold(expr.operand),
            low=_fold(expr.low),
            high=_fold(expr.high),
        )
    if isinstance(expr, nodes.FuncCall):
        return replace(expr, args=tuple(_fold(a) for a in expr.args))
    if isinstance(expr, nodes.InList):
        return replace(
            expr,
            operand=_fold(expr.operand),
            items=tuple(_fold(i) for i in expr.items),
        )
    if isinstance(expr, nodes.IsNull):
        return replace(expr, operand=_fold(expr.operand))
    return expr


def _fold_binary(
    op: str, left: nodes.Expr, right: nodes.Expr
) -> nodes.Expr | None:
    # Boolean simplifications that do not require both sides constant.
    if op == "AND":
        if isinstance(left, nodes.Literal) and left.value is True:
            return right
        if isinstance(right, nodes.Literal) and right.value is True:
            return left
        if (isinstance(left, nodes.Literal) and left.value is False) or (
            isinstance(right, nodes.Literal) and right.value is False
        ):
            return nodes.Literal(False)
        return None
    if op == "OR":
        if isinstance(left, nodes.Literal) and left.value is False:
            return right
        if isinstance(right, nodes.Literal) and right.value is False:
            return left
        if (isinstance(left, nodes.Literal) and left.value is True) or (
            isinstance(right, nodes.Literal) and right.value is True
        ):
            return nodes.Literal(True)
        return None
    if not (isinstance(left, nodes.Literal) and isinstance(right, nodes.Literal)):
        return None
    lval, rval = left.value, right.value
    if lval is None or rval is None:
        return None  # leave NULL propagation to the executor
    try:
        if op == "+" and _both_numeric(lval, rval):
            return nodes.Literal(lval + rval)  # type: ignore[operator]
        if op == "-" and _both_numeric(lval, rval):
            return nodes.Literal(lval - rval)  # type: ignore[operator]
        if op == "*" and _both_numeric(lval, rval):
            return nodes.Literal(lval * rval)  # type: ignore[operator]
        if op == "||" and isinstance(lval, str) and isinstance(rval, str):
            return nodes.Literal(lval + rval)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            ordering = compare_values(lval, rval)
            if ordering is None:
                return None
            outcomes = {
                "=": ordering == 0,
                "<>": ordering != 0,
                "<": ordering < 0,
                "<=": ordering <= 0,
                ">": ordering > 0,
                ">=": ordering >= 0,
            }
            return nodes.Literal(outcomes[op])
    except Exception:
        return None
    return None


def _both_numeric(left: object, right: object) -> bool:
    return (
        isinstance(left, (int, float))
        and not isinstance(left, bool)
        and isinstance(right, (int, float))
        and not isinstance(right, bool)
    )


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def push_down_filters(plan: logical.PlanNode) -> logical.PlanNode:
    """Sink filters as deep as possible; iterates to a fixpoint."""
    while True:
        rewritten = _pushdown_once(plan)
        if rewritten == plan:
            return rewritten
        plan = rewritten


def _pushdown_once(plan: logical.PlanNode) -> logical.PlanNode:
    plan = plan.with_children(tuple(_pushdown_once(c) for c in plan.children()))
    if not isinstance(plan, logical.Filter):
        return plan

    child = plan.child
    conjuncts = _split(plan.predicate)

    # Merge stacked filters.
    if isinstance(child, logical.Filter):
        merged = _conjoin(conjuncts + _split(child.predicate))
        assert merged is not None
        return logical.Filter(child.child, merged)

    if isinstance(child, (logical.HashJoin, logical.NestedLoopJoin)):
        return _push_into_join(child, conjuncts)

    if isinstance(child, logical.Project):
        return _push_into_project(child, conjuncts)

    if isinstance(child, logical.SubqueryScan):
        return _push_into_subquery(child, conjuncts)

    return plan


def _push_into_join(
    join: logical.HashJoin | logical.NestedLoopJoin, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    left_out = join.left.output
    right_out = join.right.output
    push_left: list[nodes.Expr] = []
    push_right: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    allow_right = join.kind != "LEFT"
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        on_left = all(_resolvable(ref, left_out) for ref in refs)
        on_right = all(_resolvable(ref, right_out) for ref in refs)
        if refs and on_left and not on_right:
            push_left.append(conjunct)
        elif refs and on_right and not on_left and allow_right:
            push_right.append(conjunct)
        else:
            keep.append(conjunct)
    if not push_left and not push_right:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(join, predicate)
    new_left = join.left
    new_right = join.right
    left_pred = _conjoin(push_left)
    if left_pred is not None:
        new_left = logical.Filter(new_left, left_pred)
    right_pred = _conjoin(push_right)
    if right_pred is not None:
        new_right = logical.Filter(new_right, right_pred)
    new_join = join.with_children((new_left, new_right))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_join, keep_pred)
    return new_join


def _push_into_project(
    project: logical.Project, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    """Push conjuncts below a projection when they only touch pass-through
    columns (outputs that are plain column references)."""
    passthrough: dict[str, nodes.ColumnRef] = {}
    for expr, name in zip(project.exprs, project.names):
        if isinstance(expr, nodes.ColumnRef):
            passthrough[name.lower()] = expr
    pushed: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        if refs and all(
            ref.table is None and ref.column.lower() in passthrough for ref in refs
        ):
            substitutions = [
                (
                    nodes.ColumnRef(column=ref.column, table=None),
                    passthrough[ref.column.lower()],
                )
                for ref in refs
            ]
            pushed.append(_substitute_refs(conjunct, substitutions))
        else:
            keep.append(conjunct)
    if not pushed:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(project, predicate)
    pushed_pred = _conjoin(pushed)
    assert pushed_pred is not None
    new_project = replace(project, child=logical.Filter(project.child, pushed_pred))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_project, keep_pred)
    return new_project


def _push_into_subquery(
    scan: logical.SubqueryScan, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    """Rewrite alias-qualified refs to the child's names and push inside."""
    child_out = scan.child.output
    pushed: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        rewritable = bool(refs)
        substitutions = []
        for ref in refs:
            matches = [c for c in child_out if c.name.lower() == ref.column.lower()]
            if len(matches) != 1:
                rewritable = False
                break
            substitutions.append(
                (ref, nodes.ColumnRef(column=matches[0].name, table=matches[0].binding))
            )
        if rewritable:
            pushed.append(_substitute_refs(conjunct, substitutions))
        else:
            keep.append(conjunct)
    if not pushed:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(scan, predicate)
    pushed_pred = _conjoin(pushed)
    assert pushed_pred is not None
    new_scan = replace(scan, child=logical.Filter(scan.child, pushed_pred))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_scan, keep_pred)
    return new_scan


# ---------------------------------------------------------------------------
# index selection
# ---------------------------------------------------------------------------


def select_indexes(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    plan = plan.with_children(
        tuple(select_indexes(c, catalog) for c in plan.children())
    )
    if not (isinstance(plan, logical.Filter) and isinstance(plan.child, logical.Scan)):
        return plan
    scan = plan.child
    conjuncts = _split(plan.predicate)
    for position, conjunct in enumerate(conjuncts):
        rewrite = _index_rewrite(conjunct, scan, catalog)
        if rewrite is None:
            continue
        remaining = conjuncts[:position] + conjuncts[position + 1 :]
        predicate = _conjoin(remaining)
        if predicate is None:
            return rewrite
        return logical.Filter(rewrite, predicate)
    return plan


def _index_rewrite(
    conjunct: nodes.Expr, scan: logical.Scan, catalog: Catalog
) -> logical.IndexScan | None:
    if not (isinstance(conjunct, nodes.Binary)):
        return None
    column, literal, op = _column_literal_op(conjunct, scan)
    if column is None:
        return None
    if op == "=" and catalog.hash_index(scan.table, column) is not None:
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            equal_value=literal,
            is_equality=True,
        )
    if op in ("<", "<=", ">", ">=") and catalog.sorted_index(scan.table, column) is not None:
        low = high = None
        low_inc = high_inc = True
        if op in ("<", "<="):
            high = literal
            high_inc = op == "<="
        else:
            low = literal
            low_inc = op == ">="
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            low=low,
            high=high,
            low_inclusive=low_inc,
            high_inclusive=high_inc,
            is_equality=False,
        )
    if op == "=" and catalog.sorted_index(scan.table, column) is not None:
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            low=literal,
            high=literal,
            is_equality=False,
        )
    return None


def _column_literal_op(
    conjunct: nodes.Binary, scan: logical.Scan
) -> tuple[str | None, object, str]:
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    left, right = conjunct.left, conjunct.right
    if isinstance(left, nodes.ColumnRef) and isinstance(right, nodes.Literal):
        ref, literal, op = left, right.value, conjunct.op
    elif isinstance(right, nodes.ColumnRef) and isinstance(left, nodes.Literal):
        if conjunct.op not in flip:
            return None, None, ""
        ref, literal, op = right, left.value, flip[conjunct.op]
    else:
        return None, None, ""
    if op not in flip:
        return None, None, ""
    if ref.table is not None and ref.table.lower() != scan.binding.lower():
        return None, None, ""
    matched = next(
        (c for c in scan.columns if c.lower() == ref.column.lower()), None
    )
    return matched, literal, op


# ---------------------------------------------------------------------------
# build-side selection
# ---------------------------------------------------------------------------


def choose_build_sides(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    plan = plan.with_children(
        tuple(choose_build_sides(c, catalog) for c in plan.children())
    )
    if isinstance(plan, logical.HashJoin) and plan.kind == "INNER":
        left_rows = estimate_cost(plan.left, catalog).rows
        right_rows = estimate_cost(plan.right, catalog).rows
        # Executor builds the hash table from the left child; keep the
        # smaller input there.
        if right_rows < left_rows:
            return logical.HashJoin(
                left=plan.right,
                right=plan.left,
                kind="INNER",
                left_keys=plan.right_keys,
                right_keys=plan.left_keys,
                residual=plan.residual,
            )
    return plan


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def prune_projections(plan: logical.PlanNode) -> logical.PlanNode:
    return _prune(plan, None)


_Requirement = set[tuple[str | None, str]] | None  # None = everything


def _prune(node: logical.PlanNode, required: _Requirement) -> logical.PlanNode:
    if isinstance(node, (logical.Scan, logical.IndexScan)):
        if required is None:
            return node
        keep = [
            column
            for column in node.columns
            if any(_req_matches(req, node.binding, column) for req in required)
        ]
        if isinstance(node, logical.IndexScan) and node.index_column not in keep:
            keep.append(node.index_column)
        if not keep and node.columns:
            keep = [node.columns[0]]  # row-presence marker for COUNT(*)
        return replace(node, columns=tuple(keep))
    if isinstance(node, logical.OneRow):
        return node
    if isinstance(node, logical.Filter):
        child_req = _merge(required, _expr_requirements(node.predicate))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, logical.Project):
        child_req: _Requirement = set()
        for expr in node.exprs:
            child_req = _merge(child_req, _expr_requirements(expr))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, (logical.HashJoin, logical.NestedLoopJoin)):
        return _prune_join(node, required)
    if isinstance(node, logical.Aggregate):
        child_req: _Requirement = set()
        for expr in node.group_exprs:
            child_req = _merge(child_req, _expr_requirements(expr))
        for call in node.agg_calls:
            for arg in call.args:
                if not isinstance(arg, nodes.Star):
                    child_req = _merge(child_req, _expr_requirements(arg))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, logical.Sort):
        child_req = required
        for expr, _ in node.keys:
            child_req = _merge(child_req, _expr_requirements(expr))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, (logical.Limit, logical.Distinct)):
        return node.with_children((_prune(node.children()[0], required),))
    if isinstance(node, logical.SubqueryScan):
        if required is None:
            child_req = None
        else:
            child_req = {(None, name) for _, name in required}
        return replace(node, child=_prune(node.child, child_req))
    raise TypeError(f"cannot prune plan node {type(node).__name__}")


def _prune_join(
    node: logical.HashJoin | logical.NestedLoopJoin, required: _Requirement
) -> logical.PlanNode:
    extra: _Requirement = set()
    if isinstance(node, logical.HashJoin):
        for key in node.left_keys + node.right_keys:
            extra = _merge(extra, _expr_requirements(key))
        if node.residual is not None:
            extra = _merge(extra, _expr_requirements(node.residual))
    elif node.condition is not None:
        extra = _merge(extra, _expr_requirements(node.condition))
    total = _merge(required, extra if extra else set())
    if total is None:
        left_req = right_req = None
    else:
        left_req = {
            req
            for req in total
            if any(_req_matches(req, c.binding, c.name) for c in node.left.output)
        }
        right_req = {
            req
            for req in total
            if any(_req_matches(req, c.binding, c.name) for c in node.right.output)
        }
    return node.with_children(
        (_prune(node.left, left_req), _prune(node.right, right_req))
    )


def _req_matches(
    req: tuple[str | None, str], binding: str | None, column: str
) -> bool:
    req_table, req_name = req
    if req_name.lower() != column.lower():
        return False
    if req_table is None:
        return True
    return binding is not None and req_table.lower() == binding.lower()


def _expr_requirements(expr: nodes.Expr) -> set[tuple[str | None, str]]:
    return {(ref.table, ref.column) for ref in nodes.column_refs(expr)}


def _merge(left: _Requirement, right: _Requirement) -> _Requirement:
    if left is None or right is None:
        return None
    return left | right


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _split(expr: nodes.Expr) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == "AND":
        return _split(expr.left) + _split(expr.right)
    return [expr]


def _conjoin(conjuncts: list[nodes.Expr]) -> nodes.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = nodes.Binary("AND", result, conjunct)
    return result


def _resolvable(
    ref: nodes.ColumnRef, output: tuple[logical.OutputCol, ...]
) -> bool:
    matches = [col for col in output if col.matches(ref.column, ref.table)]
    if ref.table is None and len(matches) > 1:
        return False
    return bool(matches)


def _substitute_refs(
    expr: nodes.Expr, substitutions: list[tuple[nodes.ColumnRef, nodes.Expr]]
) -> nodes.Expr:
    mapping = {source: target for source, target in substitutions}
    if isinstance(expr, nodes.ColumnRef):
        return mapping.get(expr, expr)
    if isinstance(expr, nodes.Unary):
        return replace(expr, operand=_substitute_refs(expr.operand, substitutions))
    if isinstance(expr, nodes.Binary):
        return replace(
            expr,
            left=_substitute_refs(expr.left, substitutions),
            right=_substitute_refs(expr.right, substitutions),
        )
    if isinstance(expr, nodes.IsNull):
        return replace(expr, operand=_substitute_refs(expr.operand, substitutions))
    if isinstance(expr, nodes.InList):
        return replace(
            expr,
            operand=_substitute_refs(expr.operand, substitutions),
            items=tuple(_substitute_refs(i, substitutions) for i in expr.items),
        )
    if isinstance(expr, nodes.Between):
        return replace(
            expr,
            operand=_substitute_refs(expr.operand, substitutions),
            low=_substitute_refs(expr.low, substitutions),
            high=_substitute_refs(expr.high, substitutions),
        )
    if isinstance(expr, nodes.FuncCall):
        return replace(
            expr,
            args=tuple(_substitute_refs(a, substitutions) for a in expr.args),
        )
    return expr
