"""Rule-based plan optimizer.

Classical rewrites, applied in a fixed pipeline:

1. constant folding inside predicates and projections;
2. predicate pushdown (filters split into conjuncts and sunk through
   joins, projections and subquery scans, to a fixpoint);
3. index selection (equality/range conjuncts over indexed columns turn
   scans into index scans);
4. hash-join build-side selection (smaller input becomes the build side);
5. projection pruning (scans narrow to the columns actually consumed).

Every rewrite preserves results exactly; the property-based tests execute
optimized and unoptimized plans side by side to enforce this.
"""

from __future__ import annotations

from dataclasses import replace

from repro.plan import logical
from repro.plan.cost import estimate_cost
from repro.sql import nodes
from repro.storage.catalog import Catalog
from repro.storage.types import DataType, compare_values


def optimize_plan(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    """Apply the full rewrite pipeline to ``plan``."""
    plan = fold_constants(plan)
    plan = push_down_filters(plan)
    plan = select_indexes(plan, catalog)
    plan = choose_build_sides(plan, catalog)
    plan = prune_projections(plan)
    return plan


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_constants(plan: logical.PlanNode) -> logical.PlanNode:
    plan = plan.with_children(tuple(fold_constants(c) for c in plan.children()))
    if isinstance(plan, logical.Filter):
        return replace(plan, predicate=_fold(plan.predicate))
    if isinstance(plan, logical.Project):
        return replace(plan, exprs=tuple(_fold(e) for e in plan.exprs))
    if isinstance(plan, logical.HashJoin) and plan.residual is not None:
        return replace(plan, residual=_fold(plan.residual))
    if isinstance(plan, logical.NestedLoopJoin) and plan.condition is not None:
        return replace(plan, condition=_fold(plan.condition))
    return plan


def _fold(expr: nodes.Expr) -> nodes.Expr:
    if isinstance(expr, nodes.Unary):
        operand = _fold(expr.operand)
        if isinstance(operand, nodes.Literal):
            if expr.op == "-" and isinstance(operand.value, (int, float)):
                return nodes.Literal(-operand.value)
            if expr.op == "NOT" and isinstance(operand.value, bool):
                return nodes.Literal(not operand.value)
        return replace(expr, operand=operand)
    if isinstance(expr, nodes.Binary):
        left = _fold(expr.left)
        right = _fold(expr.right)
        folded = _fold_binary(expr.op, left, right)
        if folded is not None:
            return folded
        return replace(expr, left=left, right=right)
    if isinstance(expr, nodes.Between):
        return replace(
            expr,
            operand=_fold(expr.operand),
            low=_fold(expr.low),
            high=_fold(expr.high),
        )
    if isinstance(expr, nodes.FuncCall):
        return replace(expr, args=tuple(_fold(a) for a in expr.args))
    if isinstance(expr, nodes.InList):
        return replace(
            expr,
            operand=_fold(expr.operand),
            items=tuple(_fold(i) for i in expr.items),
        )
    if isinstance(expr, nodes.IsNull):
        return replace(expr, operand=_fold(expr.operand))
    return expr


def _fold_binary(
    op: str, left: nodes.Expr, right: nodes.Expr
) -> nodes.Expr | None:
    # Boolean simplifications that do not require both sides constant.
    if op == "AND":
        if isinstance(left, nodes.Literal) and left.value is True:
            return right
        if isinstance(right, nodes.Literal) and right.value is True:
            return left
        if (isinstance(left, nodes.Literal) and left.value is False) or (
            isinstance(right, nodes.Literal) and right.value is False
        ):
            return nodes.Literal(False)
        return None
    if op == "OR":
        if isinstance(left, nodes.Literal) and left.value is False:
            return right
        if isinstance(right, nodes.Literal) and right.value is False:
            return left
        if (isinstance(left, nodes.Literal) and left.value is True) or (
            isinstance(right, nodes.Literal) and right.value is True
        ):
            return nodes.Literal(True)
        return None
    if not (isinstance(left, nodes.Literal) and isinstance(right, nodes.Literal)):
        return None
    lval, rval = left.value, right.value
    if lval is None or rval is None:
        return None  # leave NULL propagation to the executor
    try:
        if op == "+" and _both_numeric(lval, rval):
            return nodes.Literal(lval + rval)  # type: ignore[operator]
        if op == "-" and _both_numeric(lval, rval):
            return nodes.Literal(lval - rval)  # type: ignore[operator]
        if op == "*" and _both_numeric(lval, rval):
            return nodes.Literal(lval * rval)  # type: ignore[operator]
        if op == "||" and isinstance(lval, str) and isinstance(rval, str):
            return nodes.Literal(lval + rval)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            ordering = compare_values(lval, rval)
            if ordering is None:
                return None
            outcomes = {
                "=": ordering == 0,
                "<>": ordering != 0,
                "<": ordering < 0,
                "<=": ordering <= 0,
                ">": ordering > 0,
                ">=": ordering >= 0,
            }
            return nodes.Literal(outcomes[op])
    except Exception:
        return None
    return None


def _both_numeric(left: object, right: object) -> bool:
    return (
        isinstance(left, (int, float))
        and not isinstance(left, bool)
        and isinstance(right, (int, float))
        and not isinstance(right, bool)
    )


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def push_down_filters(plan: logical.PlanNode) -> logical.PlanNode:
    """Sink filters as deep as possible; iterates to a fixpoint."""
    while True:
        rewritten = _pushdown_once(plan)
        if rewritten == plan:
            return rewritten
        plan = rewritten


def _pushdown_once(plan: logical.PlanNode) -> logical.PlanNode:
    plan = plan.with_children(tuple(_pushdown_once(c) for c in plan.children()))
    if not isinstance(plan, logical.Filter):
        return plan

    child = plan.child
    conjuncts = _split(plan.predicate)

    # Merge stacked filters.
    if isinstance(child, logical.Filter):
        merged = _conjoin(conjuncts + _split(child.predicate))
        assert merged is not None
        return logical.Filter(child.child, merged)

    if isinstance(child, (logical.HashJoin, logical.NestedLoopJoin)):
        return _push_into_join(child, conjuncts)

    if isinstance(child, logical.Project):
        return _push_into_project(child, conjuncts)

    if isinstance(child, logical.SubqueryScan):
        return _push_into_subquery(child, conjuncts)

    return plan


def _push_into_join(
    join: logical.HashJoin | logical.NestedLoopJoin, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    left_out = join.left.output
    right_out = join.right.output
    push_left: list[nodes.Expr] = []
    push_right: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    allow_right = join.kind != "LEFT"
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        on_left = all(_resolvable(ref, left_out) for ref in refs)
        on_right = all(_resolvable(ref, right_out) for ref in refs)
        if refs and on_left and not on_right:
            push_left.append(conjunct)
        elif refs and on_right and not on_left and allow_right:
            push_right.append(conjunct)
        else:
            keep.append(conjunct)
    if not push_left and not push_right:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(join, predicate)
    new_left = join.left
    new_right = join.right
    left_pred = _conjoin(push_left)
    if left_pred is not None:
        new_left = logical.Filter(new_left, left_pred)
    right_pred = _conjoin(push_right)
    if right_pred is not None:
        new_right = logical.Filter(new_right, right_pred)
    new_join = join.with_children((new_left, new_right))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_join, keep_pred)
    return new_join


def _push_into_project(
    project: logical.Project, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    """Push conjuncts below a projection when they only touch pass-through
    columns (outputs that are plain column references)."""
    passthrough: dict[str, nodes.ColumnRef] = {}
    for expr, name in zip(project.exprs, project.names):
        if isinstance(expr, nodes.ColumnRef):
            passthrough[name.lower()] = expr
    pushed: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        if refs and all(
            ref.table is None and ref.column.lower() in passthrough for ref in refs
        ):
            substitutions = [
                (
                    nodes.ColumnRef(column=ref.column, table=None),
                    passthrough[ref.column.lower()],
                )
                for ref in refs
            ]
            pushed.append(_substitute_refs(conjunct, substitutions))
        else:
            keep.append(conjunct)
    if not pushed:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(project, predicate)
    pushed_pred = _conjoin(pushed)
    assert pushed_pred is not None
    new_project = replace(project, child=logical.Filter(project.child, pushed_pred))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_project, keep_pred)
    return new_project


def _push_into_subquery(
    scan: logical.SubqueryScan, conjuncts: list[nodes.Expr]
) -> logical.PlanNode:
    """Rewrite alias-qualified refs to the child's names and push inside."""
    child_out = scan.child.output
    pushed: list[nodes.Expr] = []
    keep: list[nodes.Expr] = []
    for conjunct in conjuncts:
        refs = nodes.column_refs(conjunct)
        rewritable = bool(refs)
        substitutions = []
        for ref in refs:
            matches = [c for c in child_out if c.name.lower() == ref.column.lower()]
            if len(matches) != 1:
                rewritable = False
                break
            substitutions.append(
                (ref, nodes.ColumnRef(column=matches[0].name, table=matches[0].binding))
            )
        if rewritable:
            pushed.append(_substitute_refs(conjunct, substitutions))
        else:
            keep.append(conjunct)
    if not pushed:
        predicate = _conjoin(conjuncts)
        assert predicate is not None
        return logical.Filter(scan, predicate)
    pushed_pred = _conjoin(pushed)
    assert pushed_pred is not None
    new_scan = replace(scan, child=logical.Filter(scan.child, pushed_pred))
    keep_pred = _conjoin(keep)
    if keep_pred is not None:
        return logical.Filter(new_scan, keep_pred)
    return new_scan


# ---------------------------------------------------------------------------
# index selection
# ---------------------------------------------------------------------------


def select_indexes(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    plan = plan.with_children(
        tuple(select_indexes(c, catalog) for c in plan.children())
    )
    if not (isinstance(plan, logical.Filter) and isinstance(plan.child, logical.Scan)):
        return plan
    scan = plan.child
    conjuncts = _split(plan.predicate)
    for position, conjunct in enumerate(conjuncts):
        rewrite = _index_rewrite(conjunct, scan, catalog)
        if rewrite is None:
            continue
        remaining = conjuncts[:position] + conjuncts[position + 1 :]
        predicate = _conjoin(remaining)
        if predicate is None:
            return rewrite
        return logical.Filter(rewrite, predicate)
    return plan


def _index_rewrite(
    conjunct: nodes.Expr, scan: logical.Scan, catalog: Catalog
) -> logical.IndexScan | None:
    if not (isinstance(conjunct, nodes.Binary)):
        return None
    return _index_rewrite_core(
        conjunct,
        scan,
        catalog.hash_index,
        catalog.sorted_index,
        row_id_order=False,
    )


def _index_rewrite_core(
    conjunct: nodes.Binary,
    scan: logical.Scan,
    hash_index_for,
    sorted_index_for,
    row_id_order: bool,
) -> logical.IndexScan | None:
    """One implementation for both index-selection callers.

    The planner passes the declared-index lookups (plan-time rewrite,
    native index order); the maintenance runtime passes the auxiliary
    lookups with ``row_id_order=True`` (execution-time rewrite that must
    preserve base-scan row order). Branch order — hash equality, sorted
    range, equality served via a sorted index — is shared, so the two
    paths cannot drift.
    """
    column, literal, op = _column_literal_op(conjunct, scan)
    if column is None:
        return None
    if op == "=" and hash_index_for(scan.table, column) is not None:
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            equal_value=literal,
            is_equality=True,
            row_id_order=row_id_order,
        )
    if op in ("<", "<=", ">", ">=") and sorted_index_for(scan.table, column) is not None:
        low = high = None
        low_inc = high_inc = True
        if op in ("<", "<="):
            high = literal
            high_inc = op == "<="
        else:
            low = literal
            low_inc = op == ">="
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            low=low,
            high=high,
            low_inclusive=low_inc,
            high_inclusive=high_inc,
            is_equality=False,
            row_id_order=row_id_order,
        )
    if op == "=" and sorted_index_for(scan.table, column) is not None:
        return logical.IndexScan(
            table=scan.table,
            binding=scan.binding,
            columns=scan.columns,
            index_column=column,
            low=literal,
            high=literal,
            is_equality=False,
            row_id_order=row_id_order,
        )
    return None


def _column_literal_op(
    conjunct: nodes.Binary, scan: logical.Scan
) -> tuple[str | None, object, str]:
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    left, right = conjunct.left, conjunct.right
    if isinstance(left, nodes.ColumnRef) and isinstance(right, nodes.Literal):
        ref, literal, op = left, right.value, conjunct.op
    elif isinstance(right, nodes.ColumnRef) and isinstance(left, nodes.Literal):
        if conjunct.op not in flip:
            return None, None, ""
        ref, literal, op = right, left.value, flip[conjunct.op]
    else:
        return None, None, ""
    if op not in flip:
        return None, None, ""
    if ref.table is not None and ref.table.lower() != scan.binding.lower():
        return None, None, ""
    matched = next(
        (c for c in scan.columns if c.lower() == ref.column.lower()), None
    )
    return matched, literal, op


# ---------------------------------------------------------------------------
# build-side selection
# ---------------------------------------------------------------------------


def choose_build_sides(plan: logical.PlanNode, catalog: Catalog) -> logical.PlanNode:
    plan = plan.with_children(
        tuple(choose_build_sides(c, catalog) for c in plan.children())
    )
    if isinstance(plan, logical.HashJoin) and plan.kind == "INNER":
        left_rows = estimate_cost(plan.left, catalog).rows
        right_rows = estimate_cost(plan.right, catalog).rows
        # Executor builds the hash table from the left child; keep the
        # smaller input there.
        if right_rows < left_rows:
            return logical.HashJoin(
                left=plan.right,
                right=plan.left,
                kind="INNER",
                left_keys=plan.right_keys,
                right_keys=plan.left_keys,
                residual=plan.residual,
            )
    return plan


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def prune_projections(plan: logical.PlanNode) -> logical.PlanNode:
    return _prune(plan, None)


_Requirement = set[tuple[str | None, str]] | None  # None = everything


def _prune(node: logical.PlanNode, required: _Requirement) -> logical.PlanNode:
    if isinstance(node, (logical.Scan, logical.IndexScan)):
        if required is None:
            return node
        keep = [
            column
            for column in node.columns
            if any(_req_matches(req, node.binding, column) for req in required)
        ]
        if isinstance(node, logical.IndexScan) and node.index_column not in keep:
            keep.append(node.index_column)
        if not keep and node.columns:
            keep = [node.columns[0]]  # row-presence marker for COUNT(*)
        return replace(node, columns=tuple(keep))
    if isinstance(node, logical.OneRow):
        return node
    if isinstance(node, logical.Filter):
        child_req = _merge(required, _expr_requirements(node.predicate))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, logical.Project):
        child_req: _Requirement = set()
        for expr in node.exprs:
            child_req = _merge(child_req, _expr_requirements(expr))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, (logical.HashJoin, logical.NestedLoopJoin)):
        return _prune_join(node, required)
    if isinstance(node, logical.Aggregate):
        child_req: _Requirement = set()
        for expr in node.group_exprs:
            child_req = _merge(child_req, _expr_requirements(expr))
        for call in node.agg_calls:
            for arg in call.args:
                if not isinstance(arg, nodes.Star):
                    child_req = _merge(child_req, _expr_requirements(arg))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, logical.Sort):
        child_req = required
        for expr, _ in node.keys:
            child_req = _merge(child_req, _expr_requirements(expr))
        return replace(node, child=_prune(node.child, child_req))
    if isinstance(node, (logical.Limit, logical.Distinct)):
        return node.with_children((_prune(node.children()[0], required),))
    if isinstance(node, logical.SubqueryScan):
        if required is None:
            child_req = None
        else:
            child_req = {(None, name) for _, name in required}
        return replace(node, child=_prune(node.child, child_req))
    raise TypeError(f"cannot prune plan node {type(node).__name__}")


def _prune_join(
    node: logical.HashJoin | logical.NestedLoopJoin, required: _Requirement
) -> logical.PlanNode:
    extra: _Requirement = set()
    if isinstance(node, logical.HashJoin):
        for key in node.left_keys + node.right_keys:
            extra = _merge(extra, _expr_requirements(key))
        if node.residual is not None:
            extra = _merge(extra, _expr_requirements(node.residual))
    elif node.condition is not None:
        extra = _merge(extra, _expr_requirements(node.condition))
    total = _merge(required, extra if extra else set())
    if total is None:
        left_req = right_req = None
    else:
        left_req = {
            req
            for req in total
            if any(_req_matches(req, c.binding, c.name) for c in node.left.output)
        }
        right_req = {
            req
            for req in total
            if any(_req_matches(req, c.binding, c.name) for c in node.right.output)
        }
    return node.with_children(
        (_prune(node.left, left_req), _prune(node.right, right_req))
    )


def _req_matches(
    req: tuple[str | None, str], binding: str | None, column: str
) -> bool:
    req_table, req_name = req
    if req_name.lower() != column.lower():
        return False
    if req_table is None:
        return True
    return binding is not None and req_table.lower() == binding.lower()


def _expr_requirements(expr: nodes.Expr) -> set[tuple[str | None, str]]:
    return {(ref.table, ref.column) for ref in nodes.column_refs(expr)}


def _merge(left: _Requirement, right: _Requirement) -> _Requirement:
    if left is None or right is None:
        return None
    return left | right


# ---------------------------------------------------------------------------
# maintenance rewrites (execution-time, never part of optimize_plan)
# ---------------------------------------------------------------------------
#
# The sleeper-agent maintenance runtime rewrites plans *immediately before
# execution* — after all fingerprint, history, and advisor bookkeeping has
# been keyed on the original plan — so a maintenance-on run stays
# byte-identical in rows, statuses, and history attribution to a
# maintenance-off run. Two rewrite families:
#
# * materialized views: a subtree whose strict fingerprint matches a valid
#   view is replaced by a ViewScan serving the stored rows; a subtree that
#   matches only leniently is replaced when the difference is a pure
#   output-column permutation (Scan / Project / Aggregate), closed by the
#   ViewScan's projection map;
# * auxiliary indexes: a Filter over a Scan whose conjunct is a simple
#   equality/range comparison on an auxiliary-indexed column becomes an
#   IndexScan (plus the residual Filter), emitted in row-id order so
#   output order matches the original scan exactly.


def rewrite_with_materialized_views(plan, resolve) -> logical.PlanNode:
    """Replace subtrees with ViewScans wherever ``resolve`` offers one.

    ``resolve(node) -> ViewScan | None`` is the maintenance runtime's view
    lookup (strict match, or lenient match closed via
    :func:`view_output_projection`). Outer subtrees are tried first, so
    the largest materialized match wins.
    """
    replacement = resolve(plan)
    if replacement is not None:
        return replacement
    children = plan.children()
    if not children:
        return plan
    rewritten = tuple(rewrite_with_materialized_views(c, resolve) for c in children)
    if rewritten == children:
        return plan
    return plan.with_children(rewritten)


def view_output_projection(
    node: logical.PlanNode, view_plan: logical.PlanNode
) -> tuple[int, ...] | None:
    """Map ``node``'s output columns onto ``view_plan``'s, if rows align.

    Returns the identity permutation on a strict fingerprint match. On a
    lenient-only match, returns a permutation exactly when the two plans
    provably compute the same rows in the same order modulo output-column
    order: Scans over the same table, or Projects/Aggregates with
    strict-identical children whose expressions are a bijection. Anything
    deeper (commuted join sides, reordered sort keys) returns ``None`` —
    those can permute *row* order, which the byte-identity contract
    forbids closing with a projection.
    """
    from repro.plan.fingerprint import fingerprints

    digests = fingerprints(node)
    view_digests = fingerprints(view_plan)
    if digests.strict == view_digests.strict:
        return tuple(range(len(node.output)))
    if digests.lenient != view_digests.lenient:
        return None
    if isinstance(node, logical.Scan) and isinstance(view_plan, logical.Scan):
        if node.table.lower() != view_plan.table.lower():
            return None
        view_columns = [c.lower() for c in view_plan.columns]
        return _bijection([c.lower() for c in node.columns], view_columns)
    if isinstance(node, logical.Project) and isinstance(view_plan, logical.Project):
        if fingerprints(node.child).strict != fingerprints(view_plan.child).strict:
            return None
        return _bijection(list(node.exprs), list(view_plan.exprs))
    if isinstance(node, logical.Aggregate) and isinstance(view_plan, logical.Aggregate):
        # Group keys permute consistently per row, so distinct groups are
        # first encountered in the same order: row order is preserved.
        if fingerprints(node.child).strict != fingerprints(view_plan.child).strict:
            return None
        group_map = _bijection(list(node.group_exprs), list(view_plan.group_exprs))
        agg_map = _bijection(list(node.agg_calls), list(view_plan.agg_calls))
        if group_map is None or agg_map is None:
            return None
        offset = len(view_plan.group_exprs)
        return group_map + tuple(offset + i for i in agg_map)
    return None


def _bijection(items: list, pool: list) -> tuple[int, ...] | None:
    """Positions in ``pool`` matching ``items`` one-to-one, else None."""
    if len(items) != len(pool):
        return None
    used: set[int] = set()
    mapping: list[int] = []
    for item in items:
        position = next(
            (
                i
                for i, candidate in enumerate(pool)
                if i not in used and candidate == item
            ),
            None,
        )
        if position is None:
            return None
        used.add(position)
        mapping.append(position)
    return tuple(mapping)


def rewrite_with_auxiliary_indexes(
    plan: logical.PlanNode, catalog: Catalog
) -> logical.PlanNode:
    """Route simple Filter-over-Scan predicates through auxiliary indexes.

    Mirrors :func:`select_indexes` but consults only the maintenance-built
    auxiliary registry (fresh entries only) and emits row-id-ordered
    IndexScans, so the rewritten subtree's rows — and their order — equal
    the original Filter-over-Scan exactly. Applied at execution time; the
    planner (and therefore every fingerprint) never sees these indexes.
    When nothing matches, the *original* node objects are returned, so
    their fingerprint memos survive and the executor's cache keying stays
    free.
    """
    children = plan.children()
    if children:
        rewritten = tuple(
            rewrite_with_auxiliary_indexes(c, catalog) for c in children
        )
        if rewritten != children:
            plan = plan.with_children(rewritten)
    if not (isinstance(plan, logical.Filter) and isinstance(plan.child, logical.Scan)):
        return plan
    scan = plan.child
    conjuncts = _split(plan.predicate)
    for position, conjunct in enumerate(conjuncts):
        rewrite = _auxiliary_index_rewrite(conjunct, scan, catalog)
        if rewrite is None:
            continue
        remaining = conjuncts[:position] + conjuncts[position + 1 :]
        predicate = _conjoin(remaining)
        if predicate is None:
            return rewrite
        return logical.Filter(rewrite, predicate)
    return plan


def _auxiliary_index_rewrite(
    conjunct: nodes.Expr, scan: logical.Scan, catalog: Catalog
) -> logical.IndexScan | None:
    if not isinstance(conjunct, nodes.Binary):
        return None
    column, literal, op = _column_literal_op(conjunct, scan)
    if column is None or literal is None:
        return None
    # Index lookups use Python equality/ordering while the filter path
    # compares via compare_values, which *raises* on type-mismatched
    # operands (TEXT vs number, bool vs number). Refuse the rewrite unless
    # the literal provably compares like the column's stored values —
    # otherwise a maintenance-on run could answer rows where a
    # maintenance-off run errors.
    if not _literal_comparable_with_column(catalog, scan.table, column, literal):
        return None
    return _index_rewrite_core(
        conjunct,
        scan,
        catalog.auxiliary_hash_index,
        catalog.auxiliary_sorted_index,
        row_id_order=True,
    )


def _literal_comparable_with_column(
    catalog: Catalog, table: str, column: str, literal
) -> bool:
    """Would compare_values(column_value, literal) succeed for every
    non-NULL stored value — and agree with the index's native Python
    equality/ordering? Stored values are coerced to the declared type, so
    the declared type decides."""
    try:
        schema = catalog.table(table).schema
        data_type = schema.columns[schema.position_of(column)].data_type
    except Exception:
        return False
    if isinstance(literal, bool):
        return data_type is DataType.BOOLEAN
    if isinstance(literal, (int, float)):
        return data_type in (DataType.INTEGER, DataType.FLOAT)
    if isinstance(literal, str):
        return data_type is DataType.TEXT
    return False


def simple_comparison(
    conjunct: nodes.Expr, scan: logical.Scan
) -> tuple[str | None, object, str]:
    """Public face of the (column, literal, op) extractor.

    Used by the maintenance runtime's predicate miner so observed demand
    and the auxiliary-index rewrite agree on what counts as indexable.
    """
    if not isinstance(conjunct, nodes.Binary):
        return None, None, ""
    return _column_literal_op(conjunct, scan)


def split_conjuncts(expr: nodes.Expr) -> list[nodes.Expr]:
    """Public face of AND-chain splitting (shared with the miner)."""
    return _split(expr)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _split(expr: nodes.Expr) -> list[nodes.Expr]:
    if isinstance(expr, nodes.Binary) and expr.op == "AND":
        return _split(expr.left) + _split(expr.right)
    return [expr]


def _conjoin(conjuncts: list[nodes.Expr]) -> nodes.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = nodes.Binary("AND", result, conjunct)
    return result


def _resolvable(
    ref: nodes.ColumnRef, output: tuple[logical.OutputCol, ...]
) -> bool:
    matches = [col for col in output if col.matches(ref.column, ref.table)]
    if ref.table is None and len(matches) > 1:
        return False
    return bool(matches)


def _substitute_refs(
    expr: nodes.Expr, substitutions: list[tuple[nodes.ColumnRef, nodes.Expr]]
) -> nodes.Expr:
    mapping = {source: target for source, target in substitutions}
    if isinstance(expr, nodes.ColumnRef):
        return mapping.get(expr, expr)
    if isinstance(expr, nodes.Unary):
        return replace(expr, operand=_substitute_refs(expr.operand, substitutions))
    if isinstance(expr, nodes.Binary):
        return replace(
            expr,
            left=_substitute_refs(expr.left, substitutions),
            right=_substitute_refs(expr.right, substitutions),
        )
    if isinstance(expr, nodes.IsNull):
        return replace(expr, operand=_substitute_refs(expr.operand, substitutions))
    if isinstance(expr, nodes.InList):
        return replace(
            expr,
            operand=_substitute_refs(expr.operand, substitutions),
            items=tuple(_substitute_refs(i, substitutions) for i in expr.items),
        )
    if isinstance(expr, nodes.Between):
        return replace(
            expr,
            operand=_substitute_refs(expr.operand, substitutions),
            low=_substitute_refs(expr.low, substitutions),
            high=_substitute_refs(expr.high, substitutions),
        )
    if isinstance(expr, nodes.FuncCall):
        return replace(
            expr,
            args=tuple(_substitute_refs(a, substitutions) for a in expr.args),
        )
    return expr
