"""Secondary indexes: hash (equality) and sorted (range).

Indexes map column values to row ids. They are maintained eagerly by the
:class:`~repro.storage.catalog.Catalog` on DML and consulted by the planner
when a filter is a simple equality or range predicate on an indexed column.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from repro.storage.types import Value


class HashIndex:
    """Equality index: value -> set of row ids. NULLs are not indexed."""

    def __init__(self, table: str, column: str) -> None:
        self.table = table
        self.column = column
        self._buckets: dict[Value, set[int]] = defaultdict(set)

    def add(self, value: Value, row_id: int) -> None:
        if value is None:
            return
        self._buckets[value].add(row_id)

    def remove(self, value: Value, row_id: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Value) -> set[int]:
        if value is None:
            return set()
        return set(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Ordered index over one column supporting range lookups.

    Keeps parallel sorted arrays of (value, row_id); removal is O(log n)
    bisect plus list deletion — fine at this codebase's table sizes.
    """

    def __init__(self, table: str, column: str) -> None:
        self.table = table
        self.column = column
        self._keys: list[Value] = []
        self._row_ids: list[int] = []

    def add(self, value: Value, row_id: int) -> None:
        if value is None:
            return
        position = bisect.bisect_left(self._keys, (value))  # type: ignore[arg-type]
        # Keep (value, row_id) pairs sorted by value then row id for determinism.
        while (
            position < len(self._keys)
            and self._keys[position] == value
            and self._row_ids[position] < row_id
        ):
            position += 1
        self._keys.insert(position, value)
        self._row_ids.insert(position, row_id)

    def remove(self, value: Value, row_id: int) -> None:
        if value is None:
            return
        position = bisect.bisect_left(self._keys, value)  # type: ignore[arg-type]
        while position < len(self._keys) and self._keys[position] == value:
            if self._row_ids[position] == row_id:
                del self._keys[position]
                del self._row_ids[position]
                return
            position += 1

    def lookup_range(
        self,
        low: Value = None,
        high: Value = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids with low <(=) value <(=) high, in value order."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)  # type: ignore[arg-type]
        else:
            start = bisect.bisect_right(self._keys, low)  # type: ignore[arg-type]
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)  # type: ignore[arg-type]
        else:
            stop = bisect.bisect_left(self._keys, high)  # type: ignore[arg-type]
        return self._row_ids[start:stop]

    def lookup(self, value: Value) -> set[int]:
        return set(self.lookup_range(value, value))

    def __len__(self) -> int:
        return len(self._keys)
