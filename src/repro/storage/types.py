"""The engine's type system.

Four scalar types plus NULL keep the engine honest without drowning it in
coercion rules: INTEGER, FLOAT, TEXT, BOOLEAN. SQL ``NULL`` maps to Python
``None`` and is a member of every type.
"""

from __future__ import annotations

import enum
from datetime import date
from typing import Any

from repro.errors import ExecutionError

#: Python value space for one cell: the engine stores dates as ISO strings.
Value = int | float | str | bool | None
Row = tuple[Value, ...]


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def parse(cls, name: str) -> "DataType":
        """Parse a SQL type name, accepting common synonyms."""
        upper = name.upper()
        synonyms = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "DATE": cls.TEXT,
            "TIMESTAMP": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if upper not in synonyms:
            raise ExecutionError(f"unknown type name: {name}")
        return synonyms[upper]


def infer_type(value: Value) -> DataType | None:
    """Infer the :class:`DataType` of a Python value; None for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    raise ExecutionError(f"unsupported Python type: {type(value).__name__}")


def coerce_value(value: Any, data_type: DataType) -> Value:
    """Coerce ``value`` into ``data_type``, raising on lossy mismatches.

    NULL passes through every type. Ints widen to floats; everything
    stringifies into TEXT; dates become ISO strings.
    """
    if value is None:
        return None
    if isinstance(value, date):
        value = value.isoformat()
    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise ExecutionError(f"cannot coerce {value!r} to INTEGER") from exc
        raise ExecutionError(f"cannot coerce {value!r} to INTEGER")
    if data_type is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise ExecutionError(f"cannot coerce {value!r} to FLOAT") from exc
        raise ExecutionError(f"cannot coerce {value!r} to FLOAT")
    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise ExecutionError(f"cannot coerce {value!r} to BOOLEAN")
    raise ExecutionError(f"unknown data type: {data_type}")


def compare_values(left: Value, right: Value) -> int | None:
    """Three-way compare with SQL NULL semantics (None if either is NULL).

    Mixed numeric comparisons are allowed; comparing text to numbers raises,
    matching strict engines rather than silently coercing.
    """
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num and right_num:
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    raise ExecutionError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )
