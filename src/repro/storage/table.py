"""Chunked row tables.

Tables store rows in immutable fixed-size chunks. Mutations never modify a
chunk in place: inserts append to a tail chunk that is re-frozen, and
updates/deletes rewrite only the chunk containing the victim row. This makes
whole-table snapshots O(#chunks) reference copies — the property the
branched transaction manager (paper Sec. 6.2) relies on for cheap forks.

Every row carries a stable ``row_id`` assigned at insert; row ids survive
updates and are never reused, which gives the merge machinery a stable
identity for conflict detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.storage.schema import TableSchema
from repro.storage.types import Row, Value, coerce_value

#: Rows per chunk. Small enough that chunk rewrites stay cheap, large enough
#: that snapshot fan-out stays small.
CHUNK_SIZE = 256


@dataclass(frozen=True)
class Chunk:
    """An immutable run of rows with their stable row ids."""

    row_ids: tuple[int, ...]
    rows: tuple[Row, ...]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class TableSnapshot:
    """One table's complete state as an immutable, picklable value.

    Everything inside is tuples of plain values, so a snapshot crosses
    process boundaries intact — the scheduler's process-pool dispatch
    backend ships these to worker processes, and the branched transaction
    manager keeps them as fork/merge baselines. Within one process,
    restoring shares all chunk storage with the source table (chunks are
    immutable); across processes, pickling copies it exactly once.
    """

    schema: TableSchema
    chunks: tuple[Chunk, ...]
    next_row_id: int
    data_version: int

    @property
    def num_rows(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def extract_columns(self, positions: Sequence[int]) -> list[list[Value]]:
        """Materialise the requested columns, one value list per position."""
        return _extract_columns(self.chunks, positions)


def _extract_columns(
    chunks: Iterable[Chunk], positions: Sequence[int]
) -> list[list[Value]]:
    """Column extraction for the vectorized engine: transpose each chunk
    once at C speed (``zip(*rows)``) and concatenate, instead of plucking
    positions out of every row tuple individually."""
    columns: list[list[Value]] = [[] for _ in positions]
    for chunk in chunks:
        if not chunk.rows:
            continue
        transposed = list(zip(*chunk.rows))
        for out, position in zip(columns, positions):
            out.extend(transposed[position])
    return columns


class Table:
    """A mutable table facade over immutable chunks.

    The chunk list plus the next-row-id counter form the table's complete
    state; :meth:`snapshot` / :meth:`from_snapshot` round-trip it without
    copying row data.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._chunks: list[Chunk] = []
        self._next_row_id = 0
        #: bumped on every mutation; consumed by staleness detection.
        self.data_version = 0

    # -- snapshots (used by the branched transaction manager) --------------

    def snapshot(self) -> tuple[Chunk, ...]:
        """Return the current chunk list; shares all row storage."""
        return tuple(self._chunks)

    def snapshot_state(self) -> TableSnapshot:
        """The table's complete state as one immutable, picklable value."""
        return TableSnapshot(
            schema=self.schema,
            chunks=tuple(self._chunks),
            next_row_id=self._next_row_id,
            data_version=self.data_version,
        )

    @classmethod
    def restore(cls, state: TableSnapshot) -> "Table":
        """Rebuild a table from :meth:`snapshot_state` output."""
        return cls.from_snapshot(
            state.schema, state.chunks, state.next_row_id, state.data_version
        )

    @classmethod
    def from_snapshot(
        cls,
        schema: TableSchema,
        chunks: tuple[Chunk, ...],
        next_row_id: int,
        data_version: int = 0,
    ) -> "Table":
        table = cls(schema)
        table._chunks = list(chunks)
        table._next_row_id = next_row_id
        table.data_version = data_version
        return table

    @property
    def next_row_id(self) -> int:
        return self._next_row_id

    # -- reads --------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def scan(self) -> Iterator[Row]:
        for chunk in self._chunks:
            yield from chunk.rows

    def scan_with_ids(self) -> Iterator[tuple[int, Row]]:
        for chunk in self._chunks:
            yield from zip(chunk.row_ids, chunk.rows)

    def get(self, row_id: int) -> Row:
        location = self._locate(row_id)
        if location is None:
            raise ExecutionError(f"table {self.schema.name!r} has no row id {row_id}")
        chunk_index, offset = location
        return self._chunks[chunk_index].rows[offset]

    def rows(self) -> list[Row]:
        """Materialise all rows (test/debug convenience)."""
        return list(self.scan())

    def extract_columns(self, positions: Sequence[int]) -> list[list[Value]]:
        """Materialise the requested columns, one value list per position."""
        return _extract_columns(self._chunks, positions)

    # -- writes ---------------------------------------------------------------

    def insert(self, values: Iterable[Value]) -> int:
        """Validate, coerce and append one row; returns its row id."""
        row = self._coerce_row(tuple(values))
        row_id = self._next_row_id
        self._next_row_id += 1
        if self._chunks and len(self._chunks[-1]) < CHUNK_SIZE:
            tail = self._chunks[-1]
            self._chunks[-1] = Chunk(tail.row_ids + (row_id,), tail.rows + (row,))
        else:
            self._chunks.append(Chunk((row_id,), (row,)))
        self.data_version += 1
        return row_id

    def insert_many(self, rows: Iterable[Iterable[Value]]) -> list[int]:
        """Bulk insert; packs full chunks directly instead of re-freezing."""
        coerced = [self._coerce_row(tuple(r)) for r in rows]
        if not coerced:
            return []
        row_ids = list(range(self._next_row_id, self._next_row_id + len(coerced)))
        self._next_row_id += len(coerced)
        pending_ids: list[int] = list(row_ids)
        pending_rows: list[Row] = coerced
        if self._chunks and len(self._chunks[-1]) < CHUNK_SIZE:
            tail = self._chunks.pop()
            pending_ids = list(tail.row_ids) + pending_ids
            pending_rows = list(tail.rows) + pending_rows
        for start in range(0, len(pending_rows), CHUNK_SIZE):
            self._chunks.append(
                Chunk(
                    tuple(pending_ids[start : start + CHUNK_SIZE]),
                    tuple(pending_rows[start : start + CHUNK_SIZE]),
                )
            )
        self.data_version += 1
        return row_ids

    def update(self, row_id: int, values: Iterable[Value]) -> None:
        """Replace the row with ``row_id``; rewrites only its chunk."""
        location = self._locate(row_id)
        if location is None:
            raise ExecutionError(f"table {self.schema.name!r} has no row id {row_id}")
        chunk_index, offset = location
        chunk = self._chunks[chunk_index]
        new_rows = list(chunk.rows)
        new_rows[offset] = self._coerce_row(tuple(values))
        self._chunks[chunk_index] = Chunk(chunk.row_ids, tuple(new_rows))
        self.data_version += 1

    def delete(self, row_id: int) -> None:
        """Remove the row with ``row_id``; rewrites only its chunk."""
        location = self._locate(row_id)
        if location is None:
            raise ExecutionError(f"table {self.schema.name!r} has no row id {row_id}")
        chunk_index, offset = location
        chunk = self._chunks[chunk_index]
        new_ids = chunk.row_ids[:offset] + chunk.row_ids[offset + 1 :]
        new_rows = chunk.rows[:offset] + chunk.rows[offset + 1 :]
        if new_rows:
            self._chunks[chunk_index] = Chunk(new_ids, new_rows)
        else:
            del self._chunks[chunk_index]
        self.data_version += 1

    # -- internals -------------------------------------------------------------

    def _coerce_row(self, row: tuple[Value, ...]) -> Row:
        columns = self.schema.columns
        if len(row) != len(columns):
            raise ExecutionError(
                f"table {self.schema.name!r} expects {len(columns)} values, got {len(row)}"
            )
        coerced = []
        for value, column in zip(row, columns):
            if value is None and not column.nullable:
                raise ExecutionError(
                    f"column {self.schema.name}.{column.name} is NOT NULL"
                )
            coerced.append(coerce_value(value, column.data_type))
        return tuple(coerced)

    def _locate(self, row_id: int) -> tuple[int, int] | None:
        for chunk_index, chunk in enumerate(self._chunks):
            # Row ids within a chunk are ascending; a range check prunes most
            # chunks before the linear probe.
            if chunk.row_ids and chunk.row_ids[0] <= row_id <= chunk.row_ids[-1]:
                try:
                    return chunk_index, chunk.row_ids.index(row_id)
                except ValueError:
                    continue
        return None
