"""Storage substrate: typed schemas, row tables, catalog, stats, indexes."""

from repro.storage.catalog import Catalog
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.statistics import ColumnStats, TableStats, compute_table_stats
from repro.storage.table import Table
from repro.storage.types import DataType, coerce_value, infer_type

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DataType",
    "HashIndex",
    "SortedIndex",
    "Table",
    "TableSchema",
    "TableStats",
    "coerce_value",
    "compute_table_stats",
    "infer_type",
]
