"""The catalog: named tables, their indexes, and cached statistics.

The catalog is the unit the database facade and the branched transaction
manager both wrap. It tracks version counters used by the agentic memory
store's staleness machinery (paper Sec. 6.1) and by the scheduler's
process-pool dispatch backend (which ships whole-catalog snapshots to
worker processes and must know when they go stale):

* ``schema_version`` — bumped on CREATE/DROP/ALTER-like changes;
* ``data_epoch`` — bumped by every catalog-mediated write, including
  whole-table swaps (branch checkout via :meth:`replace_table`);
* per-table ``data_version`` — bumped by the table on every DML, even
  when the mutation bypasses the catalog.

:meth:`version` folds all three into one comparable value, so a snapshot
consumer can detect *any* change — schema, catalog-mediated DML, table
swaps, or direct table mutation — with a single equality check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import CatalogError
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.statistics import TableStats, compute_table_stats
from repro.storage.table import Table, TableSnapshot
from repro.storage.types import Value
from repro.util.text import normalize_identifier


@dataclass(frozen=True)
class CatalogSnapshot:
    """A complete, picklable image of a catalog at one version.

    Tables carry their full chunk state (:class:`TableSnapshot`); indexes
    travel as *definitions* only — their contents are derivable, and
    rebuilding them at restore time is cheaper than pickling value->row-id
    maps. ``version`` records the source catalog's :meth:`Catalog.version`
    so consumers (the process-pool dispatch backend) can tell when a
    shipped snapshot no longer matches the live catalog. Auxiliary
    (maintenance-built) index definitions ship too: rewritten plans
    executing in worker processes reference them by column.
    """

    version: tuple
    tables: tuple[TableSnapshot, ...]
    hash_indexes: tuple[tuple[str, str], ...]
    sorted_indexes: tuple[tuple[str, str], ...]
    aux_hash_indexes: tuple[tuple[str, str], ...] = ()
    aux_sorted_indexes: tuple[tuple[str, str], ...] = ()

    @property
    def num_rows(self) -> int:
        return sum(table.num_rows for table in self.tables)


@dataclass
class AuxiliaryIndex:
    """A maintenance-built index: executor-visible, planner-invisible.

    The planner's index-selection rule never consults these, so creating
    one cannot change plan shapes or fingerprints — answers stay
    byte-identical to an index-free run. The maintenance runtime's
    execution-time rewrite substitutes :class:`~repro.plan.logical.IndexScan`
    nodes that the executor resolves through :meth:`Catalog.lookup_hash_index`
    / :meth:`Catalog.lookup_sorted_index`.

    ``data_version`` tracks the source table's ``data_version`` as of the
    last catalog-mediated maintenance, so a direct ``Table`` mutation that
    bypassed the catalog is detectable (the rewrite refuses stale entries).
    """

    index: HashIndex | SortedIndex
    data_version: int


class Catalog:
    """A mutable namespace of tables with index and statistics maintenance."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}
        self._aux_hash_indexes: dict[tuple[str, str], AuxiliaryIndex] = {}
        self._aux_sorted_indexes: dict[tuple[str, str], AuxiliaryIndex] = {}
        self._stats_cache: dict[str, tuple[int, TableStats]] = {}
        self.schema_version = 0
        #: Bumped by every catalog-mediated write path (DML helpers and
        #: whole-table swaps); one input to :meth:`version`.
        self.data_epoch = 0
        #: Bumped when auxiliary (maintenance-built) indexes are created or
        #: dropped. Part of :meth:`version` (worker snapshots must re-ship
        #: so rewritten plans find their indexes) but *not* of
        #: :meth:`data_version_tuple` (building an index changes no rows,
        #: so materialized views stay valid across it).
        self.aux_index_version = 0
        #: Optional write-ahead log (:class:`repro.txn.wal.WriteAheadLog`).
        #: When attached, every write method appends a record *before*
        #: mutating state, and aborts it if the mutation raises.
        self.wal = None

    # -- write-ahead logging ---------------------------------------------------

    def _wal_log(self, kind: str, *payload):
        """Append a record covering the write about to happen (or ``None``
        when no log is attached). Callers append *after* validation but
        *before* mutation, and :meth:`_wal_abort` on mutation failure."""
        wal = self.wal
        if wal is None:
            return None
        return wal.append(kind, payload)

    def _wal_abort(self, token) -> None:
        if token is not None:
            self.wal.abort(token)

    # -- versioning ----------------------------------------------------------

    def data_version_tuple(self) -> tuple:
        """Every observable *data* state: schema, epochs, per-table counters.

        The validity stamp for maintenance-built materialized views — any
        change that could alter a query's rows moves it, while auxiliary
        index builds (which change no rows) do not.
        """
        return (
            self.schema_version,
            self.data_epoch,
            tuple(sorted((key, t.data_version) for key, t in self._tables.items())),
        )

    def version(self) -> tuple:
        """One comparable value covering every observable catalog state.

        Includes per-table ``data_version`` counters so even writes that
        bypass the catalog (direct ``Table.insert``/``update``/``delete``)
        change the version, plus the auxiliary-index counter so shipped
        worker snapshots are refreshed when maintenance builds an index.
        The process-pool dispatch backend compares versions to decide
        whether its shipped worker snapshots are still valid; cost is
        O(#tables) per check.
        """
        return self.data_version_tuple() + (self.aux_index_version,)

    # -- whole-catalog snapshots ----------------------------------------------

    def snapshot(self) -> CatalogSnapshot:
        """Capture every table (chunk-shared) plus index definitions."""
        return CatalogSnapshot(
            version=self.version(),
            tables=tuple(t.snapshot_state() for t in self._tables.values()),
            hash_indexes=tuple(
                (index.table, index.column) for index in self._hash_indexes.values()
            ),
            sorted_indexes=tuple(
                (index.table, index.column) for index in self._sorted_indexes.values()
            ),
            aux_hash_indexes=tuple(
                (entry.index.table, entry.index.column)
                for entry in self._aux_hash_indexes.values()
            ),
            aux_sorted_indexes=tuple(
                (entry.index.table, entry.index.column)
                for entry in self._aux_sorted_indexes.values()
            ),
        )

    @classmethod
    def from_snapshot(cls, snapshot: CatalogSnapshot) -> "Catalog":
        """Rebuild a catalog (tables + indexes) from a snapshot.

        Index contents are rebuilt by scanning the restored tables; row
        ids are part of the snapshot, so lookups return exactly what the
        source catalog's indexes would.
        """
        catalog = cls()
        for state in snapshot.tables:
            catalog.register_table(Table.restore(state))
        for table_name, column in snapshot.hash_indexes:
            catalog.create_hash_index(table_name, column)
        for table_name, column in snapshot.sorted_indexes:
            catalog.create_sorted_index(table_name, column)
        for table_name, column in snapshot.aux_hash_indexes:
            catalog.create_auxiliary_hash_index(table_name, column)
        for table_name, column in snapshot.aux_sorted_indexes:
            catalog.create_auxiliary_sorted_index(table_name, column)
        return catalog

    @classmethod
    def restore_exact(cls, snapshot: CatalogSnapshot) -> "Catalog":
        """Rebuild a catalog *at the snapshot's exact version counters*.

        :meth:`from_snapshot` re-registers tables and re-creates indexes,
        which re-bumps ``schema_version``/``aux_index_version`` from zero
        — fine for throwaway worker copies, wrong for crash recovery and
        replicas, where :meth:`version` must land on the source's value so
        staleness checks and the recovery differential line up. This
        variant overwrites the counters with the recorded ones (per-table
        ``data_version``/``next_row_id`` already travel inside each
        :class:`TableSnapshot`).
        """
        catalog = cls.from_snapshot(snapshot)
        schema_version, data_epoch, _per_table, aux_index_version = snapshot.version
        catalog.schema_version = schema_version
        catalog.data_epoch = data_epoch
        catalog.aux_index_version = aux_index_version
        return catalog

    # -- table lifecycle -----------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = normalize_identifier(schema.name)
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        token = self._wal_log("create_table", schema)
        try:
            table = Table(schema)
            self._tables[key] = table
            self.schema_version += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return table

    def register_table(self, table: Table) -> None:
        """Adopt an externally built table (used by the branch manager)."""
        key = normalize_identifier(table.schema.name)
        if key in self._tables:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        token = self._wal_log("register_table", table.snapshot_state())
        try:
            self._tables[key] = table
            self.schema_version += 1
        except BaseException:
            self._wal_abort(token)
            raise

    def drop_table(self, name: str) -> None:
        key = normalize_identifier(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        token = self._wal_log("drop_table", name)
        try:
            del self._tables[key]
            self._stats_cache.pop(key, None)
            for index_key in [k for k in self._hash_indexes if k[0] == key]:
                del self._hash_indexes[index_key]
            for index_key in [k for k in self._sorted_indexes if k[0] == key]:
                del self._sorted_indexes[index_key]
            for registry in (self._aux_hash_indexes, self._aux_sorted_indexes):
                for index_key in [k for k in registry if k[0] == key]:
                    del registry[index_key]
                    self.aux_index_version += 1
            self.schema_version += 1
        except BaseException:
            self._wal_abort(token)
            raise

    def replace_table(self, table: Table) -> None:
        """Swap in a new table object under the same name (branch checkout).

        Bumps ``data_epoch``: the swapped-in table may carry any
        ``data_version``, so per-table counters alone cannot signal this
        change to snapshot consumers.
        """
        key = normalize_identifier(table.schema.name)
        token = self._wal_log("replace_table", table.snapshot_state())
        try:
            self._tables[key] = table
            self._stats_cache.pop(key, None)
            self._rebuild_indexes_for(key)
            self.data_epoch += 1
        except BaseException:
            self._wal_abort(token)
            raise

    # -- lookups ---------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return normalize_identifier(name) in self._tables

    def table(self, name: str) -> Table:
        key = normalize_identifier(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def table_names(self) -> list[str]:
        return [table.schema.name for table in self._tables.values()]

    def schemas(self) -> list[TableSchema]:
        return [table.schema for table in self._tables.values()]

    # -- DML with index maintenance ---------------------------------------------

    def insert_rows(self, name: str, rows: Iterable[Iterable[Value]]) -> list[int]:
        table = self.table(name)
        rows = [tuple(row) for row in rows]  # materialize: logged then consumed
        token = self._wal_log("insert", name, tuple(rows))
        try:
            before_version = table.data_version
            row_ids = table.insert_many(rows)
            key = normalize_identifier(name)
            if self._indexed_columns(key):
                for row_id in row_ids:
                    self._index_row(key, table, row_id, add=True)
            self._sync_aux_versions(key, table, before_version)
            self._stats_cache.pop(key, None)
            self.data_epoch += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return row_ids

    def update_row(self, name: str, row_id: int, values: Iterable[Value]) -> None:
        table = self.table(name)
        values = tuple(values)  # materialize: logged then consumed
        token = self._wal_log("update", name, row_id, values)
        try:
            before_version = table.data_version
            key = normalize_identifier(name)
            if self._indexed_columns(key):
                self._index_row(key, table, row_id, add=False)
            table.update(row_id, values)
            if self._indexed_columns(key):
                self._index_row(key, table, row_id, add=True)
            self._sync_aux_versions(key, table, before_version)
            self._stats_cache.pop(key, None)
            self.data_epoch += 1
        except BaseException:
            self._wal_abort(token)
            raise

    def delete_row(self, name: str, row_id: int) -> None:
        table = self.table(name)
        token = self._wal_log("delete", name, row_id)
        try:
            before_version = table.data_version
            key = normalize_identifier(name)
            if self._indexed_columns(key):
                self._index_row(key, table, row_id, add=False)
            table.delete(row_id)
            self._sync_aux_versions(key, table, before_version)
            self._stats_cache.pop(key, None)
            self.data_epoch += 1
        except BaseException:
            self._wal_abort(token)
            raise

    # -- indexes -----------------------------------------------------------------

    def create_hash_index(self, table_name: str, column: str) -> HashIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._hash_indexes:
            raise CatalogError(f"hash index on {table_name}.{column} already exists")
        token = self._wal_log("hash_index", table_name, column)
        try:
            index = HashIndex(table.schema.name, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._hash_indexes[key] = index
            self.schema_version += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return index

    def create_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._sorted_indexes:
            raise CatalogError(f"sorted index on {table_name}.{column} already exists")
        token = self._wal_log("sorted_index", table_name, column)
        try:
            index = SortedIndex(table.schema.name, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._sorted_indexes[key] = index
            self.schema_version += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return index

    def hash_index(self, table_name: str, column: str) -> HashIndex | None:
        return self._hash_indexes.get(
            (normalize_identifier(table_name), normalize_identifier(column))
        )

    def sorted_index(self, table_name: str, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(
            (normalize_identifier(table_name), normalize_identifier(column))
        )

    # -- auxiliary (maintenance-built) indexes -----------------------------------
    #
    # Auxiliary indexes are executor-visible but planner-invisible: the
    # index-selection rewrite rule never sees them, so building one cannot
    # change a plan's shape or fingerprint. The maintenance runtime builds
    # them from mined predicate history and substitutes IndexScans at
    # execution time, keeping answers byte-identical to a maintenance-off
    # run while the scan paths get faster.

    def create_auxiliary_hash_index(self, table_name: str, column: str) -> HashIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._aux_hash_indexes:
            raise CatalogError(
                f"auxiliary hash index on {table_name}.{column} already exists"
            )
        token = self._wal_log("aux_hash_index", table_name, column)
        try:
            # Stamp the version observed *before* the build scan: a write
            # that races the scan leaves the entry behind the table's
            # version, so the possibly-incomplete index is born stale
            # (refused) instead of laundered fresh.
            before_version = table.data_version
            index = HashIndex(table.schema.name, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._aux_hash_indexes[key] = AuxiliaryIndex(index, before_version)
            self.aux_index_version += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return index

    def create_auxiliary_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._aux_sorted_indexes:
            raise CatalogError(
                f"auxiliary sorted index on {table_name}.{column} already exists"
            )
        token = self._wal_log("aux_sorted_index", table_name, column)
        try:
            before_version = table.data_version  # see create_auxiliary_hash_index
            index = SortedIndex(table.schema.name, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._aux_sorted_indexes[key] = AuxiliaryIndex(index, before_version)
            self.aux_index_version += 1
        except BaseException:
            self._wal_abort(token)
            raise
        return index

    def auxiliary_hash_index(self, table_name: str, column: str) -> HashIndex | None:
        """The auxiliary hash index on (table, column) — fresh entries only.

        Returns ``None`` when the entry's recorded ``data_version`` trails
        the table's (a direct ``Table`` mutation bypassed catalog index
        maintenance), so rewrites never serve a stale index.
        """
        key = (normalize_identifier(table_name), normalize_identifier(column))
        entry = self._aux_hash_indexes.get(key)
        if entry is None:
            return None
        table = self._tables.get(key[0])
        if table is None or entry.data_version != table.data_version:
            return None
        return entry.index

    def auxiliary_sorted_index(self, table_name: str, column: str) -> SortedIndex | None:
        """The auxiliary sorted index on (table, column) — fresh entries only."""
        key = (normalize_identifier(table_name), normalize_identifier(column))
        entry = self._aux_sorted_indexes.get(key)
        if entry is None:
            return None
        table = self._tables.get(key[0])
        if table is None or entry.data_version != table.data_version:
            return None
        return entry.index

    def auxiliary_index_keys(self) -> list[tuple[str, str, str]]:
        """(table, column, kind) for every auxiliary index (observability)."""
        out = [(t, c, "hash") for (t, c) in self._aux_hash_indexes]
        out += [(t, c, "sorted") for (t, c) in self._aux_sorted_indexes]
        return sorted(out)

    def lookup_hash_index(self, table_name: str, column: str) -> HashIndex | None:
        """Planner index if declared, else a fresh auxiliary one (executor
        resolution path for IndexScan nodes)."""
        index = self.hash_index(table_name, column)
        if index is not None:
            return index
        return self.auxiliary_hash_index(table_name, column)

    def lookup_sorted_index(self, table_name: str, column: str) -> SortedIndex | None:
        index = self.sorted_index(table_name, column)
        if index is not None:
            return index
        return self.auxiliary_sorted_index(table_name, column)

    # -- statistics --------------------------------------------------------------

    def stats(self, table_name: str) -> TableStats:
        """Statistics for ``table_name``, recomputed lazily on data change."""
        key = normalize_identifier(table_name)
        table = self.table(table_name)
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == table.data_version:
            return cached[1]
        stats = compute_table_stats(table)
        self._stats_cache[key] = (table.data_version, stats)
        return stats

    # -- internals -----------------------------------------------------------------

    def _indexed_columns(self, table_key: str) -> list[str]:
        # list() copies before iterating: the maintenance thread may be
        # registering an auxiliary index concurrently with a DML caller.
        columns = [c for (t, c) in list(self._hash_indexes) if t == table_key]
        columns += [c for (t, c) in list(self._sorted_indexes) if t == table_key]
        columns += [c for (t, c) in list(self._aux_hash_indexes) if t == table_key]
        columns += [c for (t, c) in list(self._aux_sorted_indexes) if t == table_key]
        return columns

    def _all_indexes_for(self, table_key: str) -> list[tuple[str, HashIndex | SortedIndex]]:
        """(column, index) pairs for every index — planner and auxiliary —
        on one table; the shared iteration for row-level maintenance."""
        out: list[tuple[str, HashIndex | SortedIndex]] = []
        for (t, column), index in list(self._hash_indexes.items()):
            if t == table_key:
                out.append((column, index))
        for (t, column), index in list(self._sorted_indexes.items()):
            if t == table_key:
                out.append((column, index))
        for registry in (self._aux_hash_indexes, self._aux_sorted_indexes):
            for (t, column), entry in list(registry.items()):
                if t == table_key:
                    out.append((column, entry.index))
        return out

    def _index_row(self, table_key: str, table: Table, row_id: int, add: bool) -> None:
        row = table.get(row_id)
        for column, index in self._all_indexes_for(table_key):
            value = row[table.schema.position_of(column)]
            index.add(value, row_id) if add else index.remove(value, row_id)

    def _sync_aux_versions(
        self, table_key: str, table: Table, before_version: int
    ) -> None:
        """Record that auxiliary indexes saw this catalog-mediated write.

        Only entries that were in sync with the table *before* this
        mutation advance to the new ``table.data_version`` — an entry
        already stale (a direct ``Table`` mutation bypassed catalog index
        maintenance at some point, so it is permanently missing rows)
        must stay detectably stale, never be laundered fresh by a later
        catalog-mediated write.
        """
        for registry in (self._aux_hash_indexes, self._aux_sorted_indexes):
            # Copy before iterating: the maintenance thread may register a
            # new auxiliary index while a DML caller runs this sync.
            for (t, _column), entry in list(registry.items()):
                if t == table_key and entry.data_version == before_version:
                    entry.data_version = table.data_version

    def _rebuild_indexes_for(self, table_key: str) -> None:
        table = self._tables[table_key]
        for (t, column), old in list(self._hash_indexes.items()):
            if t != table_key:
                continue
            index = HashIndex(old.table, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._hash_indexes[(t, column)] = index
        for (t, column), old_sorted in list(self._sorted_indexes.items()):
            if t != table_key:
                continue
            sorted_index = SortedIndex(old_sorted.table, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                sorted_index.add(row[position], row_id)
            self._sorted_indexes[(t, column)] = sorted_index
        for registry, factory in (
            (self._aux_hash_indexes, HashIndex),
            (self._aux_sorted_indexes, SortedIndex),
        ):
            for (t, column), old_entry in list(registry.items()):
                if t != table_key:
                    continue
                rebuilt = factory(old_entry.index.table, column)
                position = table.schema.position_of(column)
                for row_id, row in table.scan_with_ids():
                    rebuilt.add(row[position], row_id)
                registry[(t, column)] = AuxiliaryIndex(rebuilt, table.data_version)
